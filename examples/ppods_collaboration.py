#!/usr/bin/env python
"""PPoDS + Kepler-style collaborative workflow development (paper §VI).

A team develops the CONNECT workflow step by step: steps get owners, run
interactively (Kepler-style cells), carry regression tests, and every
run's measurements accumulate so the team can see improvements — "a
step-by-step workflow development approach ... that drastically reduces
execution bottlenecks by constantly measuring, learning, and informing".

Run:  python examples/ppods_collaboration.py
"""

import tempfile

from repro.testbed import build_nautilus_testbed
from repro.workflow import build_connect_workflow
from repro.workflow.kepler import KeplerSession
from repro.workflow.persistence import load_report, save_report
from repro.workflow.driver import WorkflowReport


def main() -> None:
    testbed = build_nautilus_testbed(seed=42, scale=0.002)
    workflow = build_connect_workflow(testbed, real_ml=True)
    session = KeplerSession(testbed, workflow)

    # --- plan: everyone sees who owns what (§VI) -----------------------------
    session.ppods.assign("download", "kyle")
    session.ppods.assign("training", "isaac")
    session.ppods.assign("inference", "scott")
    session.ppods.assign("visualization", "joel")
    print(session.ppods.plan_view())

    # --- step tests: "test for specific outputs when specific inputs are
    # put into place" (§VI) ---------------------------------------------------
    session.ppods.add_test(
        "download-moves-all-files", "download",
        lambda r: r.artifacts["files_downloaded"] == len(testbed.archive),
    )
    session.ppods.add_test(
        "training-converges", "training",
        lambda r: r.artifacts["training_report"].improved,
    )
    session.ppods.add_test(
        "inference-covers-archive", "inference",
        lambda r: r.artifacts["n_shards"] == 50,
    )

    # --- interactive development: run each cell, annotate ---------------------
    print("\nRunning step 1 (kyle)...")
    session.run_step("download")
    session.annotate("download", "kyle",
                     "subsetting on; 20 aria2 connections per worker")

    print("Running step 2 (isaac)...")
    session.run_step("training")
    print("Running step 3 (scott)...")
    session.run_step("inference")
    print("Running step 4 (joel)...")
    session.run_step("visualization")
    print()
    print(session.board())

    results = session.ppods.run_tests()
    print("\nstep tests:", results)
    assert all(results.values()), results

    # --- iterate on a step: kyle tries fewer download workers -----------------
    print("\nkyle re-runs the download with 5 workers to measure the effect\n"
          "(warm image caches make the second run cheaper at this scale)...")
    session.rerun("download", n_workers=5)
    durations = session.ppods.trend("download")
    print(f"download durations across runs: "
          f"{[f'{d:.0f}s' for d in durations]}")
    assert len(durations) == 2
    # Dependents are flagged stale so the team knows results are outdated.
    assert session.cells["training"].status == "stale"
    print("training/inference cells are now marked stale — rerun needed.")

    # --- persist measurements for the next session (§VIII loop) ---------------
    report = WorkflowReport(
        workflow_name=workflow.name,
        steps=[c.last_report for c in session.cells.values()],
        total_duration_s=testbed.env.now,
    )
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        save_report(report, handle.name)
        reloaded = load_report(handle.name)
    print(f"\nmeasurements persisted and reloaded: "
          f"{[s.name for s in reloaded.steps]} -> {handle.name}")


if __name__ == "__main__":
    main()
