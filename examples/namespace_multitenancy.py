#!/usr/bin/env python
"""Namespace multi-tenancy: several research groups share one cluster.

Paper §IV and §VII: namespaces "divide the cluster resources between the
set of users", administrators admit CILogon-federated identities, and
other ML workflows (CARL-UCI reinforcement learning, ECEWCSNG autonomous
-systems deep learning) run beside the CONNECT workflow with their own
quotas and isolation.

Run:  python examples/namespace_multitenancy.py
"""

from repro.cluster import (
    ContainerSpec,
    JobSpec,
    PodSpec,
    ResourceQuota,
    ResourceRequirements,
)
from repro.errors import QuotaExceededError
from repro.testbed import build_nautilus_testbed
from repro.viz import text_table


def gpu_job_spec(image: str, duration: float, gpus_per_pod: int = 1):
    def template(index: int) -> PodSpec:
        def main(ctx):
            yield ctx.env.timeout(duration)
            return "ok"

        return PodSpec(
            containers=[
                ContainerSpec(
                    name="train",
                    image=image,
                    main=main,
                    resources=ResourceRequirements(
                        cpu=2, memory="8Gi", gpu=gpus_per_pod
                    ),
                )
            ]
        )

    return template


def main() -> None:
    testbed = build_nautilus_testbed(seed=42, scale=0.001)
    cluster = testbed.cluster
    env = testbed.env

    # Three tenants with their own admins and quotas (§IV).
    tenants = {
        "carl-uci": dict(quota=ResourceQuota(gpu=8, cpu=32),
                         administrator="pi@uci.edu",
                         image="carl-uci/pytorch-neuromod:2.1"),
        "ecewcsng": dict(quota=ResourceQuota(gpu=12, cpu=48),
                         administrator="pi@ucsd.edu",
                         image="ecewcsng/caffe-fusion:1.4"),
        "wifire": dict(quota=ResourceQuota(gpu=4, cpu=16),
                       administrator="pi@sdsc.edu",
                       image="wifire/tf-smoke:0.9"),
    }
    for name, cfg in tenants.items():
        ns = cluster.create_namespace(
            name, quota=cfg["quota"], administrator=cfg["administrator"]
        )
        ns.add_user(f"student1@{name}.edu", added_by=cfg["administrator"])
        print(f"namespace {name}: admin={ns.administrator} "
              f"users={sorted(ns.users)} gpu-quota={cfg['quota'].gpu}")

    # Each tenant launches a GPU training job concurrently.
    jobs = {}
    for name, cfg in tenants.items():
        jobs[name] = cluster.create_job(
            f"{name}-train",
            JobSpec(
                template=gpu_job_spec(cfg["image"], duration=600.0),
                completions=4,
                parallelism=4,
            ),
            namespace=name,
        )

    # Quota enforcement: carl-uci tries to grab 9 GPUs on an 8-GPU quota.
    try:
        for i in range(9):
            cluster.create_pod(
                f"greedy-{i}",
                gpu_job_spec("carl-uci/extra", 600.0)(0),
                namespace="carl-uci",
            )
        raise AssertionError("quota should have blocked the 9th GPU pod")
    except QuotaExceededError as exc:
        print(f"\nquota enforced for carl-uci: {exc}")

    env.run(until=2000.0)

    rows = []
    for name in tenants:
        ns = cluster.get_namespace(name)
        job = jobs[name]
        rows.append(
            (name, job.status.value, len(job.succeeded_indices),
             f"{ns.used.gpu:.0f}", ns.pod_count)
        )
    print()
    print(text_table(
        ["namespace", "job status", "completions", "GPUs in use", "pods"],
        rows,
        title="Tenant status after 2000 simulated seconds:",
    ))
    # All tenants made progress in isolation.
    assert all(jobs[n].is_complete for n in tenants)
    print("\nAll tenant jobs completed with namespace isolation and quotas.")


if __name__ == "__main__":
    main()
