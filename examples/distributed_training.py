#!/usr/bin/env python
"""Distributed TensorFlow-style training on a ReplicaSet (paper §III-E.2).

Shows both halves of the extension:

1. *Real* data-parallel SGD: K logical workers draw independent patch
   batches, gradients are averaged (allreduce) and applied once — the
   model genuinely trains, in NumPy.
2. *Modelled* paper-scale timing: compute shrinks ~1/K while the ring-
   allreduce cost grows with (K-1)/K, producing the classic speedup
   curve with diminishing returns.

Run:  python examples/distributed_training.py
"""

from repro.data.merra import MerraGenerator
from repro.ml import FFNConfig
from repro.testbed import build_nautilus_testbed
from repro.viz import bar_chart, text_table
from repro.workflow import DistributedTraining
from repro.workflow.driver import run_single_step
from repro.workflow.extensions import allreduce_seconds, data_parallel_train


def main() -> None:
    # ---- real data-parallel SGD --------------------------------------------
    print("Real data-parallel FFN training (gradient averaging):")
    gen = MerraGenerator(seed=42)
    volume, labels = gen.ivt_volume(0, 16), gen.label_volume(0, 16)
    config = FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=42)
    rows = []
    for workers in (1, 2, 4):
        _, loss = data_parallel_train(
            config, volume, labels, n_workers=workers, steps=30, seed=42
        )
        rows.append((workers, f"{loss:.3f}"))
    print(text_table(["workers", "final training loss"], rows))

    # ---- modelled speedup curve on the cluster ------------------------------
    print("\nModelled wall time vs replica count (ReplicaSet + Service):")
    testbed = build_nautilus_testbed(seed=42, scale=0.001)
    items = []
    t1 = None
    for replicas in (1, 2, 4, 8, 16):
        step = DistributedTraining(
            name=f"dt{replicas}",
            params={"n_replicas": replicas, "real_ml": False},
        )
        report = run_single_step(testbed, step, workflow_name=f"w{replicas}")
        assert report.succeeded, report.error
        total = report.artifacts["modelled_total_seconds"]
        if replicas == 1:
            t1 = total
        items.append((f"{replicas:>2} replicas", total / 60.0))
        if replicas == 8:
            print(f"  speedup at 8 replicas: {t1 / total:.2f}x "
                  f"(ideal 8x, eroded by allreduce)")
    print(bar_chart(items, unit=" min"))
    print(f"\nsingle-replica baseline: {t1 / 60:.0f} min")
    print(f"ring allreduce per sync at 8 workers: "
          f"{allreduce_seconds(4e6, 8) * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
