#!/usr/bin/env python
"""The full CONNECT case study (paper §III) with every figure rendered.

Runs the 4-step workflow at the scale given on the command line
(default 1.0 = the paper's full 112,249-file / 246 GB archive — byte
accounting is simulated, ML runs for real at laptop scale) and prints
Figures 1–6 and Table I next to the paper's reported values.

Run:  python examples/connect_case_study.py [scale]
      python examples/connect_case_study.py 0.01   # 1% archive, faster
"""

import sys

from repro.testbed import build_nautilus_testbed
from repro.viz import (
    figure3_stats,
    figure4_stats,
    figure5_stats,
    figure6_stats,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_table1,
)
from repro.workflow import WorkflowDriver, build_connect_workflow

PAPER = {
    "fig3_minutes": 37.0,
    "fig3_gigabytes": 246.0,
    "fig3_files": 112_249,
    "fig4_iops_MBps": 593.0,
    "fig5_total_minutes": 306.0,
    "fig6_minutes": 1133.0,
    "fig6_gpus": 50,
}


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    print(f"Building Nautilus at scale={scale} ...")
    testbed = build_nautilus_testbed(seed=42, scale=scale)
    workflow = build_connect_workflow(testbed)

    print(render_figure1(testbed))
    print()
    print(render_figure2(workflow))

    print("\nExecuting the workflow ...")
    report = WorkflowDriver(testbed).run(workflow)
    assert report.succeeded, [s.error for s in report.steps]

    print()
    print(render_figure3(testbed, report))
    print()
    print(render_figure4(testbed, report))
    print()
    print(render_figure5(testbed, report))
    print()
    print(render_figure6(testbed, report))
    print()
    print(render_table1(report))

    f3 = figure3_stats(testbed, report)
    f4 = figure4_stats(testbed, report)
    f5 = figure5_stats(testbed, report)
    f6 = figure6_stats(testbed, report)
    print("\nPaper vs measured (full scale reference values):")
    rows = [
        ("step 1 duration (min)", PAPER["fig3_minutes"], f3["minutes"]),
        ("step 1 data (GB)", PAPER["fig3_gigabytes"] * scale, f3["gigabytes"]),
        ("step 1 files", PAPER["fig3_files"] * scale, f3["files"]),
        ("fig 4 storage peak (MB/s)", PAPER["fig4_iops_MBps"],
         f4["storage_write_peak_MBps"]),
        ("step 2 total (min)", PAPER["fig5_total_minutes"],
         f5["total_minutes"]),
        ("step 3 duration (min)", PAPER["fig6_minutes"], f6["minutes"]),
        ("step 3 GPUs", PAPER["fig6_gpus"], f6["gpus"]),
    ]
    for name, paper, measured in rows:
        print(f"  {name:<28} paper={paper:>10.1f}  measured={measured:>10.1f}")


if __name__ == "__main__":
    main()
