#!/usr/bin/env python
"""Queue-driven hyperparameter sweep (paper §III-E.3).

"A Redis queue is being developed to store model training/testing
validation split methodologies and parameters sets to be used in
multi-model validation."  Worker pods pop parameter sets, train a real
NumPy FFN on the training window of the synthetic MERRA archive, and
score each candidate on a disjoint validation window.

Run:  python examples/hyperparameter_sweep.py
"""

from repro.testbed import build_nautilus_testbed
from repro.viz import bar_chart
from repro.workflow import HyperparameterSweep
from repro.workflow.driver import run_single_step


def main() -> None:
    testbed = build_nautilus_testbed(seed=42, scale=0.001)
    grid = (
        {"lr": 0.05, "filters": 4},
        {"lr": 0.05, "filters": 6},
        {"lr": 0.1, "filters": 4},
        {"lr": 0.1, "filters": 6},
        {"lr": 0.2, "filters": 6},
        {"lr": 0.3, "filters": 8},
    )
    step = HyperparameterSweep(
        params={
            "param_grid": grid,
            "n_workers": 3,
            "train_window": (0, 12),
            "validation_window": (12, 20),
            "train_steps": 30,
        }
    )
    print(f"Sweeping {len(grid)} configurations on 3 GPU worker pods...")
    report = run_single_step(testbed, step)
    assert report.succeeded, report.error

    art = report.artifacts
    items = [
        (
            f"lr={r['params']['lr']:<5} filters={r['params']['filters']}",
            r["validation_loss"],
        )
        for r in sorted(art["results"], key=lambda r: r["validation_loss"])
    ]
    print()
    print(bar_chart(items, unit=" val-loss", title="Validation loss by config "
                                                   "(lower is better):"))
    print(f"\nbest: {art['best_params']} "
          f"(validation loss {art['best_validation_loss']:.3f})")
    print(f"sweep wall time on the cluster: {report.duration_minutes:.1f} "
          f"simulated minutes across {report.gpus} peak GPUs")


if __name__ == "__main__":
    main()
