#!/usr/bin/env python
"""Quickstart: run the paper's 4-step workflow on a simulated Nautilus.

Builds the CHASE-CI testbed (PRP network + Kubernetes-like cluster +
Ceph + THREDDS + monitoring), executes the CONNECT workflow at 0.5% of
the paper's archive scale with the real NumPy FFN enabled, and prints
the Table-I resource summary.

Run:  python examples/quickstart.py
"""

from repro.testbed import build_nautilus_testbed
from repro.viz import render_table1
from repro.workflow import WorkflowDriver, build_connect_workflow


def main() -> None:
    print("Building the Nautilus testbed (seed=42, scale=0.5%)...")
    testbed = build_nautilus_testbed(seed=42, scale=0.005)
    print(
        f"  {len(testbed.cluster.nodes)} nodes, {testbed.total_gpus()} GPUs, "
        f"{testbed.ceph.health()['capacity_bytes'] / 1e15:.1f} PB storage, "
        f"{len(testbed.archive):,} archive granules"
    )

    workflow = build_connect_workflow(testbed)
    print("\n" + workflow.describe())

    print("\nRunning the workflow (downloads, real FFN training, sharded "
          "inference, visualization)...")
    report = WorkflowDriver(testbed).run(workflow)
    assert report.succeeded, [s.error for s in report.steps]

    print("\n" + render_table1(report))

    inference = report.step("inference").artifacts
    viz = report.step("visualization").artifacts
    print("\nReal-ML results (synthetic MERRA-2, held-out window):")
    print(f"  voxel F1        = {inference['voxel_f1']:.3f}")
    print(f"  voxel recall    = {inference['voxel_recall']:.3f}")
    print(f"  tracked objects = {viz['n_objects']}"
          f" (mean lifetime {viz['mean_lifetime_steps']:.1f} x 3-hourly steps)")


if __name__ == "__main__":
    main()
