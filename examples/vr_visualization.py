#!/usr/bin/env python
"""Distributed VR visualization across the PRP (paper §VII).

Recreates the January-2019 Calit2 demonstration: a CalVR-style OpenGL
application scheduled across 11 remote GPU nodes, driving displays at UC
Merced from a motion-tracked wand in the SunCAVE at UC San Diego — while
an ML training job cohabitates on the same GPU nodes.

Run:  python examples/vr_visualization.py
"""

from repro.cluster import ContainerSpec, JobSpec, PodSpec, ResourceRequirements
from repro.testbed import build_nautilus_testbed
from repro.vizcluster import UNNOTICEABLE_LATENCY_S, VisualizationCluster


def gpu_sleeper(duration: float, gpu: int) -> PodSpec:
    def main(ctx):
        yield ctx.env.timeout(duration)

    return PodSpec(
        containers=[
            ContainerSpec(
                name="train",
                image="chase-ci/tf-train:1.0",
                main=main,
                resources=ResourceRequirements(cpu=2, memory="8Gi", gpu=gpu),
            )
        ]
    )


def main() -> None:
    testbed = build_nautilus_testbed(seed=42, scale=0.0001, n_fiona8=12)
    testbed.topology.attach_host("suncave-ucsd", "UCSD", nic_gbps=10.0)
    testbed.topology.attach_host("display-ucm", "UCM", nic_gbps=10.0)

    calvr = VisualizationCluster(testbed, input_host="suncave-ucsd")
    render_nodes = testbed.gpu_nodes[:11]
    print(f"Deploying CalVR render pods to 11 GPU nodes:\n  "
          + "\n  ".join(render_nodes))
    calvr.deploy(render_nodes)
    testbed.env.run(until=60)
    print(f"renderers ready: {calvr.ready_renderers()}/11")

    # Cohabitation: an ML job lands on the same hardware (§VII).
    testbed.cluster.create_namespace("ml-cohab")
    testbed.cluster.create_job(
        "training",
        JobSpec(template=lambda i: gpu_sleeper(duration=120, gpu=4),
                completions=2, parallelism=2),
        namespace="ml-cohab",
    )

    # Stream wand events San Diego -> Merced while everything runs.
    print("\nStreaming 50 motion-tracked wand events UCSD -> UC Merced...")
    events = [calvr.send_wand_event("display-ucm") for _ in range(50)]
    testbed.env.run(until=testbed.env.all_of(events))
    report = calvr.interaction_report()
    print(f"  events           : {report['events']:.0f}")
    print(f"  mean RTT         : {report['mean_rtt_ms']:.2f} ms")
    print(f"  max RTT          : {report['max_rtt_ms']:.2f} ms")
    print(f"  'unnoticeable' (<{UNNOTICEABLE_LATENCY_S * 1e3:.0f} ms): "
          f"{report['unnoticeable_fraction'] * 100:.0f}%")

    testbed.env.run(until=300)
    ml_job = testbed.cluster.get_job("training", namespace="ml-cohab")
    print(f"\ncohabitating ML job: {ml_job.status.value} "
          f"({len(ml_job.succeeded_indices)}/2 completions) — "
          "graphics and ML processes cohabitate (§VII)")
    assert report["unnoticeable_fraction"] == 1.0
    assert ml_job.is_complete


if __name__ == "__main__":
    main()
