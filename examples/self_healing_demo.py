#!/usr/bin/env python
"""Self-healing demo: nodes leave mid-job, the workflow still finishes.

Paper §V: "The CHASE-CI infrastructure is very dynamic in the fact that
nodes can join and leave the cluster at any time ... If a node is taken
offline the pods on that node will be rescheduled on another node."

This script starts the step-1 download job, kills the node carrying the
busiest worker halfway through (twice), and shows: the pods fail with
``NodeLost``, the Job controller spawns replacements on surviving nodes,
the Redis queue re-issues the crashed workers' unacked chunks, and the
job completes having downloaded every file exactly once.

Run:  python examples/self_healing_demo.py
"""

from repro.cluster import PodPhase
from repro.testbed import build_nautilus_testbed
from repro.workflow import DownloadStep, Workflow, WorkflowDriver


def main() -> None:
    testbed = build_nautilus_testbed(seed=42, scale=0.02)
    env = testbed.env
    cluster = testbed.cluster

    # Chaos process: fail busy nodes while the download is in flight
    # (the ~10 GB run takes roughly 90 simulated seconds end to end).
    def chaos(env):
        for kill_at in (30.0, 50.0):
            yield env.timeout(kill_at - env.now)
            busy = [
                node
                for node in cluster.ready_nodes()
                if any(
                    "download-workers" in p.meta.name
                    and p.phase is PodPhase.RUNNING
                    for p in node.pods.values()
                )
            ]
            if not busy:
                continue
            victim = busy[0]
            doomed = [
                p.meta.name
                for p in victim.pods.values()
                if "download-workers" in p.meta.name
            ]
            print(
                f"[t={env.now:7.1f}s] CHAOS: failing node {victim.spec.name} "
                f"(kills {len(doomed)} worker pods: {', '.join(doomed)})"
            )
            cluster.fail_node(victim.spec.name)

    env.process(chaos(env), name="chaos")

    workflow = Workflow("healing", [DownloadStep()])
    report = WorkflowDriver(testbed).run(workflow)
    step = report.steps[0]

    print(f"\nworkflow succeeded: {report.succeeded}")
    print(f"download duration : {step.duration_minutes:.1f} simulated minutes")
    print(f"files downloaded  : {step.artifacts['files_downloaded']:,}")
    print(f"chunks re-queued after crashes: {step.artifacts['queue_requeued']}")

    print("\nCluster events (node + rescheduling story):")
    interesting = ("NodeLost", "NodeJoined", "Failed")
    for event in testbed.cluster.events:
        if event.reason in interesting or "NodeLost" in event.message:
            print("  " + str(event))

    lost_events = [e for e in cluster.events if e.reason == "NodeLost"]
    assert report.succeeded
    assert lost_events, "chaos process never fired"
    assert step.artifacts["queue_requeued"] > 0
    print("\nSelf-healing verified: job completed despite node failures.")


if __name__ == "__main__":
    main()
