#!/usr/bin/env python
"""Self-healing demo: nodes leave mid-job, the workflow still finishes.

Paper §V: "The CHASE-CI infrastructure is very dynamic in the fact that
nodes can join and leave the cluster at any time ... If a node is taken
offline the pods on that node will be rescheduled on another node."

Act 1 starts the step-1 download job, kills the node carrying the
busiest worker halfway through (twice), and shows: the pods fail with
``NodeLost``, the Job controller spawns replacements on surviving nodes,
the Redis queue re-issues the crashed workers' unacked chunks, and the
job completes having downloaded every file exactly once.

Act 2 partitions a whole site off the WAN instead of crashing anything:
the node-lease controller stops hearing heartbeats from the site, its
nodes go NotReady through the same path as a hard failure, a ReplicaSet
reschedules the stranded replicas elsewhere — and when the partition
heals, the leases renew and the nodes rejoin on their own.

Run:  python examples/self_healing_demo.py
"""

from repro.cluster import PodPhase, ReplicaSetSpec
from repro.testbed import build_nautilus_testbed
from repro.workflow import DownloadStep, Workflow, WorkflowDriver

from repro.cluster import (  # noqa: E402  (grouped for the act-2 template)
    ContainerSpec,
    PodSpec,
    ResourceRequirements,
)


def _service_pod_spec() -> PodSpec:
    """A long-running service container (act 2's ReplicaSet template)."""

    def main(ctx):
        yield ctx.env.timeout(1e9)

    return PodSpec(
        containers=[
            ContainerSpec(
                name="svc",
                image="repro/service:1",
                main=main,
                resources=ResourceRequirements(cpu=1, memory="1Gi"),
            )
        ]
    )


def main() -> None:
    testbed = build_nautilus_testbed(seed=42, scale=0.02)
    env = testbed.env
    cluster = testbed.cluster

    # Chaos process: fail busy nodes while the download is in flight
    # (the ~10 GB run takes roughly 90 simulated seconds end to end).
    def chaos(env):
        for kill_at in (30.0, 50.0):
            yield env.timeout(kill_at - env.now)
            busy = [
                node
                for node in cluster.ready_nodes()
                if any(
                    "download-workers" in p.meta.name
                    and p.phase is PodPhase.RUNNING
                    for p in node.pods.values()
                )
            ]
            if not busy:
                continue
            victim = busy[0]
            doomed = [
                p.meta.name
                for p in victim.pods.values()
                if "download-workers" in p.meta.name
            ]
            print(
                f"[t={env.now:7.1f}s] CHAOS: failing node {victim.spec.name} "
                f"(kills {len(doomed)} worker pods: {', '.join(doomed)})"
            )
            cluster.fail_node(victim.spec.name)

    env.process(chaos(env), name="chaos")

    workflow = Workflow("healing", [DownloadStep()])
    report = WorkflowDriver(testbed).run(workflow)
    step = report.steps[0]

    print(f"\nworkflow succeeded: {report.succeeded}")
    print(f"download duration : {step.duration_minutes:.1f} simulated minutes")
    print(f"files downloaded  : {step.artifacts['files_downloaded']:,}")
    print(f"chunks re-queued after crashes: {step.artifacts['queue_requeued']}")

    print("\nCluster events (node + rescheduling story):")
    interesting = ("NodeLost", "NodeJoined", "Failed")
    for event in testbed.cluster.events:
        if event.reason in interesting or "NodeLost" in event.message:
            print("  " + str(event))

    lost_events = [e for e in cluster.events if e.reason == "NodeLost"]
    assert report.succeeded
    assert lost_events, "chaos process never fired"
    assert step.artifacts["queue_requeued"] > 0
    print("\nSelf-healing verified: job completed despite node failures.")

    # ---- Act 2: partition a site, watch leases expire, then recover ----
    print("\n=== Act 2: network partition -> NotReady -> reschedule -> heal ===")
    testbed.enable_node_leases(interval_s=15.0, grace_periods=3)
    faults = testbed.network_faults()
    cluster.create_replicaset(
        "edge-service",
        ReplicaSetSpec(template=lambda i: _service_pod_spec(), replicas=6),
    )
    env.run(until=env.now + 60.0)

    # Pick a non-control-plane site that actually hosts a replica.
    running = cluster.list_pods(phase=PodPhase.RUNNING)
    sites = {
        cluster.get_node(p.node_name).spec.site
        for p in running
        if p.meta.name.startswith("edge-service")
    }
    victim_site = sorted(sites - {"UCSD"})[0]
    print(f"[t={env.now:7.1f}s] CHAOS: partitioning site {victim_site} off the WAN")
    faults.partition([victim_site])

    ready_before = {n.spec.name for n in cluster.ready_nodes()}
    env.run(until=env.now + 60.0)  # 3 missed 15 s heartbeats + reschedule
    not_ready = sorted(
        name
        for name in ready_before
        if not cluster.get_node(name).ready
    )
    print(f"[t={env.now:7.1f}s] NotReady after lease expiry: {', '.join(not_ready)}")
    for event in cluster.events:
        if event.reason in ("LeaseExpired", "LeaseRenewed"):
            print("  " + str(event))
    replicas = [
        p
        for p in cluster.list_pods(phase=PodPhase.RUNNING)
        if p.meta.name.startswith("edge-service")
    ]
    on_victim = [
        p
        for p in replicas
        if cluster.get_node(p.node_name).spec.site == victim_site
    ]
    print(
        f"[t={env.now:7.1f}s] service replicas running: {len(replicas)} "
        f"(on {victim_site}: {len(on_victim)})"
    )

    faults.heal_partition()
    env.run(until=env.now + 40.0)  # heartbeats resume, leases renew
    recovered = sorted(n for n in not_ready if cluster.get_node(n).ready)
    print(f"[t={env.now:7.1f}s] partition healed; auto-recovered: {', '.join(recovered)}")

    assert not_ready, "lease controller never expired a lease"
    assert len(replicas) == 6 and not on_victim
    assert recovered == not_ready
    print("\nSelf-healing verified: partitioned site drained and rejoined by itself.")


if __name__ == "__main__":
    main()
