"""Setuptools shim.

``pip install -e .`` uses pyproject.toml (PEP 517/660) and needs the
``wheel`` package; fully offline environments without it can fall back to
the legacy editable install this shim enables::

    python setup.py develop
"""

from setuptools import setup

setup()
