"""Ablation A3 — THREDDS variable subsetting on vs off.

Paper §III-A: "we reduced our total archive size from 455GB to 246GB.
This allowed us to significantly reduce the need to download entire
files ... greatly increasing the speed at which data is transferred."
The subset/full byte ratio is 246/455 ≈ 0.54, and on the egress-bound
path the duration ratio should track it.
"""

import warnings

from repro.testbed import build_nautilus_testbed
from repro.viz import text_table
from repro.workflow import DownloadStep, Workflow, WorkflowDriver


def _run_pair():
    out = {}
    for subset in (True, False):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            testbed = build_nautilus_testbed(seed=42, scale=0.1)
            step = DownloadStep(params={"subset": subset})
            report = WorkflowDriver(testbed).run(
                Workflow(f"sub{subset}", [step])
            )
        assert report.succeeded
        s = report.steps[0]
        out[subset] = (s.duration_s, s.data_processed_bytes)
    return out


def test_ablation_subsetting(benchmark):
    results = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    sub_dur, sub_bytes = results[True]
    full_dur, full_bytes = results[False]
    print()
    print(text_table(
        ["mode", "bytes (GB)", "duration (min)"],
        [
            ("variable subset (U,V,QV)", f"{sub_bytes / 1e9:.1f}",
             f"{sub_dur / 60:.1f}"),
            ("entire files", f"{full_bytes / 1e9:.1f}", f"{full_dur / 60:.1f}"),
        ],
        title="A3 — THREDDS subsetting on vs off (10% archive):",
    ))
    print(f"  byte ratio {sub_bytes / full_bytes:.3f} (paper 246/455 = 0.541)")
    print(f"  time ratio {sub_dur / full_dur:.3f}")

    # Byte ratio matches the paper exactly.
    assert abs(sub_bytes / full_bytes - 246 / 455) < 0.005
    # Subsetting genuinely speeds the transfer (paper's claim), and the
    # speedup tracks the byte ratio on the egress-bound path.
    assert sub_dur < full_dur
    assert 0.45 <= sub_dur / full_dur <= 0.70
