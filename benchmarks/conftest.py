"""Shared fixtures for the benchmark harness.

``paper_run`` executes the complete 4-step CONNECT workflow ONCE at the
paper's full scale (112,249 files / 246 GB subset / 50 GPUs) and is
shared by every figure/table benchmark; ablations build their own
smaller testbeds.
"""

import warnings

import pytest

from repro.testbed import build_nautilus_testbed
from repro.workflow import WorkflowDriver, build_connect_workflow

#: Paper-reported values every figure bench compares against.
PAPER = {
    "step1_minutes": 37.0,
    "step1_gigabytes": 246.0,
    "step1_files": 112_249,
    "step1_pods": 14,
    "step1_cpus": 42,
    "fig4_iops_MBps": 593.0,
    "fig4_throughput_GB": 2.64,
    "step2_minutes": 306.0,
    "step2_data_mb": 381,
    "step3_minutes": 1133.0,
    "step3_gpus": 50,
    "step3_voxels": 2.3e10,
    "step4_data_gb": 5.8,
}


@pytest.fixture(scope="session")
def paper_run():
    """(testbed, workflow, report) of a full-scale workflow execution."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        testbed = build_nautilus_testbed(seed=42, scale=1.0)
        workflow = build_connect_workflow(testbed)
        report = WorkflowDriver(testbed).run(workflow)
    assert report.succeeded, [s.error for s in report.steps]
    return testbed, workflow, report


@pytest.fixture()
def small_testbed():
    """A quick testbed for ablation sweeps (5% archive)."""
    return build_nautilus_testbed(seed=42, scale=0.05)


def seed_model_checkpoint(testbed, name: str = "ffn/checkpoint-v1") -> None:
    """Put a model object in the store so InferenceStep can run alone."""
    if not testbed.ceph.exists("models", name):
        testbed.ceph.put_sync("models", name, 4e6)
