"""Ablation A2 — worker-count scaling of the download job.

Paper §III-A uses 10 workers.  The sweep shows *why* 10 is enough: the
archive server's egress NIC saturates, so extra workers only help by
hiding each other's merge/store phases — throughput converges to the
server-side ceiling (~110 MB/s sustained, exactly the paper's
246 GB / 37 min operating point).
"""

import warnings

from repro.testbed import build_nautilus_testbed
from repro.viz import bar_chart
from repro.workflow import DownloadStep, Workflow, WorkflowDriver

WORKER_COUNTS = (1, 2, 5, 10, 20)


def _run_sweep():
    out = {}
    for n_workers in WORKER_COUNTS:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            testbed = build_nautilus_testbed(seed=42, scale=0.1)
            step = DownloadStep(params={"n_workers": n_workers})
            report = WorkflowDriver(testbed).run(
                Workflow(f"dl{n_workers}", [step])
            )
        assert report.succeeded
        s = report.steps[0]
        out[n_workers] = (
            s.duration_s,
            s.data_processed_bytes / s.duration_s,  # mean B/s
        )
    return out


def test_ablation_download_scaling(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print(bar_chart(
        [(f"{k:>2} workers", v[0] / 60.0) for k, v in results.items()],
        unit=" min",
        title="A2 — download duration vs worker count (10% archive):",
    ))
    for k, (dur, rate) in results.items():
        print(f"  {k:>2} workers: mean throughput {rate / 1e6:6.1f} MB/s")

    durations = {k: v[0] for k, v in results.items()}
    # More workers helps up to the server ceiling...
    assert durations[1] > durations[10]
    # ...then flattens: 20 workers buy <10% over 10 workers.
    assert durations[10] <= durations[20] * 1.10 + 1.0
    # The ceiling is the server NIC: sustained rate approaches but never
    # exceeds 125 MB/s.
    for _k, (_dur, rate) in results.items():
        assert rate <= 125e6 * 1.01
    # (At this 10% scale, pod startup dilutes the mean more than at full
    # scale, where the sustained rate reaches ~120 MB/s.)
    assert results[10][1] >= 0.70 * 125e6
