"""Ablation A8 — scheduler strategy: bin-packing vs spreading GPUs.

Not a paper figure, but a design choice DESIGN.md calls out: Nautilus
serves both many small pods and whole-node 8-GPU jobs.  SPREAD
scheduling fragments GPU nodes (every node ends up partially used, so an
8-GPU pod cannot place anywhere); BIN_PACK concentrates the small pods
and keeps whole nodes free.
"""

import warnings

from repro.cluster import (
    Cluster,
    PodPhase,
    Scheduler,
    SchedulingStrategy,
    fiona8_node_spec,
)
from repro.sim import Environment
from repro.viz import text_table
from tests.cluster.conftest import sleeper_spec


def _run(strategy: SchedulingStrategy):
    env = Environment()
    cluster = Cluster(env, scheduler=Scheduler(strategy))
    for i in range(4):
        cluster.add_node(fiona8_node_spec(f"gpu-{i}"))  # 32 GPUs total
    # 8 small long-running 2-GPU pods (16 GPUs of mixed load).
    for i in range(8):
        cluster.create_pod(f"small-{i}", sleeper_spec(duration=1e6, gpu=2))
    env.run(until=60)
    # Now a whole-node job arrives.
    big = cluster.create_pod("whole-node", sleeper_spec(duration=50, gpu=8))
    env.run(until=200)
    placed = big.phase in (PodPhase.RUNNING, PodPhase.SUCCEEDED)
    free_whole_nodes = sum(
        1 for n in cluster.ready_nodes() if n.free.gpu == 8
    )
    used_nodes = len(
        {p.node_name for p in cluster.list_pods(phase=PodPhase.RUNNING)
         if p.node_name}
    )
    return placed, free_whole_nodes, used_nodes


def _run_pair():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return {
            strategy.value: _run(strategy)
            for strategy in (SchedulingStrategy.SPREAD,
                             SchedulingStrategy.BIN_PACK)
        }


def test_ablation_scheduler_strategy(benchmark):
    results = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    print()
    print(text_table(
        ["strategy", "8-GPU pod placed", "whole nodes free", "nodes used"],
        [
            (name, placed, free, used)
            for name, (placed, free, used) in results.items()
        ],
        title="A8 — 8x 2-GPU pods + one whole-node 8-GPU pod on 4 nodes:",
    ))
    spread_placed, spread_free, spread_used = results["spread"]
    pack_placed, pack_free, pack_used = results["bin-pack"]
    # Spreading uses every node, fragmenting all of them...
    assert spread_used == 4
    assert spread_free == 0
    assert not spread_placed  # the whole-node job starves
    # ...bin-packing concentrates load and keeps whole nodes free.
    assert pack_used <= 2 + 1  # 2 packed nodes + possibly the big pod's
    assert pack_free >= 1
    assert pack_placed
