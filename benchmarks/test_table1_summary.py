"""Table I — Nautilus resource summary for all four workflow steps.

This is the headline reproduction: the whole 4-step workflow at the
paper's full scale, benchmarked end to end, with every Table-I cell
checked against the paper.
"""

import warnings

import pytest

from benchmarks.conftest import PAPER
from repro.testbed import build_nautilus_testbed
from repro.viz import render_table1
from repro.workflow import WorkflowDriver, build_connect_workflow

#: Table I of the paper, verbatim.
PAPER_TABLE = {
    "download": dict(pods=14, cpus=42, gpus=0, data_gb=246.0, mem_gb=225.0,
                     minutes=37.0),
    "training": dict(pods=1, cpus=1, gpus=1, data_gb=0.381, mem_gb=14.8,
                     minutes=306.0),
    "inference": dict(pods=50, cpus=50, gpus=50, data_gb=246.0, mem_gb=600.0,
                      minutes=1133.0),
    "visualization": dict(pods=1, cpus=1, gpus=1, data_gb=5.8, mem_gb=12.0,
                          minutes=None),  # paper: NA
}


def _run_full_workflow():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        testbed = build_nautilus_testbed(seed=42, scale=1.0)
        report = WorkflowDriver(testbed).run(build_connect_workflow(testbed))
    assert report.succeeded
    return report


def test_table1_summary(benchmark):
    report = benchmark.pedantic(_run_full_workflow, rounds=1, iterations=1)
    print()
    print(render_table1(report))

    table = report.table()
    for step_name, paper in PAPER_TABLE.items():
        measured = table[step_name]
        # Exact structural cells.
        assert measured["pods"] == paper["pods"], step_name
        assert round(measured["cpus"]) == paper["cpus"], step_name
        assert measured["gpus"] == paper["gpus"], step_name
        # Data within 3%, memory within 2%.
        assert measured["data_processed_gb"] == pytest.approx(
            paper["data_gb"], rel=0.03
        ), step_name
        assert measured["memory_gb"] == pytest.approx(
            paper["mem_gb"], rel=0.02
        ), step_name
        # Durations: NA stays NA; timed steps within 10%.
        if paper["minutes"] is None:
            assert measured["total_time"] == "NA", step_name
        else:
            assert measured["total_minutes"] == pytest.approx(
                paper["minutes"], rel=0.10
            ), step_name
