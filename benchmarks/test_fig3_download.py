"""Figure 3 — Kubernetes data download job orchestration.

Paper: "10 Workers, managed by a Redis job queue (each color represents
a worker).  Total time to run is 37 minutes with a total data size
transfer of 246GB (112,249 NetCDF files)."
"""

from benchmarks.conftest import PAPER
from repro.viz import figure3_stats, render_figure3


def test_fig3_download(paper_run, benchmark):
    testbed, _, report = paper_run
    stats = benchmark(figure3_stats, testbed, report)
    print()
    print(render_figure3(testbed, report))
    print(f"\npaper: {PAPER['step1_minutes']:.0f} min, "
          f"{PAPER['step1_gigabytes']:.0f} GB, {PAPER['step1_files']:,} files"
          f" | measured: {stats['minutes']:.1f} min, "
          f"{stats['gigabytes']:.0f} GB, {stats['files']:,.0f} files")

    # Byte- and file-exact.
    assert stats["files"] == PAPER["step1_files"]
    assert abs(stats["gigabytes"] - PAPER["step1_gigabytes"]) < 1.0
    # 10 workers via the Redis queue; 14 pods / 42 CPUs (Table I).
    assert stats["workers"] >= 10
    assert stats["pods"] == PAPER["step1_pods"]
    assert round(stats["cpus"]) == PAPER["step1_cpus"]
    # Duration shape: within ~25% of the paper's 37 minutes.
    assert 0.75 * PAPER["step1_minutes"] <= stats["minutes"] <= 1.25 * PAPER["step1_minutes"]
