"""Ablation A9 — Ceph replication factor: write cost vs availability.

§II-A: "Ceph replicates and dynamically distributes data between storage
nodes while monitoring their health ... and ensures high availability."
The trade is classic: each extra replica multiplies write traffic but
survives one more simultaneous disk loss.  Measured here on the same
flow-modelled cluster that backs the workflow.
"""

import warnings

import pytest

from repro.netsim import FlowSimulator, Topology
from repro.sim import Environment
from repro.storage import CephCluster
from repro.viz import text_table

GB = 1e9


def _build(replication: int):
    env = Environment()
    topo = Topology()
    topo.add_site("S")
    topo.attach_host("client", "S", nic_gbps=40.0)
    for i in range(6):
        topo.attach_host(f"stor-{i}", "S", nic_gbps=10.0)
    flows = FlowSimulator(env)
    ceph = CephCluster(env, flowsim=flows, topology=topo)
    for i in range(6):
        ceph.add_osd(host=f"stor-{i}", capacity=10e12, disk_Bps=200e6)
    ceph.create_pool("data", replication=replication)
    return env, ceph


def _measure(replication: int):
    env, ceph = _build(replication)
    # Timed write of 10 x 1 GB objects.
    events = [
        ceph.put("data", f"obj-{i}", 1 * GB, client_host="client")
        for i in range(10)
    ]
    env.run(until=env.all_of(events))
    write_time = env.now

    # Availability: kill replication-1 of each object's holders; data
    # must still be readable.  Kill one more and R=1 data is gone.
    survives = True
    for key in (f"obj-{i}" for i in range(10)):
        holders = ceph.holders("data", key)
        for osd in holders[: replication - 1]:
            if osd.up:
                osd.up = False  # direct kill; no recovery reprieve
        if not ceph.holders("data", key):
            survives = False
        for osd in ceph.osds.values():
            osd.up = True
    return write_time, ceph.total_used(), survives


def _run_sweep():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return {r: _measure(r) for r in (1, 2, 3)}


def test_ablation_replication(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print(text_table(
        ["replicas", "write time (s)", "bytes stored (GB)",
         "survives R-1 disk losses"],
        [
            (r, f"{t:.1f}", f"{used / GB:.0f}", survives)
            for r, (t, used, survives) in results.items()
        ],
        title="A9 — replication factor: 10 x 1 GB writes on 6 OSDs:",
    ))
    t1, used1, _ = results[1]
    t2, used2, s2 = results[2]
    t3, used3, s3 = results[3]
    # Storage cost is exactly linear in the replica count.
    assert used2 == pytest.approx(2 * used1)
    assert used3 == pytest.approx(3 * used1)
    # Write time grows with replication but sub-linearly (replicas are
    # written in parallel; the client NIC and disks share the work).
    assert t1 < t2 < t3
    assert t3 < 3.2 * t1
    # Availability: R>=2 survives R-1 losses by construction.
    assert s2 and s3
