"""Ablation A5 — distributed training via ReplicaSets (paper §III-E.2).

"Tensorflow will be able to distribute the training set and train in
parallel.  This in turn would speed up the time it takes to complete the
training step."  The modelled curve shows 1/K compute with growing
allreduce cost; the real NumPy data-parallel trainer shows gradient
averaging actually learns.
"""

import warnings

from repro.data.merra import MerraGenerator
from repro.ml import FFNConfig
from repro.testbed import build_nautilus_testbed
from repro.viz import bar_chart
from repro.workflow import DistributedTraining, Workflow, WorkflowDriver
from repro.workflow.extensions import data_parallel_train

REPLICA_COUNTS = (1, 2, 4, 8)


def _run_sweep():
    modelled = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        testbed = build_nautilus_testbed(seed=42, scale=0.001)
        for replicas in REPLICA_COUNTS:
            step = DistributedTraining(
                name=f"dt{replicas}",
                params={"n_replicas": replicas, "real_ml": False},
            )
            report = WorkflowDriver(testbed).run(
                Workflow(f"dt{replicas}", [step])
            )
            assert report.succeeded
            modelled[replicas] = report.steps[0].artifacts[
                "modelled_total_seconds"
            ]
        # Real data-parallel learning check.
        gen = MerraGenerator(seed=42)
        config = FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=42)
        _, loss = data_parallel_train(
            config,
            gen.ivt_volume(0, 16),
            gen.label_volume(0, 16),
            n_workers=4,
            steps=30,
            seed=42,
        )
    return modelled, loss


def test_ablation_distributed_training(benchmark):
    modelled, real_loss = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print(bar_chart(
        [(f"{k} replicas", v / 60.0) for k, v in modelled.items()],
        unit=" min",
        title="A5 — modelled distributed-training time (576x361x240 volume):",
    ))
    print(f"  real 4-worker data-parallel final loss: {real_loss:.3f}")

    # Speedup is monotone and sub-linear (allreduce erodes it).
    times = [modelled[k] for k in REPLICA_COUNTS]
    assert all(a > b for a, b in zip(times, times[1:]))
    speedup_8 = modelled[1] / modelled[8]
    assert 4.0 <= speedup_8 <= 8.0
    # The real data-parallel trainer genuinely converges.
    assert real_loss < 1.0
