"""Micro-benchmarks of the hot computational kernels.

Not paper artifacts — these track the performance of the NumPy kernels
everything else is built on (the HPC guide's "no optimization without
measuring").  pytest-benchmark runs each with many rounds, so regressions
in the vectorized paths show up immediately.
"""

import numpy as np
import pytest

from repro.data.merra import GridSpec, MerraGenerator
from repro.ml.conv3d import (
    conv3d_backward,
    conv3d_forward,
    conv3d_forward_batch,
)
from repro.ml.connect import label_volume
from repro.ml.ffn import FFNConfig, FFNModel
from repro.netsim.flows import CapacityResource, Flow, max_min_rates
from repro.storage.crush import place
from repro.storage.osd import OSD


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(8, 16, 16, 16)).astype(np.float32)
    w = rng.normal(size=(8, 8, 3, 3, 3)).astype(np.float32) * 0.1
    b = np.zeros(8, dtype=np.float32)
    return x, w, b


def test_micro_conv3d_forward(benchmark, conv_inputs):
    x, w, b = conv_inputs
    y = benchmark(conv3d_forward, x, w, b)
    assert y.shape == (8, 16, 16, 16)


def test_micro_conv3d_backward(benchmark, conv_inputs):
    x, w, _ = conv_inputs
    grad_y = np.ones((8, 16, 16, 16), dtype=np.float32)
    gx, gw, gb = benchmark(conv3d_backward, x, w, grad_y)
    assert gx.shape == x.shape


def test_micro_conv3d_forward_batch(benchmark, conv_inputs):
    x, w, b = conv_inputs
    xb = np.broadcast_to(x, (16, *x.shape)).copy()
    y = benchmark(conv3d_forward_batch, xb, w, b)
    assert y.shape == (16, 8, 16, 16, 16)
    # Batched item i is bit-for-bit the unbatched result.
    np.testing.assert_array_equal(y[0], conv3d_forward(x, w, b))


def test_micro_ffn_forward_batch(benchmark):
    model = FFNModel(FFNConfig(fov=(9, 9, 9), filters=8, modules=2, seed=0))
    rng = np.random.default_rng(1)
    images = rng.normal(size=(24, 9, 9, 9)).astype(np.float32)
    masks = np.full((24, 9, 9, 9), model.config.init_logit, dtype=np.float32)
    out = benchmark(model.forward_batch, images, masks)
    assert out.shape == (24, 9, 9, 9)


def test_micro_ffn_forward(benchmark):
    model = FFNModel(FFNConfig(fov=(9, 9, 9), filters=8, modules=2, seed=0))
    rng = np.random.default_rng(1)
    image = rng.normal(size=(9, 9, 9)).astype(np.float32)
    mask = np.full((9, 9, 9), model.config.init_logit, dtype=np.float32)
    out = benchmark(model.forward, image, mask)
    assert out.shape == (9, 9, 9)


def test_micro_ivt_field(benchmark):
    gen = MerraGenerator(GridSpec(nlat=181, nlon=288, nlev=16), seed=0)
    ivt = benchmark(gen.ivt_field, 0)
    assert ivt.shape == (181, 288)


def test_micro_connect_labeling(benchmark):
    rng = np.random.default_rng(2)
    mask = rng.random((24, 90, 144)) > 0.9
    labels, n = benchmark(label_volume, mask)
    assert n > 0


def test_micro_max_min_rates(benchmark):
    resources = [CapacityResource(f"r{i}", 1e9) for i in range(20)]
    rng = np.random.default_rng(3)
    flows = []
    for k in range(200):
        picks = rng.choice(20, size=int(rng.integers(1, 5)), replace=False)
        flows.append(
            Flow(f"f{k}", [resources[i] for i in picks], 1e9, None, 0.0)
        )
    rates = benchmark(max_min_rates, flows)
    assert len(rates) == 200


def test_micro_crush_placement(benchmark):
    osds = [OSD(i, f"host{i % 16}", 50e12) for i in range(64)]

    def place_many():
        return [place(pg, osds, 3) for pg in range(256)]

    out = benchmark(place_many)
    assert len(out) == 256
