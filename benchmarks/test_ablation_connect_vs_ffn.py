"""Ablation A7 — CONNECT (CPU baseline) vs FFN segmentation.

Paper §III: "Instead of using MATLAB functions that use a single CPU to
do the object segmentation, a new algorithm, Flood-Filling Network (FFN),
was used."  Both are implemented here for real; this ablation compares
segmentation quality against ground truth on a held-out window, and the
wall-clock asymmetry that motivates the cluster: CONNECT is serial, the
FFN shards across 50 GPUs.
"""

import time
import warnings

import numpy as np

from repro.data.merra import MerraGenerator
from repro.ml import (
    FFNConfig,
    FFNModel,
    FFNTrainer,
    connect_segmentation,
    segment_volume,
    voxel_metrics,
)
from repro.ml.perfmodel import GTX1080TI, PAPER_INFER_VOXELS
from repro.viz import text_table


def _run_comparison():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        gen = MerraGenerator(seed=42)
        train_vol, train_lab = gen.ivt_volume(0, 24), gen.label_volume(0, 24)
        test_vol, test_truth = gen.ivt_volume(24, 16), gen.label_volume(24, 16)

        model = FFNModel(FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=42))
        FFNTrainer(model, seed=42).train(train_vol, train_lab, steps=150)

        t0 = time.perf_counter()
        ffn_labels = segment_volume(model, test_vol, max_objects=16)
        ffn_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        connect_report = connect_segmentation(test_vol,
                                              threshold_percentile=93.0)
        connect_wall = time.perf_counter() - t0

    ffn_scores = voxel_metrics(ffn_labels, test_truth)
    connect_scores = voxel_metrics(connect_report.labels, test_truth)
    return ffn_scores, connect_scores, ffn_wall, connect_wall


def test_ablation_connect_vs_ffn(benchmark):
    ffn, connect, ffn_wall, connect_wall = benchmark.pedantic(
        _run_comparison, rounds=1, iterations=1
    )
    print()
    print(text_table(
        ["method", "precision", "recall", "F1", "wall (s, laptop)"],
        [
            ("FFN (ours, trained)", f"{ffn.precision:.3f}",
             f"{ffn.recall:.3f}", f"{ffn.f1:.3f}", f"{ffn_wall:.2f}"),
            ("CONNECT (baseline)", f"{connect.precision:.3f}",
             f"{connect.recall:.3f}", f"{connect.f1:.3f}",
             f"{connect_wall:.2f}"),
        ],
        title="A7 — segmentation quality on a held-out window:",
    ))
    # The paper-scale asymmetry: CONNECT is single-CPU serial; the FFN
    # shards over 50 GPUs.
    ffn_50gpu_minutes = (
        PAPER_INFER_VOXELS / 50 / GTX1080TI.infer_voxels_per_s / 60
    )
    print(f"  paper-scale FFN on 50 GPUs: {ffn_50gpu_minutes:,.0f} min "
          f"(vs a single-CPU serial pass for CONNECT)")

    # Both methods detect the rivers (F1 well above chance; foreground is
    # ~7% of voxels, so chance-level F1 ~ 0.13).
    assert ffn.f1 > 0.40
    assert connect.f1 > 0.40
    # The learned FFN is competitive with the hand-thresholded baseline.
    assert ffn.f1 > 0.6 * connect.f1
    # And it recovers most object voxels.
    assert ffn.recall > 0.5
