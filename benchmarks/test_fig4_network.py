"""Figure 4 — network usage during the download job.

Paper: "IOPS: Max 593MB/s.  Throughput: Max 2.64GB."  We read the first
as the peak per-storage-host disk write rate and the second as the data
volume moved per Grafana sampling window at peak (see EXPERIMENTS.md for
the unit discussion).
"""

from benchmarks.conftest import PAPER
from repro.viz import figure4_stats, render_figure4


def test_fig4_network(paper_run, benchmark):
    testbed, _, report = paper_run
    stats = benchmark(figure4_stats, testbed, report)
    print()
    print(render_figure4(testbed, report))
    print(f"\npaper: IOPS max {PAPER['fig4_iops_MBps']:.0f} MB/s, "
          f"throughput max {PAPER['fig4_throughput_GB']:.2f} GB | measured: "
          f"{stats['storage_write_peak_MBps']:.0f} MB/s, "
          f"{stats['throughput_peak_GB_per_sample']:.2f} GB/sample")

    # Storage IOPS peak: within ~25% of the paper's 593 MB/s (ours is the
    # 3-OSD-per-host disk ceiling: 600 MB/s).
    assert 0.75 * PAPER["fig4_iops_MBps"] <= stats["storage_write_peak_MBps"]
    assert stats["storage_write_peak_MBps"] <= 1.5 * PAPER["fig4_iops_MBps"]
    # WAN egress is bounded by the archive server NIC (the step-1
    # bottleneck): ~125 MB/s sustained at 1 GbE.
    assert 100.0 <= stats["wan_egress_peak_MBps"] <= 130.0
    # Throughput-per-sample lands in the paper's low-GB band.
    assert 1.0 <= stats["throughput_peak_GB_per_sample"] <= 4.0
