"""Ablation A4 — distributed data pre-processing (paper §III-E.1).

"Currently, this file input generation process is produced through a
serial process that creates the protobuf file ... this can be modified
to distribute this work in parallel to many worker jobs.  This would
greatly decrease the time it takes to make these input files."
"""

import warnings

from repro.testbed import build_nautilus_testbed
from repro.viz import bar_chart
from repro.workflow import DistributedPreprocessing, Workflow, WorkflowDriver

WORKER_COUNTS = (1, 2, 4, 8, 16)
CONVERT_BYTES = 128e9


def _run_sweep():
    durations = {}
    for n_workers in WORKER_COUNTS:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            testbed = build_nautilus_testbed(seed=42, scale=0.01)
            step = DistributedPreprocessing(
                params={"n_workers": n_workers,
                        "bytes_to_convert": CONVERT_BYTES}
            )
            report = WorkflowDriver(testbed).run(
                Workflow(f"prep{n_workers}", [step])
            )
        assert report.succeeded
        durations[n_workers] = report.steps[0].duration_s
        serial = report.steps[0].artifacts["serial_equivalent_s"]
    return durations, serial


def test_ablation_preprocessing(benchmark):
    durations, serial = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print(bar_chart(
        [("serial model", serial / 60.0)]
        + [(f"{k:>2} workers", v / 60.0) for k, v in durations.items()],
        unit=" min",
        title=f"A4 — protobuf generation of {CONVERT_BYTES / 1e9:.0f} GB:",
    ))
    # Parallelizing "greatly decreases the time" — >=3x at 8 workers.
    assert durations[1] / durations[8] >= 3.0
    # Monotone improvement until worker count exceeds chunk parallelism.
    assert durations[1] > durations[2] > durations[4] > durations[8]
    # One worker costs at least the serial conversion time.
    assert durations[1] >= serial
