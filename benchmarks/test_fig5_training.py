"""Figure 5 — the training job: data preparation vs FFN training.

Paper: "Purple shows the data preparation job.  Green is the FFN
algorithm training on a 576x361x240 data volume. ... Step 2's total run
time is 306 minutes" on a single NVIDIA 1080ti.
"""

from benchmarks.conftest import PAPER
from repro.viz import figure5_stats, render_figure5


def test_fig5_training(paper_run, benchmark):
    testbed, _, report = paper_run
    stats = benchmark(figure5_stats, testbed, report)
    print()
    print(render_figure5(testbed, report))
    print(f"\npaper: {PAPER['step2_minutes']:.0f} min total | measured: "
          f"{stats['total_minutes']:.1f} min "
          f"(prep {stats['prep_minutes']:.1f} + train "
          f"{stats['train_minutes']:.1f})")

    # Total within 5% of the paper's 306 minutes.
    assert abs(stats["total_minutes"] - PAPER["step2_minutes"]) <= 0.05 * PAPER["step2_minutes"]
    # The Figure-5 shape: prep is a visible but minor band before the
    # long training band.
    assert stats["prep_minutes"] > 10.0
    assert stats["train_minutes"] > 3.0 * stats["prep_minutes"]
    # The training volume is the paper's 576x361x240.
    assert stats["train_voxels"] == 576 * 361 * 240
    # Table I: single pod, 1 CPU, 1 GPU, 381 MB, 14.8 GB.
    step = report.step("training")
    assert (step.pods, round(step.cpus), step.gpus) == (1, 1, 1)
    assert step.data_processed_bytes == PAPER["step2_data_mb"] * 1e6
    assert round(step.memory_bytes / 1e9, 1) == 14.8

    # The real FFN genuinely learned during this run.
    training_report = step.artifacts["training_report"]
    assert training_report.improved
