"""Ablation A6 — self-healing under node failure (paper §V).

"If a node is taken offline the pods on that node will be rescheduled
on another node."  Run the download job with and without mid-run node
failures: the failed run must still complete (queue recovery + Job
controller replacements) at a bounded slowdown.
"""

import warnings

from repro.cluster import PodPhase
from repro.testbed import build_nautilus_testbed
from repro.viz import text_table
from repro.workflow import DownloadStep, Workflow, WorkflowDriver


def _run(chaos: bool):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        testbed = build_nautilus_testbed(seed=42, scale=0.05)
        if chaos:
            def chaos_proc(env):
                for kill_at in (60.0, 180.0):
                    if env.now < kill_at:
                        yield env.timeout(kill_at - env.now)
                    busy = [
                        node for node in testbed.cluster.ready_nodes()
                        if any(
                            "download-workers" in p.meta.name
                            and p.phase is PodPhase.RUNNING
                            for p in node.pods.values()
                        )
                    ]
                    if busy:
                        testbed.cluster.fail_node(busy[0].spec.name)

            testbed.env.process(chaos_proc(testbed.env), name="chaos")
        report = WorkflowDriver(testbed).run(
            Workflow("heal" if chaos else "calm", [DownloadStep()])
        )
        assert report.succeeded
        step = report.steps[0]
        lost = len(testbed.cluster.events_for("Node"))
        node_lost = len(
            [e for e in testbed.cluster.events if e.reason == "NodeLost"]
        )
    return step.duration_s, step.artifacts, node_lost


def _run_pair():
    calm_dur, calm_art, _ = _run(chaos=False)
    chaos_dur, chaos_art, node_lost = _run(chaos=True)
    return calm_dur, calm_art, chaos_dur, chaos_art, node_lost


def test_ablation_self_healing(benchmark):
    calm_dur, calm_art, chaos_dur, chaos_art, node_lost = benchmark.pedantic(
        _run_pair, rounds=1, iterations=1
    )
    print()
    print(text_table(
        ["run", "duration (min)", "files", "chunks re-queued"],
        [
            ("healthy", f"{calm_dur / 60:.1f}", calm_art["files_downloaded"],
             calm_art["queue_requeued"]),
            ("2 node failures", f"{chaos_dur / 60:.1f}",
             chaos_art["files_downloaded"], chaos_art["queue_requeued"]),
        ],
        title="A6 — download job with and without node failures (5% archive):",
    ))

    assert node_lost >= 1  # chaos actually fired
    # Work was lost and re-queued...
    assert chaos_art["queue_requeued"] > 0
    # ...yet every file was still downloaded (exactly-once effect).
    assert chaos_art["files_downloaded"] == calm_art["files_downloaded"]
    # Self-healing cost is bounded: < 2x the healthy duration.
    assert chaos_dur < 2.0 * calm_dur
    assert chaos_dur >= calm_dur * 0.95  # failures never make it faster
