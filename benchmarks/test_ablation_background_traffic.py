"""Ablation A10 — workflow behaviour under PRP cross traffic.

The PRP is shared infrastructure; the Science-DMZ design thesis is that
overprovisioned WAN cores keep science flows from hurting each other.
Run step 1 with and without heavy background traffic: because the
archive server's 1 GbE egress — not the 100G fabric — bounds the
download, contention barely moves the needle.
"""

import warnings

from repro.netsim.background import BackgroundTraffic
from repro.testbed import build_nautilus_testbed
from repro.viz import text_table
from repro.workflow import DownloadStep, Workflow, WorkflowDriver


def _run(with_traffic: bool):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        testbed = build_nautilus_testbed(seed=42, scale=0.05)
        bg = None
        if with_traffic:
            bg = BackgroundTraffic(
                testbed.env,
                testbed.flowsim,
                testbed.topology,
                mean_interarrival=5.0,  # aggressive: ~12 new flows/min
                flow_bytes=(1e9, 2e11),
                seed=9,
            )
        report = WorkflowDriver(testbed).run(Workflow("bg", [DownloadStep()]))
        assert report.succeeded
        offered = bg.bytes_offered if bg else 0.0
        return report.steps[0].duration_s, offered


def _run_pair():
    calm, _ = _run(False)
    loaded, offered = _run(True)
    return calm, loaded, offered


def test_ablation_background_traffic(benchmark):
    calm, loaded, offered = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    print()
    print(text_table(
        ["condition", "step-1 duration (min)", "cross traffic offered (GB)"],
        [
            ("quiet PRP", f"{calm / 60:.1f}", "0"),
            ("heavy cross traffic", f"{loaded / 60:.1f}",
             f"{offered / 1e9:.0f}"),
        ],
        title="A10 — download step under PRP contention (5% archive):",
    ))
    slowdown = loaded / calm
    print(f"  slowdown: {slowdown:.2f}x")
    # The Science-DMZ story: substantial offered load, bounded impact.
    assert offered > 100e9
    assert slowdown < 1.5
    assert slowdown >= 0.99  # contention never speeds things up
