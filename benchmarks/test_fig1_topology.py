"""Figure 1 — the PRP/Nautilus deployment (topology + storage inventory).

Paper: "a network of distributed fast GPU appliances for machine
learning and storage managed through Kubernetes on the high-speed
(10-100Gbps) Pacific Research Platform"; >20 partner institutions, four
supercomputer centers, over a petabyte of Ceph storage.
"""

from repro.testbed import build_nautilus_testbed
from repro.viz import render_figure1


def test_fig1_topology(benchmark):
    testbed = benchmark(build_nautilus_testbed, seed=42, scale=0.01)
    print()
    print(render_figure1(testbed))
    fig = testbed.figure1_summary()

    # Paper-shape assertions.
    assert fig["prp_sites"] >= 20  # "more than 20 institutions"
    assert fig["core_sites"] >= 4  # "four NSF/DOE/NASA supercomputer centers"
    assert fig["wan_link_speeds_gbps"] == [10.0, 40.0, 100.0]  # "10G, 40G, 100G"
    assert fig["storage_petabytes"] >= 1.0  # "over a petabyte of storage"
    assert fig["gpus"] >= 50  # enough for the step-3 fan-out
    assert fig["fiona8_nodes"] >= 7  # 50 GPUs / 8 per FIONA8

    # Every node is reachable from the THREDDS server over the PRP.
    for name in testbed.cluster.nodes:
        assert testbed.topology.route("its-dtn-02", name)
