"""Figure 6 — the inference job: CPU / memory / GPU utilization.

Paper: "The entire 246GB (576x361x112,249 or 2.3e10 voxels) is evenly
distributed across the 50 GPUs and the total inference time is 18 hours
53 minutes (1133 minutes)."
"""

from benchmarks.conftest import PAPER
from repro.viz import figure6_stats, render_figure6


def test_fig6_inference(paper_run, benchmark):
    testbed, _, report = paper_run
    stats = benchmark(figure6_stats, testbed, report)
    print()
    print(render_figure6(testbed, report))
    print(f"\npaper: {PAPER['step3_minutes']:.0f} min on "
          f"{PAPER['step3_gpus']} GPUs | measured: {stats['minutes']:.1f} min "
          f"on {stats['gpus']:.0f} GPUs (peak in use "
          f"{stats['peak_gpus_in_use']:.0f})")

    # 50 GPUs, all simultaneously busy at peak.
    assert stats["gpus"] == PAPER["step3_gpus"]
    assert stats["peak_gpus_in_use"] >= 50
    # The sharded volume is voxel-exact: 576 x 361 x 112,249.
    assert stats["voxels"] == 576 * 361 * 112_249
    assert abs(stats["voxels"] - PAPER["step3_voxels"]) / PAPER["step3_voxels"] < 0.02
    # Duration within ~10% of the paper (stragglers + shard reads ride on
    # top of the calibrated mean GPU throughput).
    assert abs(stats["minutes"] - PAPER["step3_minutes"]) <= 0.10 * PAPER["step3_minutes"]
    # Table I row: 50 pods / 50 CPUs / 600 GB.
    step = report.step("inference")
    assert (step.pods, round(step.cpus)) == (50, 50)
    assert round(step.memory_bytes / 1e9) == 600
    # Step 4's data: results land at ~5.8 GB (0.25 B/voxel packing).
    assert abs(step.artifacts["result_bytes"] / 1e9 - PAPER["step4_data_gb"]) < 0.2
