"""Ablation A1 — GPU-count scaling of the inference step.

Paper §III-C: "The number of GPUs in this section can scale to any
number depending on the number of inference jobs needed" and "it would
take a long time for a limited number of GPUs to produce the same
result".  Sweep the fan-out and confirm near-1/N scaling with straggler
flattening.
"""

import warnings

from benchmarks.conftest import seed_model_checkpoint
from repro.testbed import build_nautilus_testbed
from repro.viz import bar_chart
from repro.workflow import InferenceStep, Workflow, WorkflowDriver

GPU_COUNTS = (5, 10, 25, 50)


def _run_sweep():
    durations = {}
    for n_gpus in GPU_COUNTS:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            testbed = build_nautilus_testbed(seed=42, scale=0.2)
            seed_model_checkpoint(testbed)
            step = InferenceStep(params={"n_gpus": n_gpus, "real_ml": False})
            report = WorkflowDriver(testbed).run(
                Workflow(f"inf{n_gpus}", [step])
            )
        assert report.succeeded
        durations[n_gpus] = report.steps[0].duration_s
    return durations


def test_ablation_gpu_scaling(benchmark):
    durations = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    print(bar_chart(
        [(f"{k:>3} GPUs", v / 60.0) for k, v in durations.items()],
        unit=" min",
        title="A1 — inference duration vs GPU count (20% archive):",
    ))
    # Monotone: more GPUs never slower.
    values = [durations[k] for k in GPU_COUNTS]
    assert all(a > b for a, b in zip(values, values[1:]))
    # Near-linear region: 5 -> 50 GPUs gains at least 7x (ideal 10x,
    # eroded by per-pod constants and stragglers).
    assert durations[5] / durations[50] >= 7.0
    # And never super-linear.
    assert durations[5] / durations[50] <= 10.5
