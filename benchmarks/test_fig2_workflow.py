"""Figure 2 — the workflow steps diagram.

Paper: "the steps taken in the accelerated workflow include: 1.
downloading data from THREDDS and data preparation, 2. model training,
and 3. distributed multi-GPU model inference.  Step 4, the final step,
is visualization."
"""

from repro.viz import render_figure2
from repro.workflow import build_connect_workflow


def test_fig2_workflow(benchmark):
    workflow = benchmark(build_connect_workflow)
    print()
    print(render_figure2(workflow))

    assert workflow.order == ["download", "training", "inference",
                              "visualization"]
    # The chain structure of Figure 2: each step waits on its predecessor.
    assert workflow.steps["training"].depends_on == ["download"]
    assert workflow.steps["inference"].depends_on == ["training"]
    assert workflow.steps["visualization"].depends_on == ["inference"]
    # Each step runs its own container image (§III: "multiple Docker
    # images for job specific tasks").
    images = {s.image for s in workflow}
    assert len(images) == 4
