"""Rule pack ``spec``: cluster-spec admission lint.

The paper's virtual-cluster story (§IV, §V) assumes workloads are
well-formed before the scheduler sees them — on Nautilus that's
admission control plus community linting of manifests.  These rules
catch the spec mistakes that otherwise surface as runtime mysteries:
pods Pending forever because no FIONA can ever fit them, jobs that give
up on the first transient fault, services selecting nothing.

Every rule takes a :class:`~repro.analysis.model.ClusterSpecView` and
yields findings; the same pack runs over live clusters (admission
hook), the built testbed (``repro lint`` with no arguments), and JSON
fixtures.
"""

from __future__ import annotations

import typing as _t

from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.model import ClusterSpecView, PodView
from repro.analysis.registry import rule

__all__ = ["run_spec_rules"]


def _loc(view: ClusterSpecView, kind: str, name: str, namespace: str = "") -> Location:
    return Location(
        path=view.source if view.source.endswith(".json") else "",
        kind=kind,
        name=name,
        namespace=namespace,
    )


def _fmt_req(pod: PodView) -> str:
    parts = [f"cpu={pod.cpu:g}"]
    if pod.memory:
        parts.append(f"memory={pod.memory / 2**30:.1f}Gi")
    if pod.gpu:
        parts.append(f"gpu={pod.gpu}")
    return ", ".join(parts)


@rule(
    "SPEC001",
    "unschedulable-request",
    pack="spec",
    severity=Severity.ERROR,
    description="Pod requests more CPU/memory/GPU than any node's capacity",
)
def check_unschedulable(view: ClusterSpecView) -> _t.Iterator[Finding]:
    if not view.nodes:
        return
    max_gpu = max(n.gpu for n in view.nodes)
    seen: set[tuple] = set()
    for pod in view.all_pods():
        key = (pod.kind, pod.namespace, pod.name)
        if key in seen:  # job templates repeat per parallel slot
            continue
        seen.add(key)
        if any(node.fits(pod) for node in view.nodes):
            continue
        if pod.gpu > max_gpu:
            detail = (
                f"requests {pod.gpu} GPUs but the largest node has {max_gpu}"
            )
            fix = (
                f"shard the work across pods of <= {max_gpu} GPUs "
                "(one FIONA8 carries 8)"
            )
        else:
            detail = f"request ({_fmt_req(pod)}) exceeds every node's capacity"
            fix = "lower the request or add a larger node to the testbed"
        yield Finding(
            code="SPEC001",
            severity=Severity.ERROR,
            message=f"pod {pod.name!r} is unschedulable: {detail}",
            location=_loc(view, pod.kind, pod.name, pod.namespace),
            suggestion=fix,
        )


@rule(
    "SPEC002",
    "missing-resource-requests",
    pack="spec",
    severity=Severity.WARNING,
    description="Pod declares no CPU or memory requests at all",
)
def check_missing_requests(view: ClusterSpecView) -> _t.Iterator[Finding]:
    seen: set[tuple] = set()
    for pod in view.all_pods():
        key = (pod.kind, pod.namespace, pod.name)
        if key in seen or pod.has_requests:
            seen.add(key)
            continue
        seen.add(key)
        yield Finding(
            code="SPEC002",
            severity=Severity.WARNING,
            message=(
                f"pod {pod.name!r} declares no resource requests; the "
                "scheduler will pack it blindly and quota cannot account it"
            ),
            location=_loc(view, pod.kind, pod.name, pod.namespace),
            suggestion="declare cpu/memory requests on every container",
        )


@rule(
    "SPEC003",
    "missing-liveness-probe",
    pack="spec",
    severity=Severity.WARNING,
    description="Long-running pod has no liveness probe",
)
def check_missing_liveness(view: ClusterSpecView) -> _t.Iterator[Finding]:
    seen: set[tuple] = set()
    for pod in view.all_pods():
        key = (pod.kind, pod.namespace, pod.name)
        if key in seen or not pod.long_running or pod.has_liveness:
            seen.add(key)
            continue
        seen.add(key)
        yield Finding(
            code="SPEC003",
            severity=Severity.WARNING,
            message=(
                f"long-running pod {pod.name!r} has no liveness probe; a "
                "hang (e.g. behind a network partition) will never be "
                "detected or restarted"
            ),
            location=_loc(view, pod.kind, pod.name, pod.namespace),
            suggestion="attach a LivenessProbe so the kubelet restarts hung pods",
        )


@rule(
    "SPEC004",
    "job-without-retry-budget",
    pack="spec",
    severity=Severity.WARNING,
    description="Job has backoff_limit 0: one pod failure fails the job",
)
def check_job_retry(view: ClusterSpecView) -> _t.Iterator[Finding]:
    for job in view.jobs:
        if job.backoff_limit > 0:
            continue
        yield Finding(
            code="SPEC004",
            severity=Severity.WARNING,
            message=(
                f"job {job.name!r} has backoff_limit=0; any transient pod "
                "failure (NodeLost, liveness kill) fails the whole job"
            ),
            location=_loc(view, "Job", job.name, job.namespace),
            suggestion="set backoff_limit >= 1 (the paper's jobs tolerate "
                       "node churn, §V)",
        )


@rule(
    "SPEC005",
    "namespace-quota-oversubscribed",
    pack="spec",
    severity=Severity.ERROR,
    description="Declared pods exceed their namespace's ResourceQuota",
)
def check_quota_oversubscription(view: ClusterSpecView) -> _t.Iterator[Finding]:
    quotas = {ns.name: ns for ns in view.namespaces if ns.has_quota}
    if not quotas:
        return
    sums: dict[str, dict[str, float]] = {
        name: {"cpu": 0.0, "memory": 0.0, "gpu": 0.0, "pods": 0.0}
        for name in quotas
    }
    for pod in view.all_pods():
        agg = sums.get(pod.namespace)
        if agg is None:
            continue
        agg["cpu"] += pod.cpu
        agg["memory"] += pod.memory
        agg["gpu"] += pod.gpu
        agg["pods"] += 1
    for name in sorted(quotas):
        ns, agg = quotas[name], sums[name]
        over = []
        if agg["cpu"] > ns.quota_cpu + 1e-9:
            over.append(f"cpu {agg['cpu']:g} > {ns.quota_cpu:g}")
        if agg["memory"] > ns.quota_memory:
            over.append(
                f"memory {agg['memory'] / 2**30:.1f}Gi > "
                f"{ns.quota_memory / 2**30:.1f}Gi"
            )
        if agg["gpu"] > ns.quota_gpu:
            over.append(f"gpu {agg['gpu']:g} > {ns.quota_gpu:g}")
        if agg["pods"] > ns.quota_pods:
            over.append(f"pods {agg['pods']:g} > {ns.quota_pods:g}")
        if over:
            yield Finding(
                code="SPEC005",
                severity=Severity.ERROR,
                message=(
                    f"namespace {name!r} quota is oversubscribed by its "
                    f"declared pods: {'; '.join(over)}"
                ),
                location=_loc(view, "Namespace", name),
                suggestion="raise the quota or trim pod parallelism — "
                           "admission will reject the overflow at runtime",
            )


@rule(
    "SPEC006",
    "quota-exceeds-cluster",
    pack="spec",
    severity=Severity.WARNING,
    description="Namespace quota promises more than the whole cluster has",
)
def check_quota_vs_cluster(view: ClusterSpecView) -> _t.Iterator[Finding]:
    if not view.nodes:
        return
    total_cpu = sum(n.cpu for n in view.nodes)
    total_mem = sum(n.memory for n in view.nodes)
    total_gpu = sum(n.gpu for n in view.nodes)
    for ns in view.namespaces:
        if not ns.has_quota:
            continue
        over = []
        if ns.quota_cpu != float("inf") and ns.quota_cpu > total_cpu + 1e-9:
            over.append(f"cpu {ns.quota_cpu:g} > cluster {total_cpu:g}")
        if ns.quota_memory != float("inf") and ns.quota_memory > total_mem:
            over.append("memory quota exceeds cluster memory")
        if ns.quota_gpu != float("inf") and ns.quota_gpu > total_gpu:
            over.append(f"gpu {ns.quota_gpu:g} > cluster {total_gpu:g}")
        if over:
            yield Finding(
                code="SPEC006",
                severity=Severity.WARNING,
                message=(
                    f"namespace {ns.name!r} quota promises more than the "
                    f"cluster holds: {'; '.join(over)}"
                ),
                location=_loc(view, "Namespace", ns.name),
                suggestion="size quotas within aggregate node capacity so "
                           "admitted pods can actually schedule",
            )


@rule(
    "SPEC007",
    "service-selects-nothing",
    pack="spec",
    severity=Severity.WARNING,
    description="Service label selector matches zero declared pods",
)
def check_service_selector(view: ClusterSpecView) -> _t.Iterator[Finding]:
    pods = view.all_pods()
    for svc in view.services:
        if not svc.selector:
            continue
        matched = any(
            pod.namespace == svc.namespace and pod.matches(svc.selector)
            for pod in pods
        )
        if matched:
            continue
        selector = ",".join(f"{k}={v}" for k, v in sorted(svc.selector.items()))
        yield Finding(
            code="SPEC007",
            severity=Severity.WARNING,
            message=(
                f"service {svc.name!r} selector [{selector}] matches no "
                f"pod in namespace {svc.namespace!r}; lookups will resolve "
                "to zero endpoints"
            ),
            location=_loc(view, "Service", svc.name, svc.namespace),
            suggestion="align the selector with the pods' labels (or delete "
                       "the stale service)",
        )


@rule(
    "SPEC008",
    "missing-priority-class",
    pack="spec",
    severity=Severity.WARNING,
    description="Pod declares no priority class while the deployment "
                "uses priorities elsewhere",
)
def check_missing_priority(view: ClusterSpecView) -> _t.Iterator[Finding]:
    """Flag unprioritized pods *once the deployment opted into priorities*.

    A cluster where nothing declares a priority is fine — every pod is
    implicitly best-effort and the scheduler treats them uniformly, so
    legacy fixtures stay silent.  But as soon as one spec carries a
    priority class (or a nonzero numeric priority), unclassed pods
    silently become universal preemption victims; each one deserves an
    explicit decision (or a baseline entry grandfathering it).
    """
    pods = view.all_pods()
    if not any(pod.has_priority for pod in pods):
        return
    seen: set[tuple] = set()
    for pod in pods:
        key = (pod.kind, pod.namespace, pod.name)
        if key in seen or pod.has_priority:
            seen.add(key)
            continue
        seen.add(key)
        yield Finding(
            code="SPEC008",
            severity=Severity.WARNING,
            message=(
                f"pod {pod.name!r} has no priority class but this "
                "deployment uses priorities; it will be preempted before "
                "every classed pod"
            ),
            location=_loc(view, pod.kind, pod.name, pod.namespace),
            suggestion="set priority_class (best-effort/batch/normal/"
                       "high/system) to make the preemption order explicit",
        )


def run_spec_rules(
    view: ClusterSpecView, rules: _t.Iterable | None = None
) -> "list[Finding]":
    """Run (a subset of) the spec pack over one cluster view."""
    from repro.analysis.registry import registry

    findings: list[Finding] = []
    for r in rules if rules is not None else registry.rules(pack="spec"):
        findings.extend(r.check(view))
    return findings
