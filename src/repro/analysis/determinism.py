"""Rule pack ``det``: the determinism sanitizer.

The reproduction's whole measurement methodology (EXPERIMENTS.md
"Determinism", the PPoDS measure-learn loop) rests on one invariant:
the same seed produces the same run.  Every stochastic component must
draw from a generator derived via :func:`repro.sim.rng.derive_seed`,
and simulation code must read the *virtual* clock, never the wall
clock.  This pack is the static enforcement of that invariant — the
repo's analog of a race/nondeterminism detector — implemented as a
single AST walk per source file:

- ``DET001`` — unseeded ``np.random.default_rng()`` / ``RandomState()``.
- ``DET002`` — stdlib ``random.*`` (process-global, unseedable per
  stream) in simulation code paths.  Seeded helpers —
  ``random.seed(...)`` and ``random.Random(seed)`` — are exempt.
- ``DET003`` — wall-clock reads (``time.time``, ``datetime.now``...)
  in simulation code paths.
- ``DET004`` — module-level mutable state in simulation modules (shared
  across testbeds built in one process, so run N can perturb run N+1).

"Simulation code paths" are modules under ``sim/``, ``netsim/`` or
named ``chaos``: the kernel, the network model, and the fault
injectors, where a stray wall-clock read silently corrupts virtual
time.  Outside those paths DET002/DET003 downgrade to warnings and
DET004 stays quiet.  The *deep* pass (``repro lint --deep``,
:mod:`repro.analysis.taint`) replaces this path heuristic with the real
call graph: DET002/DET003 hits inside functions re-emerge as
DET010+ findings with the full call path when they are reachable from
a simulation entry point, and stay quiet when they are not.

Besides the shallow findings, the analyzer records *taint sources* for
the interprocedural pass: wall-clock reads, global-RNG draws,
environment reads (``os.environ`` / ``os.getenv``) and order-sensitive
iteration (``for x in set(...)``, unsorted ``os.listdir``) — see
:func:`collect_taint_sources`.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import typing as _t

from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.registry import rule

__all__ = [
    "lint_source",
    "lint_python_paths",
    "is_sim_path",
    "collect_taint_sources",
    "expand_python_paths",
    "SourceHit",
]

#: path components that mark simulation-critical code
_SIM_DIR_MARKERS = {"sim", "netsim"}
_SIM_FILE_MARKERS = ("chaos",)

#: wall-clock calls: (module, attribute) pairs the sanitizer flags
_WALL_CLOCK_TIME_ATTRS = {"time", "time_ns"}
_WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: builtin constructors whose module-level use creates shared mutable state
_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "defaultdict", "OrderedDict", "deque", "Counter",
}

#: stdlib ``random`` attributes that *seed* rather than draw — calling
#: them is determinism hygiene, not a violation
_RANDOM_SEEDING_ATTRS = {"seed", "getstate", "setstate"}

#: filesystem/glob calls whose result order is OS-dependent
_FS_ORDER_CALLS = {
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
}
_FS_ORDER_METHODS = {"iterdir", "glob", "rglob"}


def is_sim_path(path: "str | pathlib.Path") -> bool:
    """True when the file lives on a simulation-critical code path."""
    p = pathlib.Path(path)
    if _SIM_DIR_MARKERS & {part.lower() for part in p.parts[:-1]}:
        return True
    return any(marker in p.stem.lower() for marker in _SIM_FILE_MARKERS)


def expand_python_paths(
    paths: _t.Iterable["str | pathlib.Path"],
) -> "list[pathlib.Path]":
    """Expand files and directories into a sorted, de-duplicated list of
    ``*.py`` files (the unit both the shallow and deep passes walk)."""
    files: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    for raw in paths:
        root = pathlib.Path(raw)
        candidates = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in candidates:
            if file not in seen:
                seen.add(file)
                files.append(file)
    return files


@dataclasses.dataclass(frozen=True)
class SourceHit:
    """One raw analyzer hit, before severity/reporting policy."""

    code: str  # DET001..DET004, or taint-only ENV / ORDER
    line: int
    detail: str
    #: dotted in-module scope ("Cls.method"); "" at module level
    qualname: str


class _Analyzer(ast.NodeVisitor):
    """One pass over a module, accumulating raw hits per rule code."""

    def __init__(self) -> None:
        #: local alias -> canonical module ("numpy.random", "random", ...)
        self.module_aliases: dict[str, str] = {}
        #: local name -> canonical dotted origin ("random.randint", ...)
        self.name_origins: dict[str, str] = {}
        self.hits: list[SourceHit] = []
        self._scope: list[str] = []

    @property
    def _depth(self) -> int:
        return len(self._scope)

    def _hit(self, code: str, line: int, detail: str) -> None:
        self.hits.append(
            SourceHit(code=code, line=line, detail=detail,
                      qualname=".".join(self._scope))
        )

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self.name_origins[alias.asname or alias.name] = (
                f"{module}.{alias.name}" if module else alias.name
            )
        self.generic_visit(node)

    # -- resolution helpers --------------------------------------------------

    def _canonical(self, node: ast.expr) -> str:
        """Resolve a call target to a dotted path through known aliases."""
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            root = cur.id
            if root in self.module_aliases:
                parts.append(self.module_aliases[root])
            elif root in self.name_origins:
                parts.append(self.name_origins[root])
            else:
                parts.append(root)
        else:
            return ""
        return ".".join(reversed(parts))

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._canonical(node.func)
        if dotted:
            self._check_rng(node, dotted)
            self._check_stdlib_random(node, dotted)
            self._check_wall_clock(node, dotted)
            self._check_env_read(node, dotted)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, dotted: str) -> None:
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf not in ("default_rng", "RandomState"):
            return
        if not (dotted.startswith("numpy.") or "random" in dotted):
            return
        if node.args or node.keywords:
            return  # seeded (or at least explicitly parameterized)
        self._hit("DET001", node.lineno, f"{leaf}() has no seed")

    def _check_stdlib_random(self, node: ast.Call, dotted: str) -> None:
        if not dotted.startswith("random."):
            return
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf in _RANDOM_SEEDING_ATTRS:
            return  # random.seed(...) is determinism hygiene, not a draw
        if leaf == "Random" and (node.args or node.keywords):
            return  # random.Random(seed): a seeded private stream
        self._hit("DET002", node.lineno, dotted)

    def _check_wall_clock(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if parts[0] == "time" and parts[-1] in _WALL_CLOCK_TIME_ATTRS:
            self._hit("DET003", node.lineno, dotted)
            return
        if parts[0] == "datetime" and parts[-1] in _WALL_CLOCK_DATETIME_ATTRS:
            self._hit("DET003", node.lineno, dotted)
            return
        # `from datetime import datetime` -> datetime.now()
        origin = self.name_origins.get(parts[0], "")
        if (
            origin.startswith("datetime.")
            and len(parts) > 1
            and parts[-1] in _WALL_CLOCK_DATETIME_ATTRS
        ):
            self._hit("DET003", node.lineno, f"{origin}.{parts[-1]}")

    # -- taint-only sources ---------------------------------------------------

    def _check_env_read(self, node: ast.Call, dotted: str) -> None:
        if dotted in ("os.getenv", "os.environ.get"):
            self._hit("ENV", node.lineno, dotted)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._canonical(node.value) == "os.environ":
            self._hit("ENV", node.lineno, "os.environ[...]")
        self.generic_visit(node)

    def _iter_order_detail(self, expr: ast.expr) -> str:
        """Classify an iterable expression as order-unstable, or ''."""
        if isinstance(expr, ast.Set) or isinstance(expr, ast.SetComp):
            return "set literal"
        if isinstance(expr, ast.Call):
            dotted = self._canonical(expr.func)
            leaf = dotted.rsplit(".", 1)[-1]
            if dotted == "set" or dotted.endswith(".set"):
                return "set(...)"
            if dotted in _FS_ORDER_CALLS:
                return f"{dotted}(...)"
            if leaf in _FS_ORDER_METHODS and dotted.startswith(
                ("pathlib.", "Path.")
            ):
                return f"{dotted}(...)"
        return ""

    def _check_iteration(self, iter_expr: ast.expr, line: int) -> None:
        detail = self._iter_order_detail(iter_expr)
        if detail:
            self._hit("ORDER", line, detail)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node.lineno)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iteration(node.iter, node.iter.lineno)
        self.generic_visit(node)

    # -- module-level state ----------------------------------------------------

    def _flag_mutable(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if name.startswith("__") and name.endswith("__"):
            return  # __all__ and friends are convention, not state
        mutable = isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        )
        if isinstance(value, ast.Call):
            callee = self._canonical(value.func).rsplit(".", 1)[-1]
            mutable = callee in _MUTABLE_CONSTRUCTORS
        if mutable:
            self._hit("DET004", target.lineno, name)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._depth == 0:
            for target in node.targets:
                self._flag_mutable(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._depth == 0 and node.value is not None:
            self._flag_mutable(node.target, node.value)
        self.generic_visit(node)

    # -- scope tracking ----------------------------------------------------

    def _scoped(self, node: ast.AST) -> None:
        self._scope.append(getattr(node, "name", "<lambda>"))
        self.generic_visit(node)
        self._scope.pop()

    visit_FunctionDef = _scoped
    visit_AsyncFunctionDef = _scoped
    visit_ClassDef = _scoped
    visit_Lambda = _scoped


def _severity(code: str, sim: bool) -> "Severity | None":
    """Map a raw hit to a severity given the file's code path (or drop it)."""
    if code == "DET001":
        return Severity.ERROR
    if code in ("DET002", "DET003"):
        return Severity.ERROR if sim else Severity.WARNING
    if code == "DET004":
        return Severity.WARNING if sim else None
    if code in ("ENV", "ORDER"):
        return None  # taint-only sources: reported by the deep pass
    raise AssertionError(code)  # pragma: no cover


_MESSAGES = {
    "DET001": (
        "unseeded random generator: {detail}; derive the seed via "
        "repro.sim.rng.derive_seed so reruns reproduce",
        "pass a seed: np.random.default_rng(derive_seed(root, \"stream\"))",
    ),
    "DET002": (
        "stdlib {detail}() draws from process-global state; simulation "
        "code must use a seeded numpy Generator",
        "use SeededRNG.stream(...) / np.random.default_rng(derive_seed(...))",
    ),
    "DET003": (
        "wall-clock read {detail}() in simulation code; virtual time "
        "comes from env.now",
        "read env.now (or pass timestamps in) instead of the wall clock",
    ),
    "DET004": (
        "module-level mutable state {detail!r} is shared by every testbed "
        "built in this process; run N can perturb run N+1",
        "move the state into a class/testbed instance or make it immutable",
    ),
}


def _snippet_at(lines: "list[str]", line: int) -> str:
    if 1 <= line <= len(lines):
        return lines[line - 1].strip()
    return ""


def _analyze(source: str, path: "str | pathlib.Path"):
    """Parse and walk one source text; returns (analyzer, error_finding)."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(
            code="DET000",
            severity=Severity.ERROR,
            message=f"source does not parse: {exc.msg}",
            location=Location(path=str(path), line=exc.lineno or 0),
            suggestion="fix the syntax error before linting",
        )
    analyzer = _Analyzer()
    analyzer.visit(tree)
    return analyzer, None


def lint_source(
    source: str, path: "str | pathlib.Path" = "<string>"
) -> "list[Finding]":
    """Run the determinism pack over one Python source text."""
    analyzer, error = _analyze(source, path)
    if analyzer is None:
        return [error]
    sim = is_sim_path(path)
    lines = source.splitlines()
    findings: list[Finding] = []
    for hit in analyzer.hits:
        severity = _severity(hit.code, sim)
        if severity is None:
            continue
        message, suggestion = _MESSAGES[hit.code]
        findings.append(
            Finding(
                code=hit.code,
                severity=severity,
                message=message.format(detail=hit.detail),
                location=Location(path=str(path), line=hit.line),
                suggestion=suggestion,
                qualname=hit.qualname,
                snippet=_snippet_at(lines, hit.line),
            )
        )
    return findings


#: maps raw analyzer hit codes to taint-source kinds for the deep pass
_TAINT_KINDS = {
    "DET002": "global-rng",
    "DET003": "wall-clock",
    "ENV": "env-read",
    "ORDER": "unordered-iter",
}


def collect_taint_sources(
    source: str, path: "str | pathlib.Path" = "<string>"
) -> "list[tuple[str, str, int, str, str]]":
    """Taint sources for :mod:`repro.analysis.taint`.

    Returns ``(kind, detail, line, qualname, snippet)`` tuples, where
    ``kind`` is one of ``wall-clock`` / ``global-rng`` / ``env-read`` /
    ``unordered-iter`` and ``qualname`` is the dotted in-module scope
    the source sits in ("" for module level).
    """
    analyzer, _error = _analyze(source, path)
    if analyzer is None:
        return []
    lines = source.splitlines()
    out = []
    for hit in analyzer.hits:
        kind = _TAINT_KINDS.get(hit.code)
        if kind is None:
            continue
        out.append(
            (kind, hit.detail, hit.line, hit.qualname,
             _snippet_at(lines, hit.line))
        )
    return out


def lint_python_paths(
    paths: _t.Iterable["str | pathlib.Path"],
) -> "list[Finding]":
    """Lint files and directories (recursing into ``*.py``)."""
    findings: list[Finding] = []
    for file in expand_python_paths(paths):
        findings.extend(lint_source(file.read_text(), path=file))
    return findings


# Registered for discoverability (--list-rules, docs); the engine calls
# lint_source directly since the det pack's subject is a file, not a view.
def _register_det_rules() -> None:
    specs = [
        ("DET001", "unseeded-rng", Severity.ERROR,
         "np.random.default_rng()/RandomState() called without a seed"),
        ("DET002", "stdlib-random", Severity.ERROR,
         "stdlib random.* in simulation code paths (warning elsewhere)"),
        ("DET003", "wall-clock-read", Severity.ERROR,
         "time.time()/datetime.now() in simulation code paths "
         "(warning elsewhere)"),
        ("DET004", "module-level-mutable-state", Severity.WARNING,
         "module-level list/dict/set state in simulation modules"),
    ]
    for code, name, severity, description in specs:
        rule(code, name, pack="det", severity=severity,
             description=description)(lint_source)


_register_det_rules()
