"""Rule pack ``det``: the determinism sanitizer.

The reproduction's whole measurement methodology (EXPERIMENTS.md
"Determinism", the PPoDS measure-learn loop) rests on one invariant:
the same seed produces the same run.  Every stochastic component must
draw from a generator derived via :func:`repro.sim.rng.derive_seed`,
and simulation code must read the *virtual* clock, never the wall
clock.  This pack is the static enforcement of that invariant — the
repo's analog of a race/nondeterminism detector — implemented as a
single AST walk per source file:

- ``DET001`` — unseeded ``np.random.default_rng()`` / ``RandomState()``.
- ``DET002`` — stdlib ``random.*`` (process-global, unseedable per
  stream) in simulation code paths.
- ``DET003`` — wall-clock reads (``time.time``, ``datetime.now``...)
  in simulation code paths.
- ``DET004`` — module-level mutable state in simulation modules (shared
  across testbeds built in one process, so run N can perturb run N+1).

"Simulation code paths" are modules under ``sim/``, ``netsim/`` or
named ``chaos``: the kernel, the network model, and the fault
injectors, where a stray wall-clock read silently corrupts virtual
time.  Outside those paths DET002/DET003 downgrade to warnings and
DET004 stays quiet.
"""

from __future__ import annotations

import ast
import pathlib
import typing as _t

from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.registry import rule

__all__ = ["lint_source", "lint_python_paths", "is_sim_path"]

#: path components that mark simulation-critical code
_SIM_DIR_MARKERS = {"sim", "netsim"}
_SIM_FILE_MARKERS = ("chaos",)

#: wall-clock calls: (module, attribute) pairs the sanitizer flags
_WALL_CLOCK_TIME_ATTRS = {"time", "time_ns"}
_WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: builtin constructors whose module-level use creates shared mutable state
_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "defaultdict", "OrderedDict", "deque", "Counter",
}


def is_sim_path(path: "str | pathlib.Path") -> bool:
    """True when the file lives on a simulation-critical code path."""
    p = pathlib.Path(path)
    if _SIM_DIR_MARKERS & {part.lower() for part in p.parts[:-1]}:
        return True
    return any(marker in p.stem.lower() for marker in _SIM_FILE_MARKERS)


class _Analyzer(ast.NodeVisitor):
    """One pass over a module, accumulating raw hits per rule code."""

    def __init__(self) -> None:
        #: local alias -> canonical module ("numpy.random", "random", ...)
        self.module_aliases: dict[str, str] = {}
        #: local name -> canonical dotted origin ("random.randint", ...)
        self.name_origins: dict[str, str] = {}
        self.hits: list[tuple[str, int, str]] = []  # (code, line, detail)
        self._depth = 0

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self.name_origins[alias.asname or alias.name] = (
                f"{module}.{alias.name}" if module else alias.name
            )
        self.generic_visit(node)

    # -- resolution helpers --------------------------------------------------

    def _canonical(self, node: ast.expr) -> str:
        """Resolve a call target to a dotted path through known aliases."""
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            root = cur.id
            if root in self.module_aliases:
                parts.append(self.module_aliases[root])
            elif root in self.name_origins:
                parts.append(self.name_origins[root])
            else:
                parts.append(root)
        else:
            return ""
        return ".".join(reversed(parts))

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._canonical(node.func)
        if dotted:
            self._check_rng(node, dotted)
            self._check_stdlib_random(node, dotted)
            self._check_wall_clock(node, dotted)
        self.generic_visit(node)

    def _check_rng(self, node: ast.Call, dotted: str) -> None:
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf not in ("default_rng", "RandomState"):
            return
        if not (dotted.startswith("numpy.") or "random" in dotted):
            return
        if node.args or node.keywords:
            return  # seeded (or at least explicitly parameterized)
        self.hits.append(("DET001", node.lineno, f"{leaf}() has no seed"))

    def _check_stdlib_random(self, node: ast.Call, dotted: str) -> None:
        if dotted.startswith("random."):
            self.hits.append(("DET002", node.lineno, dotted))

    def _check_wall_clock(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if parts[0] == "time" and parts[-1] in _WALL_CLOCK_TIME_ATTRS:
            self.hits.append(("DET003", node.lineno, dotted))
            return
        if parts[0] == "datetime" and parts[-1] in _WALL_CLOCK_DATETIME_ATTRS:
            self.hits.append(("DET003", node.lineno, dotted))
            return
        # `from datetime import datetime` -> datetime.now()
        origin = self.name_origins.get(parts[0], "")
        if (
            origin.startswith("datetime.")
            and len(parts) > 1
            and parts[-1] in _WALL_CLOCK_DATETIME_ATTRS
        ):
            self.hits.append(("DET003", node.lineno, f"{origin}.{parts[-1]}"))

    # -- module-level state ----------------------------------------------------

    def _flag_mutable(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if name.startswith("__") and name.endswith("__"):
            return  # __all__ and friends are convention, not state
        mutable = isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        )
        if isinstance(value, ast.Call):
            callee = self._canonical(value.func).rsplit(".", 1)[-1]
            mutable = callee in _MUTABLE_CONSTRUCTORS
        if mutable:
            self.hits.append(("DET004", target.lineno, name))

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._depth == 0:
            for target in node.targets:
                self._flag_mutable(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._depth == 0 and node.value is not None:
            self._flag_mutable(node.target, node.value)
        self.generic_visit(node)

    # -- scope depth tracking ----------------------------------------------------

    def _scoped(self, node: ast.AST) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _scoped
    visit_AsyncFunctionDef = _scoped
    visit_ClassDef = _scoped
    visit_Lambda = _scoped


def _severity(code: str, sim: bool) -> "Severity | None":
    """Map a raw hit to a severity given the file's code path (or drop it)."""
    if code == "DET001":
        return Severity.ERROR
    if code in ("DET002", "DET003"):
        return Severity.ERROR if sim else Severity.WARNING
    if code == "DET004":
        return Severity.WARNING if sim else None
    raise AssertionError(code)  # pragma: no cover


_MESSAGES = {
    "DET001": (
        "unseeded random generator: {detail}; derive the seed via "
        "repro.sim.rng.derive_seed so reruns reproduce",
        "pass a seed: np.random.default_rng(derive_seed(root, \"stream\"))",
    ),
    "DET002": (
        "stdlib {detail}() draws from process-global state; simulation "
        "code must use a seeded numpy Generator",
        "use SeededRNG.stream(...) / np.random.default_rng(derive_seed(...))",
    ),
    "DET003": (
        "wall-clock read {detail}() in simulation code; virtual time "
        "comes from env.now",
        "read env.now (or pass timestamps in) instead of the wall clock",
    ),
    "DET004": (
        "module-level mutable state {detail!r} is shared by every testbed "
        "built in this process; run N can perturb run N+1",
        "move the state into a class/testbed instance or make it immutable",
    ),
}


def lint_source(
    source: str, path: "str | pathlib.Path" = "<string>"
) -> "list[Finding]":
    """Run the determinism pack over one Python source text."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                code="DET000",
                severity=Severity.ERROR,
                message=f"source does not parse: {exc.msg}",
                location=Location(path=str(path), line=exc.lineno or 0),
                suggestion="fix the syntax error before linting",
            )
        ]
    analyzer = _Analyzer()
    analyzer.visit(tree)
    sim = is_sim_path(path)
    findings: list[Finding] = []
    for code, line, detail in analyzer.hits:
        severity = _severity(code, sim)
        if severity is None:
            continue
        message, suggestion = _MESSAGES[code]
        findings.append(
            Finding(
                code=code,
                severity=severity,
                message=message.format(detail=detail),
                location=Location(path=str(path), line=line),
                suggestion=suggestion,
            )
        )
    return findings


def lint_python_paths(
    paths: _t.Iterable["str | pathlib.Path"],
) -> "list[Finding]":
    """Lint files and directories (recursing into ``*.py``)."""
    findings: list[Finding] = []
    for raw in paths:
        root = pathlib.Path(raw)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(lint_source(file.read_text(), path=file))
    return findings


# Registered for discoverability (--list-rules, docs); the engine calls
# lint_source directly since the det pack's subject is a file, not a view.
def _register_det_rules() -> None:
    specs = [
        ("DET001", "unseeded-rng", Severity.ERROR,
         "np.random.default_rng()/RandomState() called without a seed"),
        ("DET002", "stdlib-random", Severity.ERROR,
         "stdlib random.* in simulation code paths (warning elsewhere)"),
        ("DET003", "wall-clock-read", Severity.ERROR,
         "time.time()/datetime.now() in simulation code paths "
         "(warning elsewhere)"),
        ("DET004", "module-level-mutable-state", Severity.WARNING,
         "module-level list/dict/set state in simulation modules"),
    ]
    for code, name, severity, description in specs:
        rule(code, name, pack="det", severity=severity,
             description=description)(lint_source)


_register_det_rules()
