"""repro-lint: rule-based static analysis for the reproduction.

The paper's cluster stays operable because workloads are vetted
*before* they run (admission control, manifest linting, namespace
quotas — §IV/§V); this package is that pre-flight layer for the
reproduction, exposed as ``python -m repro lint``.  Three rule packs:

- ``spec`` (:mod:`~repro.analysis.cluster_rules`) — admission lint for
  Pod/Job/Namespace/Service specs against the testbed's nodes:
  unschedulable requests, missing requests/probes, zero retry budgets,
  quota oversubscription, selectors matching nothing.
- ``dag`` (:mod:`~repro.analysis.workflow_rules`) — workflow DAG lint:
  cycles (with the full path quoted), self/unknown dependencies,
  orphans, network steps without timeout/retry budgets, checkpoint
  coverage gaps, aggregate GPU oversubscription across concurrent
  branches.
- ``det`` (:mod:`~repro.analysis.determinism`) — the determinism
  sanitizer, an AST pass flagging unseeded RNGs, stdlib ``random``,
  wall-clock reads and module-level mutable state in simulation code.

The *deep* pass (``repro lint --deep``) adds three whole-program
engines on top of a module-level call graph
(:mod:`~repro.analysis.callgraph`):

- interprocedural determinism taint (:mod:`~repro.analysis.taint`,
  DET010+) — nondeterminism sources reported with the full call path
  from simulation entry points, replacing the shallow path heuristic;
- concurrency hazards (:mod:`~repro.analysis.concurrency_rules`,
  CONC001+) — stale guards across yields, callback/process shared
  writes, module-level state mutated from sim code;
- cross-layer deployment lint (:mod:`~repro.analysis.deployment_rules`,
  DEPLOY001+) — retry storms, priority starvation, quota/burst
  infeasibility over the joined gateway + cluster + workflow view.

Findings carry a rule code, severity, location and suggestion;
:class:`Baseline` files grandfather accepted findings so the linter can
gate CI (``--strict``) without stopping the world, and
:mod:`~repro.analysis.sarif` renders reports as SARIF 2.1.0 for
code-scanning UIs.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.concurrency_rules import run_concurrency_rules
from repro.analysis.deployment_rules import run_deployment_rules
from repro.analysis.determinism import is_sim_path, lint_python_paths, lint_source
from repro.analysis.engine import LintEngine, LintReport, lint_cluster, lint_workflow
from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.graph import find_cycle, format_cycle
from repro.analysis.model import (
    ClientRetryView,
    ClusterSpecView,
    DeploymentView,
    GatewayView,
    JobView,
    NamespaceView,
    NodeView,
    PodView,
    ServiceView,
    StepView,
    TenantView,
    WorkflowView,
    cluster_view,
    deployment_view_from_dict,
    pod_view_from_spec,
    spec_view_from_dict,
    workflow_view,
    workflow_views_from_dict,
)
from repro.analysis.registry import Rule, RuleRegistry, registry
from repro.analysis.sarif import render_sarif, to_sarif, validate_sarif
from repro.analysis.taint import run_taint_analysis
from repro.analysis.workflow_rules import STRUCTURAL_DAG_CODES

__all__ = [
    "Baseline",
    "CallGraph",
    "ClientRetryView",
    "ClusterSpecView",
    "DeploymentView",
    "Finding",
    "GatewayView",
    "JobView",
    "LintEngine",
    "LintReport",
    "Location",
    "NamespaceView",
    "NodeView",
    "PodView",
    "Rule",
    "RuleRegistry",
    "STRUCTURAL_DAG_CODES",
    "ServiceView",
    "Severity",
    "StepView",
    "TenantView",
    "WorkflowView",
    "build_call_graph",
    "cluster_view",
    "deployment_view_from_dict",
    "find_cycle",
    "format_cycle",
    "is_sim_path",
    "lint_cluster",
    "lint_python_paths",
    "lint_source",
    "lint_workflow",
    "pod_view_from_spec",
    "registry",
    "render_sarif",
    "run_concurrency_rules",
    "run_deployment_rules",
    "run_taint_analysis",
    "spec_view_from_dict",
    "to_sarif",
    "validate_sarif",
    "workflow_view",
    "workflow_views_from_dict",
]
