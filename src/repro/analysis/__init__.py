"""repro-lint: rule-based static analysis for the reproduction.

The paper's cluster stays operable because workloads are vetted
*before* they run (admission control, manifest linting, namespace
quotas — §IV/§V); this package is that pre-flight layer for the
reproduction, exposed as ``python -m repro lint``.  Three rule packs:

- ``spec`` (:mod:`~repro.analysis.cluster_rules`) — admission lint for
  Pod/Job/Namespace/Service specs against the testbed's nodes:
  unschedulable requests, missing requests/probes, zero retry budgets,
  quota oversubscription, selectors matching nothing.
- ``dag`` (:mod:`~repro.analysis.workflow_rules`) — workflow DAG lint:
  cycles (with the full path quoted), self/unknown dependencies,
  orphans, network steps without timeout/retry budgets, checkpoint
  coverage gaps, aggregate GPU oversubscription across concurrent
  branches.
- ``det`` (:mod:`~repro.analysis.determinism`) — the determinism
  sanitizer, an AST pass flagging unseeded RNGs, stdlib ``random``,
  wall-clock reads and module-level mutable state in simulation code.

Findings carry a rule code, severity, location and suggestion;
:class:`Baseline` files grandfather accepted findings so the linter can
gate CI (``--strict``) without stopping the world.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.determinism import is_sim_path, lint_python_paths, lint_source
from repro.analysis.engine import LintEngine, LintReport, lint_cluster, lint_workflow
from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.graph import find_cycle, format_cycle
from repro.analysis.model import (
    ClusterSpecView,
    JobView,
    NamespaceView,
    NodeView,
    PodView,
    ServiceView,
    StepView,
    WorkflowView,
    cluster_view,
    pod_view_from_spec,
    spec_view_from_dict,
    workflow_view,
    workflow_views_from_dict,
)
from repro.analysis.registry import Rule, RuleRegistry, registry
from repro.analysis.workflow_rules import STRUCTURAL_DAG_CODES

__all__ = [
    "Baseline",
    "ClusterSpecView",
    "Finding",
    "JobView",
    "LintEngine",
    "LintReport",
    "Location",
    "NamespaceView",
    "NodeView",
    "PodView",
    "Rule",
    "RuleRegistry",
    "STRUCTURAL_DAG_CODES",
    "ServiceView",
    "Severity",
    "StepView",
    "WorkflowView",
    "cluster_view",
    "find_cycle",
    "format_cycle",
    "is_sim_path",
    "lint_cluster",
    "lint_python_paths",
    "lint_source",
    "lint_workflow",
    "pod_view_from_spec",
    "registry",
    "spec_view_from_dict",
    "workflow_view",
    "workflow_views_from_dict",
]
