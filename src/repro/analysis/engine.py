"""The lint engine: resolve rules, run packs, aggregate a report.

One :class:`LintEngine` call covers every entry point:

- ``repro lint`` (CLI) — lints paths (Python sources and JSON spec
  fixtures) or, with no paths, the built testbed plus the CONNECT
  workflow.
- :meth:`repro.cluster.Cluster.enable_admission_lint` — the spec pack
  as an admission hook.
- ``Workflow.__init__`` — structural DAG rules at construction time.

The engine owns rule selection (``--select``/``--disable``), baseline
suppression, and the exit-code policy: errors always fail, warnings
fail under strict, suppressed findings never fail.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import build_call_graph
from repro.analysis.cluster_rules import run_spec_rules
from repro.analysis.concurrency_rules import run_concurrency_rules
from repro.analysis.deployment_rules import run_deployment_rules
from repro.analysis.determinism import lint_python_paths
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.model import (
    ClusterSpecView,
    DeploymentView,
    WorkflowView,
    cluster_view,
    deployment_view_from_dict,
    spec_view_from_dict,
    workflow_view,
    workflow_views_from_dict,
)
from repro.analysis.registry import registry
from repro.analysis.taint import run_taint_analysis
from repro.analysis.workflow_rules import run_dag_rules

__all__ = ["LintEngine", "LintReport", "lint_workflow", "lint_cluster"]


@dataclasses.dataclass
class LintReport:
    """Aggregated outcome of one lint run."""

    findings: list[Finding] = dataclasses.field(default_factory=list)
    suppressed: list[Finding] = dataclasses.field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        """0 clean; 1 on errors (or warnings under strict)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0

    def merge(self, findings: _t.Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def summary(self) -> str:
        n_err, n_warn = len(self.errors), len(self.warnings)
        n_info = len(self.findings) - n_err - n_warn
        text = f"{n_err} error(s), {n_warn} warning(s), {n_info} info"
        if self.suppressed:
            text += f", {len(self.suppressed)} suppressed by baseline"
        return text

    def render_text(self) -> str:
        lines = [f.format() for f in sort_findings(self.findings)]
        lines.append(self.summary())
        return "\n".join(lines)

    def render_sarif(self) -> str:
        from repro.analysis.sarif import render_sarif

        return render_sarif(self)

    def render_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in sort_findings(self.findings)],
                "suppressed": [
                    f.to_dict() for f in sort_findings(self.suppressed)
                ],
                "summary": {
                    "errors": len(self.errors),
                    "warnings": len(self.warnings),
                    "total": len(self.findings),
                },
            },
            indent=2,
        )


class LintEngine:
    """Configured rule runner.

    Parameters
    ----------
    select:
        When given, only these rule codes run.
    disable:
        Codes to switch off (wins over ``select``).
    baseline:
        Previously-accepted findings to suppress.
    deep:
        Run the whole-program pass: interprocedural determinism taint
        (DET010+), concurrency hazards (CONC), and — on JSON fixtures
        declaring ``gateway``/``client`` sections and on explicit
        deployment views — the cross-layer deploy pack.  In deep mode
        the shallow DET002/DET003 findings on code *inside functions*
        are dropped: the call graph decides reachability, so a seeded
        test helper goes quiet and a genuinely sim-reachable draw
        re-emerges as a DET01x error with its call path quoted.
    entry_modules:
        Override entry-point detection for the call graph (exact
        dotted module names); mostly for fixtures and tests.
    """

    def __init__(
        self,
        select: _t.Collection[str] | None = None,
        disable: _t.Collection[str] | None = None,
        baseline: Baseline | None = None,
        deep: bool = False,
        entry_modules: _t.Collection[str] | None = None,
    ):
        # Validate codes eagerly so typos fail loudly.
        for code in list(select or []) + list(disable or []):
            registry.get(code)
        self.select = set(select) if select is not None else None
        self.disable = set(disable or ())
        self.baseline = baseline
        self.deep = deep
        self.entry_modules = entry_modules

    def _active(self, code: str) -> bool:
        if code in self.disable:
            return False
        return self.select is None or code in self.select

    def _rules(self, pack: str):
        return [r for r in registry.rules(pack=pack) if self._active(r.code)]

    # -- pack runners --------------------------------------------------------

    def run_spec(self, view: ClusterSpecView) -> "list[Finding]":
        return run_spec_rules(view, rules=self._rules("spec"))

    def run_dag(self, view: WorkflowView) -> "list[Finding]":
        return run_dag_rules(view, rules=self._rules("dag"))

    def run_det(self, paths: _t.Iterable["str | pathlib.Path"]) -> "list[Finding]":
        findings = lint_python_paths(paths)
        if self.deep:
            # The call graph owns reachability for code inside functions;
            # the shallow path-prefix verdicts on DET002/DET003 are
            # strictly worse there (module-level hits keep them: import-
            # time code runs unconditionally).
            findings = [
                f
                for f in findings
                if f.code not in ("DET002", "DET003") or not f.qualname
            ]
        # The det pack reports per-file, so enable/disable filters the
        # produced findings (DET000 = unparseable source, always kept).
        return [
            f
            for f in findings
            if f.code == "DET000" or self._active(f.code)
        ]

    def run_deploy(self, view: DeploymentView) -> "list[Finding]":
        return run_deployment_rules(view, rules=self._rules("deploy"))

    def run_deep(
        self, paths: _t.Sequence["str | pathlib.Path"]
    ) -> "list[Finding]":
        """The whole-program pass: one call graph, taint + conc packs."""
        graph = build_call_graph(paths, entry_modules=self.entry_modules)
        findings = run_taint_analysis(paths, graph=graph)
        findings += run_concurrency_rules(paths, graph=graph)
        return [f for f in findings if self._active(f.code)]

    # -- whole-target runners -------------------------------------------------

    def lint_paths(
        self, paths: _t.Sequence["str | pathlib.Path"]
    ) -> LintReport:
        """Dispatch paths by type: ``.py``/dirs -> det pack, ``.json``
        fixtures -> spec + dag packs."""
        report = LintReport()
        py_paths: list[pathlib.Path] = []
        for raw in paths:
            path = pathlib.Path(raw)
            if not path.exists():
                raise FileNotFoundError(f"no such lint target: {path}")
            if path.suffix == ".json":
                data = json.loads(path.read_text())
                report.merge(
                    self.run_spec(spec_view_from_dict(data, source=str(path)))
                )
                for view in workflow_views_from_dict(data, source=str(path)):
                    report.merge(self.run_dag(view))
                if self.deep and ("gateway" in data or "client" in data):
                    report.merge(
                        self.run_deploy(
                            deployment_view_from_dict(data, source=str(path))
                        )
                    )
            else:
                py_paths.append(path)
        if py_paths:
            report.merge(self.run_det(py_paths))
            if self.deep:
                report.merge(self.run_deep(py_paths))
        self._apply_baseline(report)
        return report

    def lint_views(
        self,
        cluster: ClusterSpecView | None = None,
        workflows: _t.Sequence[WorkflowView] = (),
        deployment: "DeploymentView | None" = None,
    ) -> LintReport:
        report = LintReport()
        if cluster is not None:
            report.merge(self.run_spec(cluster))
        for view in workflows:
            report.merge(self.run_dag(view))
        if deployment is not None:
            report.merge(self.run_deploy(deployment))
        self._apply_baseline(report)
        return report

    def _apply_baseline(self, report: LintReport) -> None:
        if self.baseline is None:
            return
        active, suppressed = self.baseline.split(report.findings)
        report.findings = active
        report.suppressed.extend(suppressed)


# -- convenience entry points used by the wired-in layers ---------------------


def lint_workflow(
    workflow: _t.Any,
    total_gpus: "int | None" = None,
    codes: _t.Collection[str] | None = None,
) -> "list[Finding]":
    """Run the dag pack over a live workflow-like object.

    ``Workflow.__init__`` calls this with the structural codes; the CLI
    calls it with the full pack and the testbed's GPU total.
    """
    view = workflow_view(workflow, total_gpus=total_gpus)
    return run_dag_rules(view, codes=codes)


def lint_cluster(
    cluster: _t.Any, engine: "LintEngine | None" = None
) -> "list[Finding]":
    """Run the spec pack over a live cluster."""
    engine = engine or LintEngine()
    return engine.run_spec(cluster_view(cluster))
