"""The ``Finding`` model: what a lint rule reports.

On real Nautilus, admission control rejects a malformed manifest with a
machine-readable reason; community linters annotate the offending line.
A :class:`Finding` is this reproduction's version of both: a rule code,
a severity, a :class:`Location` (file/line for source findings, object
kind/name for spec findings), a human message, and a suggestion saying
what to change.  Findings are plain data — they serialize to JSON for
``repro lint --format json`` and fingerprint stably for baseline
suppression (:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib

__all__ = ["Severity", "Location", "Finding", "normalize_snippet"]


class Severity(enum.Enum):
    """How bad a finding is — drives the lint exit code.

    ``ERROR`` findings always fail ``repro lint``; ``WARNING`` findings
    fail only under ``--strict``; ``INFO`` never fails the run.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclasses.dataclass(frozen=True)
class Location:
    """Where a finding points.

    Source findings (determinism pack) set ``path``/``line``; spec and
    DAG findings set ``kind``/``name`` (e.g. ``Pod``/``train-worker`` or
    ``Workflow``/``connect``), optionally with a namespace.
    """

    path: str = ""
    line: int = 0
    kind: str = ""
    name: str = ""
    namespace: str = ""

    def __str__(self) -> str:
        if self.path:
            where = self.path if not self.line else f"{self.path}:{self.line}"
        elif self.kind:
            obj = f"{self.namespace}/{self.name}" if self.namespace else self.name
            where = f"{self.kind}/{obj}"
        else:
            where = "<unknown>"
        return where


def normalize_snippet(snippet: str) -> str:
    """Collapse a source snippet to its whitespace-normalized form so
    reformatting (indentation, line wrapping) does not change it."""
    return " ".join(snippet.split())


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation."""

    code: str
    severity: Severity
    message: str
    location: Location = dataclasses.field(default_factory=Location)
    suggestion: str = ""
    #: dotted name of the enclosing function/method ("Cls.method"), when
    #: the finding points into source code; anchors the fingerprint
    qualname: str = ""
    #: the offending source line(s), used for fingerprints and SARIF
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity used by baseline suppression.

        Source findings hash the rule code, the file's *basename*, the
        enclosing qualname and the whitespace-normalized snippet — never
        the absolute line number or the directory — so moving a file
        between directories or shifting code up and down the file keeps
        a baselined suppression valid.  Spec/DAG findings hash the rule
        code plus the object coordinates (kind/namespace/name) and the
        message; the fixture path is deliberately excluded for the same
        reason.
        """
        h = hashlib.blake2b(digest_size=8)
        if self.location.path and (self.snippet or self.qualname):
            basename = self.location.path.replace("\\", "/").rsplit("/", 1)[-1]
            parts = (
                self.code,
                basename,
                self.qualname,
                normalize_snippet(self.snippet) or self.message,
            )
        elif self.location.kind:
            parts = (
                self.code,
                self.location.kind,
                self.location.namespace,
                self.location.name,
                self.message,
            )
        else:
            basename = self.location.path.replace("\\", "/").rsplit("/", 1)[-1]
            parts = (self.code, basename, self.message)
        for part in parts:
            h.update(part.encode())
            h.update(b"\x00")
        return h.hexdigest()

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": {
                "path": self.location.path,
                "line": self.location.line,
                "kind": self.location.kind,
                "name": self.location.name,
                "namespace": self.location.namespace,
            },
            "suggestion": self.suggestion,
            "qualname": self.qualname,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def format(self) -> str:
        """One-line (plus optional suggestion) text rendering."""
        text = f"{self.location}: {self.code} {self.severity.value}: {self.message}"
        if self.suggestion:
            text += f"\n    suggestion: {self.suggestion}"
        return text

    def __str__(self) -> str:
        return self.format()


def sort_findings(findings: "list[Finding]") -> "list[Finding]":
    """Deterministic presentation order: severity, then location, then code."""
    return sorted(
        findings,
        key=lambda f: (
            f.severity.rank,
            f.location.path,
            f.location.line,
            f.location.kind,
            f.location.namespace,
            f.location.name,
            f.code,
            f.message,
        ),
    )
