"""Module-level call graph over a Python source tree.

The deep lint pass (``repro lint --deep``) needs one whole-program
fact the shallow AST rules cannot compute: *which functions can run
inside a simulation*.  A wall-clock read in a pretty-printer is noise;
the same read three calls below ``WorkflowDriver.run`` corrupts
virtual time.  This module builds that fact:

1. **Index** every function, method and class across the tree,
   qualified by module (``repro.gateway.gateway.AdmissionGateway.submit``).
2. **Resolve** call edges through the import graph: bare calls, dotted
   ``module.fn()`` calls, ``self.method()`` (through base classes),
   ``ClassName.method()``, ``obj.method()`` via local construction
   (``g = Gateway(); g.submit()``) and via ``self.attr`` types recorded
   from ``__init__``, and ``super().method()``.  Bare *references* to
   functions (hook registration, ``env.process`` targets) become edges
   too — a registered callback runs even though nothing "calls" it.
3. **Seed** entry points: every function defined in a simulation entry
   module — the workflow driver, scheduler, gateway, load generator,
   SimPy kernel, network model and chaos injectors — excluding test
   modules.  ``sim_reachable`` is the transitive closure from those
   seeds, computed with the same deterministic traversal helpers the
   DAG rules use (:func:`repro.analysis.graph.reachable_from`).

Resolution is intentionally *conservative-by-name*: an edge is added
only when the callee resolves to a function we indexed.  Unresolvable
dynamic dispatch drops the edge (possible false negatives) rather than
guessing (false-positive storms).  Everything — node order, edge
order, path reconstruction — is sorted so repeated runs are
byte-identical.
"""

from __future__ import annotations

import ast
import collections
import dataclasses
import pathlib
import typing as _t

from repro.analysis.graph import reachable_from

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "CallGraph",
    "build_call_graph",
    "module_name_for",
    "is_test_module",
    "ENTRY_MODULE_PREFIXES",
    "ENTRY_MODULE_MARKERS",
]

#: dotted module prefixes that anchor the simulation (the repro tree)
ENTRY_MODULE_PREFIXES = (
    "repro.workflow.driver",
    "repro.cluster.scheduler",
    "repro.gateway",
    "repro.loadgen",
    "repro.sim",
    "repro.netsim",
    "repro.chaos",
    "repro.testbed",
)

#: name fragments that mark entry modules in arbitrary (fixture) trees
ENTRY_MODULE_MARKERS = (
    "driver", "scheduler", "gateway", "loadgen", "chaos", "sim", "testbed",
)


def module_name_for(path: "str | pathlib.Path") -> str:
    """Dotted module name, walking up through ``__init__.py`` packages.

    ``src/repro/sim/env.py`` -> ``repro.sim.env``; a loose file with no
    enclosing package resolves to its stem (fixture corpora are flat).
    """
    p = pathlib.Path(path).resolve()
    parts = [p.stem] if p.stem != "__init__" else []
    parent = p.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) or p.stem


def is_test_module(module: str, path: "str | pathlib.Path" = "") -> bool:
    """True for pytest-style modules: never simulation entry points."""
    parts = module.split(".")
    path_parts = pathlib.Path(path).parts if path else ()
    return (
        "tests" in parts
        or "tests" in path_parts
        or any(p.startswith("test_") for p in parts)
        or "conftest" in parts
    )


@dataclasses.dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str  # module-qualified: pkg.mod.Cls.method
    module: str
    name: str
    path: str
    line: int
    is_generator: bool = False
    class_name: str = ""  # qualified class, "" for free functions

    @property
    def local_qualname(self) -> str:
        """Scope path inside the module (``Cls.method``)."""
        prefix = self.module + "."
        if self.qualname.startswith(prefix):
            return self.qualname[len(prefix):]
        return self.qualname


@dataclasses.dataclass
class ClassInfo:
    """One indexed class: methods, bases and constructed attribute types."""

    qualname: str  # module-qualified: pkg.mod.Cls
    module: str
    name: str
    path: str
    line: int
    #: method name -> function qualname
    methods: dict = dataclasses.field(default_factory=dict)
    #: raw base-class names as written (resolved lazily through imports)
    bases: list = dataclasses.field(default_factory=list)
    #: self.<attr> -> raw class name assigned in a method body
    attr_types: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class _RawCall:
    caller: str  # function qualname ("" = module body)
    shape: tuple  # ("name", n) | ("attr", root, attrs) | ("super", m)
    is_reference: bool = False


@dataclasses.dataclass
class _ModuleIndex:
    name: str
    path: str
    #: local alias -> imported module dotted path
    module_aliases: dict = dataclasses.field(default_factory=dict)
    #: local name -> dotted origin from ``from m import n``
    name_origins: dict = dataclasses.field(default_factory=dict)
    #: local class name -> class qualname
    classes: dict = dataclasses.field(default_factory=dict)
    raw_calls: list = dataclasses.field(default_factory=list)
    #: (caller qualname, var name) -> raw class name (g = Gateway())
    var_types: dict = dataclasses.field(default_factory=dict)


class _Indexer(ast.NodeVisitor):
    """Pass over one module: index defs, record unresolved call shapes."""

    def __init__(self, index: _ModuleIndex, functions: dict, classes: dict):
        self.index = index
        self.functions = functions
        self.classes = classes
        self._scope: list[str] = []  # local scope names
        self._class_stack: list[ClassInfo] = []
        self._func_stack: list[str] = []  # enclosing function qualnames

    # -- naming helpers ------------------------------------------------------

    def _local(self, name: str) -> str:
        return ".".join(self._scope + [name])

    def _qual(self, name: str) -> str:
        return f"{self.index.name}.{self._local(name)}"

    @property
    def _caller(self) -> str:
        return self._func_stack[-1] if self._func_stack else ""

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.index.module_aliases[
                alias.asname or alias.name.split(".")[0]
            ] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:  # relative import: anchor at this module's package
            pkg_parts = self.index.name.split(".")[: -node.level]
            module = ".".join(pkg_parts + ([module] if module else []))
        for alias in node.names:
            self.index.name_origins[alias.asname or alias.name] = (
                f"{module}.{alias.name}" if module else alias.name
            )

    # -- definitions ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = ClassInfo(
            qualname=self._qual(node.name),
            module=self.index.name,
            name=node.name,
            path=self.index.path,
            line=node.lineno,
            bases=[b for b in map(_dotted_name, node.bases) if b],
        )
        self.classes[info.qualname] = info
        self.index.classes[self._local(node.name)] = info.qualname
        self._scope.append(node.name)
        self._class_stack.append(info)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()
        self._scope.pop()

    def _visit_function(self, node) -> None:
        qualname = self._qual(node.name)
        info = FunctionInfo(
            qualname=qualname,
            module=self.index.name,
            name=node.name,
            path=self.index.path,
            line=node.lineno,
            is_generator=_is_generator(node),
            class_name=(
                self._class_stack[-1].qualname if self._class_stack else ""
            ),
        )
        self.functions[qualname] = info
        if self._class_stack:
            self._class_stack[-1].methods[node.name] = qualname
        self._scope.append(node.name)
        self._func_stack.append(qualname)
        for child in node.body:
            self.visit(child)
        self._func_stack.pop()
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- assignments: attribute/variable type tracking -----------------------

    def _record_types(self, targets: "list[ast.expr]", value: ast.expr) -> None:
        if not isinstance(value, ast.Call):
            return
        ctor = _dotted_name(value.func)
        if not ctor:
            return
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self._class_stack
            ):
                self._class_stack[-1].attr_types.setdefault(target.attr, ctor)
            elif isinstance(target, ast.Name) and self._caller:
                self.index.var_types.setdefault(
                    (self._caller, target.id), ctor
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_types(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_types([node.target], node.value)
        self.generic_visit(node)

    # -- calls and references ------------------------------------------------

    def _shape(self, expr: ast.expr) -> "tuple | None":
        if isinstance(expr, ast.Name):
            return ("name", expr.id)
        if isinstance(expr, ast.Attribute):
            attrs: list[str] = []
            cur: ast.expr = expr
            while isinstance(cur, ast.Attribute):
                attrs.append(cur.attr)
                cur = cur.value
            attrs.reverse()
            if isinstance(cur, ast.Name):
                return ("attr", cur.id, tuple(attrs))
            if (
                isinstance(cur, ast.Call)
                and isinstance(cur.func, ast.Name)
                and cur.func.id == "super"
                and len(attrs) == 1
            ):
                return ("super", attrs[0])
        return None

    def visit_Call(self, node: ast.Call) -> None:
        shape = self._shape(node.func)
        if shape is not None:
            self.index.raw_calls.append(
                _RawCall(caller=self._caller, shape=shape)
            )
        # Function references passed as arguments register callbacks:
        # hooks.append(self._on_done), env.process(run), functools.partial...
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            ref = self._shape(arg)
            if ref is not None and not isinstance(arg, ast.Call):
                self.index.raw_calls.append(
                    _RawCall(caller=self._caller, shape=ref,
                             is_reference=True)
                )
        self.generic_visit(node)


def _dotted_name(expr: ast.expr) -> str:
    """Render a Name/Attribute chain as a dotted string ('' otherwise)."""
    parts: list[str] = []
    cur = expr
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return ""
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _is_generator(node) -> bool:
    """True when the function body itself yields (ignoring nested defs)."""
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)) and child is not node:
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            if _encloser(node, child) is node:
                return True
    return False


def _encloser(root, target) -> "ast.AST | None":
    """Innermost function/lambda of ``root`` containing ``target``."""
    result: list = [None]

    def walk(node, owner):
        if node is target:
            result[0] = owner
            return
        next_owner = owner
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            next_owner = node
        for child in ast.iter_child_nodes(node):
            walk(child, next_owner)

    walk(root, root)
    return result[0]


class CallGraph:
    """The resolved whole-program graph plus reachability answers."""

    def __init__(
        self,
        functions: "dict[str, FunctionInfo]",
        classes: "dict[str, ClassInfo]",
        edges: "dict[str, list[str]]",
        reference_targets: "set[str]",
        entries: "list[str]",
    ):
        self.functions = functions
        self.classes = classes
        self.edges = edges
        self.entries = entries
        #: functions only ever *referenced* (hook/callback registration)
        self.reference_targets = frozenset(reference_targets)
        closure: set[str] = set(entries)
        for entry in entries:
            closure |= reachable_from(edges, entry)
        self.sim_reachable = frozenset(closure)

    def is_sim_reachable(self, qualname: str) -> bool:
        return qualname in self.sim_reachable

    def callbacks(self) -> "list[str]":
        """Sim-reachable functions wired in by reference (hooks)."""
        return sorted(self.reference_targets & self.sim_reachable)

    def call_path(self, target: str) -> "list[str] | None":
        """Shortest entry -> ... -> target chain (deterministic BFS)."""
        if target not in self.sim_reachable:
            return None
        parents: dict[str, str] = {}
        queue = collections.deque(self.entries)
        seen = set(self.entries)
        while queue:
            node = queue.popleft()
            if node == target:
                path = [node]
                while path[-1] in parents:
                    path.append(parents[path[-1]])
                return list(reversed(path))
            for nxt in self.edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    parents[nxt] = node
                    queue.append(nxt)
        return None  # pragma: no cover - closure and BFS agree

    def format_path(self, target: "str | list[str]") -> str:
        """Render a call chain; accepts a target qualname or a ready path."""
        path = target if isinstance(target, list) else self.call_path(target)
        if path:
            return " -> ".join(path)
        return target if isinstance(target, str) else ""


def _default_entry_modules(indexes: "list[_ModuleIndex]") -> "set[str]":
    entries: set[str] = set()
    for idx in indexes:
        if is_test_module(idx.name, idx.path):
            continue
        if idx.name == "repro" or idx.name.startswith("repro."):
            if any(
                idx.name == p or idx.name.startswith(p + ".")
                or (p.endswith(".") and idx.name.startswith(p))
                for p in ENTRY_MODULE_PREFIXES
            ):
                entries.add(idx.name)
        else:
            # Fragment match: "scheduler_conc" and "my_driver" are entry
            # modules; each dotted part is scanned for a marker substring.
            parts = [p.lower() for p in idx.name.split(".")]
            if any(m in p for p in parts for m in ENTRY_MODULE_MARKERS):
                entries.add(idx.name)
    return entries


def build_call_graph(
    paths: _t.Iterable["str | pathlib.Path"],
    entry_modules: "_t.Collection[str] | None" = None,
) -> CallGraph:
    """Index ``*.py`` files under ``paths`` and resolve the call graph.

    ``entry_modules`` overrides entry-point detection (exact dotted
    module names); by default simulation entry modules are detected by
    name (:data:`ENTRY_MODULE_PREFIXES` inside the repro package,
    :data:`ENTRY_MODULE_MARKERS` elsewhere).
    """
    from repro.analysis.determinism import expand_python_paths

    functions: dict[str, FunctionInfo] = {}
    classes: dict[str, ClassInfo] = {}
    indexes: list[_ModuleIndex] = []
    for file in expand_python_paths(paths):
        try:
            tree = ast.parse(file.read_text(), filename=str(file))
        except SyntaxError:
            continue  # DET000 reports this; the graph just skips it
        index = _ModuleIndex(name=module_name_for(file), path=str(file))
        _Indexer(index, functions, classes).visit(tree)
        indexes.append(index)

    resolver = _Resolver(functions, classes, indexes)
    edges: dict[str, set[str]] = {q: set() for q in functions}
    reference_targets: set[str] = set()
    for idx in indexes:
        module_entry = f"{idx.name}.<module>"
        for raw in idx.raw_calls:
            target = resolver.resolve(idx, raw)
            if target is None:
                continue
            caller = raw.caller or module_entry
            edges.setdefault(caller, set()).add(target)
            if raw.is_reference:
                reference_targets.add(target)

    sorted_edges = {q: sorted(t) for q, t in edges.items()}
    if entry_modules is None:
        entry_mods = _default_entry_modules(indexes)
    else:
        entry_mods = set(entry_modules)
    entries = sorted(
        q for q, info in functions.items() if info.module in entry_mods
    )
    # Module bodies of entry modules execute on import inside the sim
    # process; their module-level calls are reachable too.
    entries += sorted(
        q for q in sorted_edges
        if q.endswith(".<module>") and q[: -len(".<module>")] in entry_mods
    )
    return CallGraph(
        functions=functions,
        classes=classes,
        edges=sorted_edges,
        reference_targets=reference_targets,
        entries=entries,
    )


class _Resolver:
    """Resolve recorded call shapes to indexed function qualnames."""

    def __init__(self, functions, classes, indexes):
        self.functions = functions
        self.classes = classes
        self.by_module = {idx.name: idx for idx in indexes}

    def _class_for_raw(self, idx: _ModuleIndex, raw_name: str) -> "str | None":
        """Resolve a raw class name written in ``idx`` to a class qualname."""
        if raw_name in idx.classes:
            return idx.classes[raw_name]
        head, _, rest = raw_name.partition(".")
        if head in idx.module_aliases:
            candidate = f"{idx.module_aliases[head]}.{rest}" if rest else ""
            if candidate in self.classes:
                return candidate
        origin = idx.name_origins.get(head)
        if origin:
            candidate = f"{origin}.{rest}" if rest else origin
            if candidate in self.classes:
                return candidate
        if raw_name in self.classes:
            return raw_name
        return None

    def _method(self, class_qual: str, name: str, depth: int = 0) -> "str | None":
        """Find ``name`` on the class or (transitively) its bases."""
        if depth > 8:
            return None
        info = self.classes.get(class_qual)
        if info is None:
            return None
        if name in info.methods:
            return info.methods[name]
        idx = self.by_module.get(info.module)
        for base in info.bases:
            base_qual = self._class_for_raw(idx, base) if idx else None
            if base_qual:
                found = self._method(base_qual, name, depth + 1)
                if found:
                    return found
        return None

    def _enclosing_class(self, caller: str) -> "str | None":
        info = self.functions.get(caller)
        return info.class_name or None if info else None

    def resolve(self, idx: _ModuleIndex, raw: _RawCall) -> "str | None":
        kind = raw.shape[0]
        if kind == "name":
            return self._resolve_name(idx, raw.caller, raw.shape[1])
        if kind == "attr":
            return self._resolve_attr(idx, raw.caller, raw.shape[1],
                                      list(raw.shape[2]))
        if kind == "super":
            cls = self._enclosing_class(raw.caller)
            if cls is None:
                return None
            info = self.classes.get(cls)
            if info is None:
                return None
            for base in info.bases:
                base_qual = self._class_for_raw(idx, base)
                if base_qual:
                    found = self._method(base_qual, raw.shape[1])
                    if found:
                        return found
            return None
        return None  # pragma: no cover

    def _resolve_name(
        self, idx: _ModuleIndex, caller: str, name: str
    ) -> "str | None":
        # Nested/local function in an enclosing scope, innermost first.
        if caller:
            local = caller[len(idx.name) + 1:] if caller.startswith(
                idx.name + "."
            ) else caller
            scope = local.split(".")
            for cut in range(len(scope), -1, -1):
                prefix = ".".join(scope[:cut] + [name])
                candidate = f"{idx.name}.{prefix}"
                if candidate in self.functions:
                    return candidate
        elif f"{idx.name}.{name}" in self.functions:
            return f"{idx.name}.{name}"
        # Local class constructor.
        cls = idx.classes.get(name)
        if cls:
            return self._method(cls, "__init__")
        # from-import of a function or class.
        origin = idx.name_origins.get(name)
        if origin:
            if origin in self.functions:
                return origin
            if origin in self.classes:
                return self._method(origin, "__init__")
        return None

    def _resolve_attr(
        self, idx: _ModuleIndex, caller: str, root: str, attrs: "list[str]"
    ) -> "str | None":
        if root == "self":
            cls = self._enclosing_class(caller)
            if cls is None:
                return None
            if len(attrs) == 1:
                return self._method(cls, attrs[0])
            if len(attrs) == 2:
                info = self.classes.get(cls)
                raw_type = info.attr_types.get(attrs[0]) if info else None
                if raw_type:
                    target_cls = self._class_for_raw(idx, raw_type)
                    if target_cls:
                        return self._method(target_cls, attrs[1])
            return None
        # Imported module: mod.fn() or mod.Class() or mod.Class.method().
        if root in idx.module_aliases:
            dotted = f"{idx.module_aliases[root]}.{'.'.join(attrs)}"
            if dotted in self.functions:
                return dotted
            if dotted in self.classes:
                return self._method(dotted, "__init__")
            if len(attrs) >= 2:
                cls_dotted = (
                    f"{idx.module_aliases[root]}.{'.'.join(attrs[:-1])}"
                )
                if cls_dotted in self.classes:
                    return self._method(cls_dotted, attrs[-1])
            return None
        # Local class: ClassName.method().
        cls = idx.classes.get(root)
        if cls and len(attrs) == 1:
            return self._method(cls, attrs[0])
        # from-imported class: Gateway.submit() / Gateway().
        origin = idx.name_origins.get(root)
        if origin and origin in self.classes and len(attrs) == 1:
            return self._method(origin, attrs[0])
        # Local variable with recorded constructed type: g = Gateway().
        if caller and len(attrs) == 1:
            raw_type = idx.var_types.get((caller, root))
            if raw_type:
                target_cls = self._class_for_raw(idx, raw_type)
                if target_cls:
                    return self._method(target_cls, attrs[0])
        return None
