"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is what CI code-
scanning UIs ingest; emitting it makes the deep lint findings show up
as annotations instead of buried job logs.  This module renders a
:class:`~repro.analysis.engine.LintReport` as a minimal-but-valid
single-run SARIF log:

- one ``run`` whose driver lists the metadata of every rule that
  produced a result (so rule descriptions travel with the findings
  without bloating clean logs),
- one ``result`` per finding — ``ruleId``, ``level`` (error/warning/
  note), message, physical location, and the v2 fingerprint under
  ``partialFingerprints`` so scanning UIs track findings across
  commits exactly like our baselines do,
- baseline-suppressed findings included with an ``external``
  suppression (the SARIF spelling of "grandfathered").

``validate_sarif`` is a hand-rolled structural check of the subset we
emit (the container has no jsonschema package); the CLI tests run it
over every generated log, and CI uploads the artifact.
"""

from __future__ import annotations

import json
import typing as _t

from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.registry import registry

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import LintReport

__all__ = ["to_sarif", "render_sarif", "validate_sarif", "SARIF_VERSION"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_descriptor(code: str) -> dict:
    r = registry.get(code)
    return {
        "id": r.code,
        "name": r.name,
        "shortDescription": {"text": r.description},
        "defaultConfiguration": {"level": _LEVELS[r.severity]},
        "properties": {"pack": r.pack},
    }


def _result(finding: Finding, suppressed: bool) -> dict:
    loc = finding.location
    physical: dict = {}
    if loc.path:
        physical["artifactLocation"] = {
            "uri": loc.path.replace("\\", "/"),
        }
        if loc.line:
            physical["region"] = {"startLine": loc.line}
    else:
        # Object findings (spec/dag/deploy): encode the coordinates as a
        # logical location; artifactLocation needs a real file.
        physical["artifactLocation"] = {"uri": str(loc) or "<none>"}
    message = finding.message
    if finding.suggestion:
        message += f" (suggestion: {finding.suggestion})"
    result = {
        "ruleId": finding.code,
        "level": _LEVELS[finding.severity],
        "message": {"text": message},
        "locations": [{"physicalLocation": physical}],
        "partialFingerprints": {"reproLint/v2": finding.fingerprint},
    }
    if finding.qualname:
        result["locations"][0]["logicalLocations"] = [
            {"fullyQualifiedName": finding.qualname}
        ]
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def to_sarif(
    report: "LintReport", tool_version: str = "2.0"
) -> dict:
    """Render a lint report as a SARIF 2.1.0 log dict."""
    findings = sort_findings(report.findings)
    suppressed = sort_findings(report.suppressed)
    rule_ids = sorted(
        {f.code for f in findings + suppressed} & set(registry.codes())
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/chase-ci/repro"
                        ),
                        "version": tool_version,
                        "rules": [_rule_descriptor(c) for c in rule_ids],
                    }
                },
                "results": (
                    [_result(f, suppressed=False) for f in findings]
                    + [_result(f, suppressed=True) for f in suppressed]
                ),
            }
        ],
    }


def render_sarif(report: "LintReport", tool_version: str = "2.0") -> str:
    return json.dumps(to_sarif(report, tool_version=tool_version), indent=2)


def validate_sarif(doc: _t.Any) -> "list[str]":
    """Structural validation of the SARIF subset we emit.

    Returns a list of problems (empty = valid).  Checks the properties
    the 2.1.0 schema marks required on the objects we produce: log
    version/runs, tool.driver.name, result ruleId/message/level, and
    location shapes.
    """
    problems: list[str] = []

    def need(cond: bool, what: str) -> bool:
        if not cond:
            problems.append(what)
        return cond

    if not need(isinstance(doc, dict), "log must be an object"):
        return problems
    need(doc.get("version") == SARIF_VERSION,
         f"version must be {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not need(isinstance(runs, list) and runs, "runs must be a non-empty "
                "array"):
        return problems
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not need(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver", {})
        need(isinstance(driver.get("name"), str) and driver.get("name"),
             f"{where}.tool.driver.name is required")
        for j, rd in enumerate(driver.get("rules", [])):
            need(isinstance(rd.get("id"), str) and rd.get("id"),
                 f"{where}.tool.driver.rules[{j}].id is required")
        rule_ids = {rd.get("id") for rd in driver.get("rules", [])}
        results = run.get("results", [])
        if not need(isinstance(results, list), f"{where}.results must be an "
                    "array"):
            continue
        for j, res in enumerate(results):
            rwhere = f"{where}.results[{j}]"
            if not need(isinstance(res, dict), f"{rwhere} must be an object"):
                continue
            need(
                isinstance(res.get("message", {}).get("text"), str),
                f"{rwhere}.message.text is required",
            )
            need(res.get("level") in ("none", "note", "warning", "error"),
                 f"{rwhere}.level must be a SARIF level")
            rid = res.get("ruleId")
            need(isinstance(rid, str) and bool(rid),
                 f"{rwhere}.ruleId is required")
            if rule_ids:
                need(rid in rule_ids,
                     f"{rwhere}.ruleId {rid!r} missing from driver rules")
            for k, loc in enumerate(res.get("locations", [])):
                phys = loc.get("physicalLocation", {})
                art = phys.get("artifactLocation", {})
                need(isinstance(art.get("uri"), str) and art.get("uri"),
                     f"{rwhere}.locations[{k}] artifactLocation.uri is "
                     "required")
                region = phys.get("region")
                if region is not None:
                    need(
                        isinstance(region.get("startLine"), int)
                        and region["startLine"] >= 1,
                        f"{rwhere}.locations[{k}].region.startLine must be "
                        "a positive integer",
                    )
            for k, sup in enumerate(res.get("suppressions", [])):
                need(sup.get("kind") in ("inSource", "external"),
                     f"{rwhere}.suppressions[{k}].kind must be inSource or "
                     "external")
    return problems
