"""Baseline suppression: adopt a linter without stopping the world.

A baseline file records the fingerprints of *accepted* findings — debt
you have looked at and justified — so ``repro lint`` only fails on new
findings.  This is how admission lint rolls out on a busy cluster: the
existing fleet is grandfathered, every new manifest is held to the
rules.  The file is JSON, diff-friendly, and each entry carries a
human justification that reviews can interrogate.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t

from repro.analysis.findings import Finding

__all__ = ["Baseline"]

#: Version 2 switched fingerprints to (rule code, file basename, enclosing
#: qualname, normalized snippet) so baselines survive file moves and line
#: drift; version-1 files must be regenerated with ``--update-baseline``.
_FORMAT_VERSION = 2


class Baseline:
    """A set of suppressed finding fingerprints with justifications."""

    def __init__(self) -> None:
        #: fingerprint -> entry dict (code, location, message, justification)
        self.entries: dict[str, dict] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def add(self, finding: Finding, justification: str = "") -> None:
        entry = {
            "code": finding.code,
            "location": str(finding.location),
            "message": finding.message,
            "justification": justification or "accepted when baseline was written",
        }
        if finding.qualname:
            entry["qualname"] = finding.qualname
        self.entries[finding.fingerprint] = entry

    def split(
        self, findings: _t.Iterable[Finding]
    ) -> "tuple[list[Finding], list[Finding]]":
        """Partition findings into (active, suppressed)."""
        active: list[Finding] = []
        suppressed: list[Finding] = []
        for finding in findings:
            (suppressed if finding in self else active).append(finding)
        return active, suppressed

    def to_dict(self) -> dict:
        return {
            "format_version": _FORMAT_VERSION,
            "suppressions": [
                {"fingerprint": fp, **entry}
                for fp, entry in sorted(self.entries.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Baseline":
        version = data.get("format_version")
        if version == 1:
            raise ValueError(
                "unsupported baseline format version: 1 (the fingerprint "
                "algorithm changed to survive file moves and line drift; "
                "regenerate the file with repro lint --update-baseline)"
            )
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported baseline format version: {version!r}")
        baseline = cls()
        for entry in data.get("suppressions", []):
            entry = dict(entry)
            fingerprint = entry.pop("fingerprint")
            baseline.entries[fingerprint] = entry
        return baseline

    def save(self, path: "str | pathlib.Path") -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "Baseline":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    def __repr__(self) -> str:
        return f"<Baseline {len(self.entries)} suppressions>"
