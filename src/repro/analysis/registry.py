"""The rule registry: every lint rule, discoverable and switchable.

Rules are small functions registered under a stable code (``SPEC001``,
``DAG003``, ``DET002``...) and grouped into packs:

- ``spec`` — cluster-spec admission lint (pods, jobs, namespaces,
  services vs. the testbed's nodes).
- ``dag`` — workflow DAG lint (cycles, orphans, retry/timeout hygiene,
  checkpoint coverage, GPU oversubscription).
- ``det`` — determinism sanitizer (AST pass over Python sources).

The registry is the single source of truth for ``repro lint
--list-rules`` and the rule-code tables in README/API docs; a rule that
isn't registered can't fire, and a registered rule is automatically
documented.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.analysis.findings import Finding, Severity

__all__ = ["Rule", "RuleRegistry", "registry", "rule"]


@dataclasses.dataclass(frozen=True)
class Rule:
    """Metadata + check function for one lint rule.

    ``check`` receives a pack-specific subject (a spec view, a workflow
    view, or a parsed source file) and yields :class:`Finding`s; the
    engine owns iteration and enable/disable filtering.
    """

    code: str
    name: str
    pack: str
    severity: Severity
    description: str
    check: _t.Callable[..., _t.Iterable[Finding]]


class RuleRegistry:
    """Keyed store of rules with per-run enable/disable resolution."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, rule: Rule) -> None:
        if rule.code in self._rules:
            raise ValueError(f"duplicate rule code {rule.code!r}")
        self._rules[rule.code] = rule

    def get(self, code: str) -> Rule:
        try:
            return self._rules[code]
        except KeyError:
            raise KeyError(f"unknown rule code {code!r}") from None

    def codes(self, pack: str | None = None) -> list[str]:
        return sorted(
            c for c, r in self._rules.items() if pack is None or r.pack == pack
        )

    def rules(
        self,
        pack: str | None = None,
        select: _t.Collection[str] | None = None,
        disable: _t.Collection[str] | None = None,
    ) -> list[Rule]:
        """Resolve the active rule set.

        ``select`` (when given) whitelists codes; ``disable`` always
        wins over ``select``.  Unknown codes in either raise ``KeyError``
        so typos fail loudly instead of silently linting nothing.
        """
        for code in list(select or []) + list(disable or []):
            self.get(code)
        out = []
        for code in self.codes(pack):
            if select is not None and code not in select:
                continue
            if disable is not None and code in disable:
                continue
            out.append(self._rules[code])
        return out

    def render_table(self) -> str:
        """The ``--list-rules`` view: code, pack, severity, description."""
        lines = [f"{'CODE':<9} {'PACK':<5} {'SEVERITY':<8} DESCRIPTION"]
        for code in self.codes():
            r = self._rules[code]
            lines.append(
                f"{r.code:<9} {r.pack:<5} {r.severity.value:<8} {r.description}"
            )
        return "\n".join(lines)


#: The process-wide registry every pack registers into on import.
registry = RuleRegistry()


def rule(
    code: str,
    name: str,
    pack: str,
    severity: Severity,
    description: str,
) -> _t.Callable:
    """Decorator: register ``fn`` as the check behind ``code``."""

    def decorate(fn: _t.Callable) -> _t.Callable:
        registry.register(
            Rule(
                code=code,
                name=name,
                pack=pack,
                severity=severity,
                description=description,
                check=fn,
            )
        )
        return fn

    return decorate
