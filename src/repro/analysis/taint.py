"""Rule pack ``det`` (deep): interprocedural nondeterminism taint.

The shallow determinism pack flags nondeterminism *where it happens*;
this pass answers the question that actually matters for reproductions:
**can it happen during a simulation run?**  A taint source — wall-clock
read, process-global RNG draw, environment read, order-unstable
iteration — in a function nobody calls from the simulation is inert.
The same source reachable from ``WorkflowDriver.run`` or the admission
gateway silently makes two same-seed runs diverge.

The pass combines the per-function sources collected by
:func:`repro.analysis.determinism.collect_taint_sources` with the
whole-program :class:`~repro.analysis.callgraph.CallGraph` and reports
one finding per tainted *source site* whose enclosing function is
sim-reachable, quoting the full call path from the entry point::

    driver.run -> stages.download -> clock.stamp: DET010 error:
    wall-clock read time.time() is reachable from simulation entry
    point 'driver.run' ...

Codes (all errors — reachability **is** the severity argument):

- ``DET010`` — wall-clock read on a sim-reachable path.
- ``DET011`` — stdlib ``random`` (process-global state) on a
  sim-reachable path.
- ``DET012`` — environment read (``os.environ``/``os.getenv``): runs
  depend on ambient shell state no seed controls.
- ``DET013`` — iteration over order-unstable collections (``set``,
  unsorted ``os.listdir``): hash/OS order leaks into event order.

In deep mode these *replace* DET002/DET003 for code inside functions:
the engine drops those shallow findings (their path-prefix heuristic is
strictly worse than reachability), so a seeded test helper stops
warning and a genuinely reachable draw upgrades to an error with its
path quoted.
"""

from __future__ import annotations

import pathlib
import typing as _t

from repro.analysis.callgraph import CallGraph, build_call_graph, module_name_for
from repro.analysis.determinism import (
    collect_taint_sources,
    expand_python_paths,
)
from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.registry import rule

__all__ = ["run_taint_analysis", "DEEP_DET_CODES"]

#: taint-source kind -> deep rule code
_KIND_CODES = {
    "wall-clock": "DET010",
    "global-rng": "DET011",
    "env-read": "DET012",
    "unordered-iter": "DET013",
}

DEEP_DET_CODES = tuple(sorted(_KIND_CODES.values()))

_KIND_MESSAGES = {
    "wall-clock": (
        "wall-clock read {detail}()",
        "read env.now (virtual time) or inject timestamps explicitly",
    ),
    "global-rng": (
        "process-global RNG draw {detail}()",
        "draw from a seeded generator: "
        "np.random.default_rng(derive_seed(root, ...))",
    ),
    "env-read": (
        "environment read {detail}",
        "resolve configuration before the run and pass it in as data",
    ),
    "unordered-iter": (
        "iteration over order-unstable {detail}",
        "wrap the iterable in sorted(...) to pin the event order",
    ),
}


def run_taint_analysis(
    paths: _t.Sequence["str | pathlib.Path"],
    graph: "CallGraph | None" = None,
    entry_modules: "_t.Collection[str] | None" = None,
) -> "list[Finding]":
    """Report every taint source enclosed in a sim-reachable function.

    Module-level sources (qualname ``""``) stay with the shallow rules:
    reachability is a property of *functions*; import-time code runs
    unconditionally and DET002/DET003 already judge it.
    """
    if graph is None:
        graph = build_call_graph(paths, entry_modules=entry_modules)
    findings: list[Finding] = []
    for file in expand_python_paths(paths):
        module = module_name_for(file)
        try:
            source = file.read_text()
        except OSError:  # pragma: no cover - race with deletion
            continue
        for kind, detail, line, qualname, snippet in collect_taint_sources(
            source, path=file
        ):
            if not qualname:
                continue
            func_qual = f"{module}.{qualname}"
            if not graph.is_sim_reachable(func_qual):
                continue
            path_text = graph.format_path(func_qual)
            entry = path_text.split(" -> ", 1)[0]
            raw_message, suggestion = _KIND_MESSAGES[kind]
            findings.append(
                Finding(
                    code=_KIND_CODES[kind],
                    severity=Severity.ERROR,
                    message=(
                        f"{raw_message.format(detail=detail)} is reachable "
                        f"from simulation entry point {entry!r}: "
                        f"{path_text}; same-seed runs will diverge"
                    ),
                    location=Location(path=str(file), line=line),
                    suggestion=suggestion,
                    qualname=qualname,
                    snippet=snippet,
                )
            )
    return findings


def _register_deep_det_rules() -> None:
    specs = [
        ("DET010", "sim-reachable-wall-clock",
         "wall-clock read reachable from a simulation entry point"),
        ("DET011", "sim-reachable-global-rng",
         "stdlib random (process-global RNG) reachable from a "
         "simulation entry point"),
        ("DET012", "sim-reachable-env-read",
         "os.environ/os.getenv read reachable from a simulation "
         "entry point"),
        ("DET013", "sim-reachable-unordered-iter",
         "iteration over set/os.listdir order reachable from a "
         "simulation entry point"),
    ]
    for code, name, description in specs:
        rule(code, name, pack="det", severity=Severity.ERROR,
             description=description)(run_taint_analysis)


_register_deep_det_rules()
