"""Rule pack ``conc``: concurrency hazards in simulation processes.

SimPy concurrency is cooperative — no data races — but event-ordering
hazards are real and this repo has hit every one of them: a generator
checks a queue, yields (suspension point), and acts on a now-stale
check; a phase-change callback and a watchdog process both pop the same
watch table and the loser sees a KeyError or a double-shed; a
module-level registry is mutated by whichever testbed runs first.

The detector joins a per-class AST pass (who owns which mutable
attribute, who mutates it, where the yields are) with the whole-program
:class:`~repro.analysis.callgraph.CallGraph` (which methods actually
run inside the simulation, which are hook-registered callbacks):

- ``CONC001`` — *stale guard across a yield*: a sim-reachable generator
  method reads an attribute in a guard, yields, then mutates that same
  attribute.  Between the read and the write any other process may have
  run; the guard no longer holds.
- ``CONC002`` — *multi-writer shared attribute*: one mutable attribute
  is order-sensitively mutated both by a hook-registered callback and
  by a (different) sim-reachable generator process.  Relative event
  order — not program logic — decides the final state.
- ``CONC003`` — *module-level state mutated from simulation code*: the
  whole-process analog; two testbeds in one process share the object.

All three are warnings: they flag *hazards*, which a human either fixes
or baselines with a justification (e.g. "pop(uid, None) on both sides
is idempotent by design").
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import typing as _t

from repro.analysis.callgraph import CallGraph, build_call_graph, module_name_for
from repro.analysis.determinism import expand_python_paths
from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.registry import rule

__all__ = ["run_concurrency_rules", "CONC_CODES"]

CONC_CODES = ("CONC001", "CONC002", "CONC003")

#: attribute-method calls that mutate a container, by order sensitivity
_ORDER_SENSITIVE_CALLS = {
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "sort", "reverse",
}
_APPEND_ONLY_CALLS = {
    "append", "appendleft", "add", "extend", "insert", "update",
    "setdefault", "push",
}

_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "defaultdict", "OrderedDict", "deque", "Counter",
}


@dataclasses.dataclass
class _Mutation:
    attr: str
    line: int
    order_sensitive: bool
    snippet: str


@dataclasses.dataclass
class _MethodConc:
    name: str
    line: int
    #: attr -> guard-read lines (reads inside if/while tests)
    guard_reads: dict = dataclasses.field(default_factory=dict)
    #: attr -> every line that loads the attribute (any context)
    reads: dict = dataclasses.field(default_factory=dict)
    mutations: list = dataclasses.field(default_factory=list)
    yield_lines: list = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class _ClassConc:
    name: str  # local (in-module) dotted name
    line: int
    #: attr -> line of the mutable initializer in __init__
    mutable_attrs: dict = dataclasses.field(default_factory=dict)
    #: method name -> _MethodConc
    methods: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class _ModuleConc:
    module: str
    path: str
    #: module-level mutable name -> definition line
    module_mutables: dict = dataclasses.field(default_factory=dict)
    classes: list = dataclasses.field(default_factory=list)
    #: local function qualname -> [(global name, line, snippet)]
    global_mutations: dict = dataclasses.field(default_factory=dict)


class _ConcVisitor(ast.NodeVisitor):
    """Collect per-class attribute ownership/mutation and module state."""

    def __init__(self, info: _ModuleConc, lines: "list[str]"):
        self.info = info
        self.lines = lines
        self._class_stack: list[_ClassConc] = []
        self._scope: list[str] = []  # names of enclosing classes+functions
        self._method_stack: list[_MethodConc] = []
        self._func_depth_in_method: list[int] = []

    def _snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # -- definitions ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = _ClassConc(
            name=".".join(self._scope + [node.name]), line=node.lineno
        )
        self.info.classes.append(cls)
        self._class_stack.append(cls)
        self._scope.append(node.name)
        for child in node.body:
            self.visit(child)
        self._scope.pop()
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        is_method = bool(self._class_stack) and not self._method_stack
        if is_method:
            method = _MethodConc(name=node.name, line=node.lineno)
            self._class_stack[-1].methods[node.name] = method
            self._method_stack.append(method)
            self._func_depth_in_method.append(0)
        elif self._method_stack:
            self._func_depth_in_method[-1] += 1
        self._scope.append(node.name)
        for child in node.body:
            self.visit(child)
        self._scope.pop()
        if is_method:
            self._method_stack.pop()
            self._func_depth_in_method.pop()
        elif self._method_stack:
            self._func_depth_in_method[-1] -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @property
    def _method(self) -> "_MethodConc | None":
        return self._method_stack[-1] if self._method_stack else None

    @property
    def _func_qualname(self) -> str:
        return ".".join(self._scope)

    # -- yields (direct method body only: nested defs don't suspend it) ------

    def _visit_yield(self, node) -> None:
        if self._method is not None and self._func_depth_in_method[-1] == 0:
            self._method.yield_lines.append(node.lineno)
        self.generic_visit(node)

    visit_Yield = _visit_yield
    visit_YieldFrom = _visit_yield

    # -- attribute helpers ---------------------------------------------------

    @staticmethod
    def _self_attr(expr: ast.expr) -> "str | None":
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    def _is_mutable_ctor(self, value: ast.expr) -> bool:
        if isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
             ast.SetComp),
        ):
            return True
        if isinstance(value, ast.Call):
            leaf = (
                value.func.attr
                if isinstance(value.func, ast.Attribute)
                else value.func.id if isinstance(value.func, ast.Name) else ""
            )
            return leaf in _MUTABLE_CONSTRUCTORS
        return False

    def _record_mutation(
        self, attr: str, line: int, order_sensitive: bool
    ) -> None:
        if self._method is not None:
            self._method.mutations.append(
                _Mutation(attr=attr, line=line,
                          order_sensitive=order_sensitive,
                          snippet=self._snippet(line))
            )

    def _record_global_mutation(self, name: str, line: int) -> None:
        if not self._scope:
            return  # module body populating its own state is setup, not a race
        self.info.global_mutations.setdefault(self._func_qualname, []).append(
            (name, line, self._snippet(line))
        )

    # -- statements ----------------------------------------------------------

    def _handle_assign(
        self, targets: "list[ast.expr]", value: "ast.expr | None",
        node: ast.stmt,
    ) -> None:
        for target in targets:
            self._record_write_target(target, node)
        if value is None:
            return
        # __init__-style mutable attribute declaration
        if self._method is not None and self._method.name == "__init__":
            for target in targets:
                attr = self._self_attr(target)
                if attr and self._is_mutable_ctor(value):
                    self._class_stack[-1].mutable_attrs.setdefault(
                        attr, target.lineno
                    )
        # module-level mutable definitions
        if not self._scope:
            for target in targets:
                if isinstance(target, ast.Name) and self._is_mutable_ctor(
                    value
                ) and not (
                    target.id.startswith("__") and target.id.endswith("__")
                ):
                    self.info.module_mutables.setdefault(
                        target.id, target.lineno
                    )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._handle_assign(node.targets, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._handle_assign([node.target], node.value, node)
        self.generic_visit(node)

    def _record_write_target(self, target: ast.expr, node: ast.stmt) -> None:
        attr = self._self_attr(target)
        if attr and self._method is not None and self._method.name != "__init__":
            self._record_mutation(attr, node.lineno, order_sensitive=True)
        if isinstance(target, ast.Subscript):
            inner = self._self_attr(target.value)
            if inner:
                self._record_mutation(inner, node.lineno, order_sensitive=True)
            elif isinstance(target.value, ast.Name):
                self._record_global_mutation(target.value.id, node.lineno)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._self_attr(node.target)
        if attr:
            self._record_mutation(attr, node.lineno, order_sensitive=True)
        elif isinstance(node.target, ast.Name):
            self._record_global_mutation(node.target.id, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                inner = self._self_attr(target.value)
                if inner:
                    self._record_mutation(
                        inner, node.lineno, order_sensitive=True
                    )
                elif isinstance(target.value, ast.Name):
                    self._record_global_mutation(
                        target.value.id, node.lineno
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            method_name = node.func.attr
            owner = node.func.value
            sensitive = method_name in _ORDER_SENSITIVE_CALLS
            mutating = sensitive or method_name in _APPEND_ONLY_CALLS
            if mutating:
                attr = self._self_attr(owner)
                if attr:
                    self._record_mutation(
                        attr, node.lineno, order_sensitive=sensitive
                    )
                elif isinstance(owner, ast.Name):
                    self._record_global_mutation(owner.id, node.lineno)
        self.generic_visit(node)

    # -- guard reads ---------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._self_attr(node)
        if (
            attr
            and isinstance(node.ctx, ast.Load)
            and self._method is not None
        ):
            self._method.reads.setdefault(attr, []).append(node.lineno)
        self.generic_visit(node)

    def _record_guard(self, test: ast.expr) -> None:
        if self._method is None:
            return
        for sub in ast.walk(test):
            attr = self._self_attr(sub)
            if attr and isinstance(sub.ctx, ast.Load):
                self._method.guard_reads.setdefault(attr, []).append(
                    sub.lineno
                )

    def visit_If(self, node: ast.If) -> None:
        self._record_guard(node.test)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._record_guard(node.test)
        self.generic_visit(node)


def _analyze_modules(
    paths: _t.Sequence["str | pathlib.Path"],
) -> "list[_ModuleConc]":
    modules: list[_ModuleConc] = []
    for file in expand_python_paths(paths):
        source = file.read_text()
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError:
            continue  # DET000's problem
        info = _ModuleConc(module=module_name_for(file), path=str(file))
        _ConcVisitor(info, source.splitlines()).visit(tree)
        modules.append(info)
    return modules


def run_concurrency_rules(
    paths: _t.Sequence["str | pathlib.Path"],
    graph: "CallGraph | None" = None,
    entry_modules: "_t.Collection[str] | None" = None,
) -> "list[Finding]":
    """Run CONC001-003 over a source tree with call-graph context."""
    if graph is None:
        graph = build_call_graph(paths, entry_modules=entry_modules)
    findings: list[Finding] = []
    for mod in _analyze_modules(paths):
        findings.extend(_check_module(mod, graph))
    return findings


def _check_module(mod: _ModuleConc, graph: CallGraph) -> "list[Finding]":
    findings: list[Finding] = []
    callbacks = set(graph.callbacks())

    for cls in mod.classes:
        cls_qual = f"{mod.module}.{cls.name}"
        for method_name in sorted(cls.methods):
            method = cls.methods[method_name]
            qual = f"{cls_qual}.{method_name}"
            info = graph.functions.get(qual)
            if info is None or not graph.is_sim_reachable(qual):
                continue
            if info.is_generator:
                findings.extend(
                    _check_stale_guard(mod, cls, method, qual)
                )
        findings.extend(_check_multi_writer(mod, cls, cls_qual, graph,
                                            callbacks))

    findings.extend(_check_global_mutations(mod, graph))
    return findings


def _check_stale_guard(
    mod: _ModuleConc, cls: _ClassConc, method: _MethodConc, qual: str
) -> "list[Finding]":
    """CONC001: guard read -> yield -> mutation of the same attribute."""
    findings: list[Finding] = []
    yields = sorted(method.yield_lines)
    if not yields:
        return findings
    for attr in sorted(set(method.guard_reads) & set(cls.mutable_attrs)):
        muts = [m for m in method.mutations if m.attr == attr]
        if not muts:
            continue
        # A load of the attribute between the yield and the mutation
        # means the code refreshed its view after resuming — the guard
        # that matters is the re-read, not the pre-yield one.
        mut_lines = {m.line for m in muts}
        guard_lines = set(method.guard_reads[attr])
        # Any load after the yield refreshes the view — including a
        # re-checked guard; only the mutation's own load doesn't count.
        re_reads = sorted(
            line for line in method.reads.get(attr, [])
            if line not in mut_lines
        )
        hazard = None
        for read_line in sorted(guard_lines):
            for mut in sorted(muts, key=lambda m: m.line):
                if mut.line <= read_line:
                    continue
                crossing = [
                    y for y in yields if read_line <= y <= mut.line
                ]
                if not crossing:
                    continue
                last_yield = max(crossing)
                if any(last_yield < r < mut.line for r in re_reads):
                    continue  # view refreshed after the suspension
                hazard = (read_line, mut)
                break
            if hazard:
                break
        if hazard is None:
            continue
        read_line, mut = hazard
        local_qual = f"{cls.name}.{method.name}"
        findings.append(
            Finding(
                code="CONC001",
                severity=Severity.WARNING,
                message=(
                    f"generator {local_qual!r} guards on self.{attr} "
                    f"(line {read_line}), yields, then mutates it (line "
                    f"{mut.line}); other processes run between the check "
                    "and the write, so the guard can be stale"
                ),
                location=Location(path=mod.path, line=read_line),
                suggestion=(
                    "re-check the guard after every yield, or restructure "
                    "so check and mutation happen without suspension "
                    "between them"
                ),
                qualname=local_qual,
                snippet=mut.snippet,
            )
        )
    return findings


def _check_multi_writer(
    mod: _ModuleConc,
    cls: _ClassConc,
    cls_qual: str,
    graph: CallGraph,
    callbacks: "set[str]",
) -> "list[Finding]":
    """CONC002: one attr, order-sensitively mutated by callback + process."""
    findings: list[Finding] = []
    #: attr -> {method qualname: [mutations]} (order-sensitive, reachable)
    writers: dict[str, dict[str, list[_Mutation]]] = {}
    for method_name in sorted(cls.methods):
        method = cls.methods[method_name]
        qual = f"{cls_qual}.{method_name}"
        if not graph.is_sim_reachable(qual):
            continue
        for mut in method.mutations:
            if not mut.order_sensitive or mut.attr not in cls.mutable_attrs:
                continue
            writers.setdefault(mut.attr, {}).setdefault(qual, []).append(mut)

    for attr in sorted(writers):
        by_method = writers[attr]
        callback_writers = sorted(q for q in by_method if q in callbacks)
        process_writers = sorted(
            q for q in by_method
            if q not in callbacks
            and graph.functions[q].is_generator
        )
        if not callback_writers or not process_writers:
            continue
        cb = callback_writers[0]
        proc = process_writers[0]
        line = cls.mutable_attrs[attr]
        local_cb = graph.functions[cb].local_qualname
        local_proc = graph.functions[proc].local_qualname
        findings.append(
            Finding(
                code="CONC002",
                severity=Severity.WARNING,
                message=(
                    f"attribute self.{attr} of {cls.name!r} is mutated "
                    f"both by hook callback {local_cb!r} and by simulation "
                    f"process {local_proc!r}; event order decides the "
                    "final state"
                ),
                location=Location(path=mod.path, line=line),
                suggestion=(
                    "funnel all mutations through one owner (e.g. the "
                    "process), or make both sides idempotent "
                    "(pop(key, None)) and baseline this with that "
                    "justification"
                ),
                qualname=f"{cls.name}.__init__",
                snippet=f"self.{attr}",
            )
        )
    return findings


def _check_global_mutations(
    mod: _ModuleConc, graph: CallGraph
) -> "list[Finding]":
    """CONC003: module-level mutable state mutated from sim-reachable code."""
    findings: list[Finding] = []
    if not mod.module_mutables:
        return findings
    #: global name -> first (qualname, line, snippet) hit, sorted
    hits: dict[str, tuple] = {}
    for local_qual in sorted(mod.global_mutations):
        func_qual = f"{mod.module}.{local_qual}"
        if not graph.is_sim_reachable(func_qual):
            continue
        for name, line, snippet in sorted(mod.global_mutations[local_qual],
                                          key=lambda t: (t[0], t[1])):
            if name in mod.module_mutables and name not in hits:
                hits[name] = (local_qual, line, snippet)
    for name in sorted(hits):
        local_qual, line, snippet = hits[name]
        findings.append(
            Finding(
                code="CONC003",
                severity=Severity.WARNING,
                message=(
                    f"module-level mutable {name!r} (defined line "
                    f"{mod.module_mutables[name]}) is mutated from "
                    f"sim-reachable code {local_qual!r}; every testbed in "
                    "this process shares it, so run N perturbs run N+1"
                ),
                location=Location(path=mod.path, line=line),
                suggestion=(
                    "move the state onto the testbed/class instance, or "
                    "reset it at the start of every run"
                ),
                qualname=local_qual,
                snippet=snippet,
            )
        )
    return findings


def _register_conc_rules() -> None:
    specs = [
        ("CONC001", "stale-guard-across-yield",
         "generator checks shared state, yields, then acts on the stale "
         "check"),
        ("CONC002", "callback-process-shared-write",
         "callback and simulation process both mutate one shared "
         "attribute"),
        ("CONC003", "module-state-mutated-in-sim",
         "module-level mutable state mutated from sim-reachable code"),
    ]
    for code, name, description in specs:
        rule(code, name, pack="conc", severity=Severity.WARNING,
             description=description)(run_concurrency_rules)


_register_conc_rules()
