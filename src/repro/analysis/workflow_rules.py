"""Rule pack ``dag``: workflow DAG lint.

The CONNECT workflow is a chain, but the DAG is general (fan-out
extensions, §III-E) — and general DAGs fail in general ways: cycles,
steps nothing can reach, network steps with no failure budget, resume
points that don't exist, and sibling branches that together want more
GPUs than CHASE-CI has.  Structural rules (DAG001–DAG003) are *also*
enforced at ``Workflow.__init__`` time with identical messages; the
rest are pre-flight hygiene surfaced by ``repro lint``.
"""

from __future__ import annotations

import typing as _t

from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.graph import concurrent_pairs, find_cycle, format_cycle
from repro.analysis.model import WorkflowView
from repro.analysis.registry import rule

__all__ = ["run_dag_rules", "STRUCTURAL_DAG_CODES"]

#: Codes whose violation makes a workflow unconstructable (enforced by
#: ``Workflow.__init__``, not just reported by the linter).
STRUCTURAL_DAG_CODES = ("DAG001", "DAG002", "DAG003")


def _loc(view: WorkflowView, name: str = "", kind: str = "WorkflowStep") -> Location:
    return Location(
        path=view.source if view.source.endswith(".json") else "",
        kind=kind if name else "Workflow",
        name=name or view.name,
        namespace=view.name if name else "",
    )


@rule(
    "DAG001",
    "dependency-cycle",
    pack="dag",
    severity=Severity.ERROR,
    description="Step dependencies form a cycle (full path reported)",
)
def check_cycle(view: WorkflowView) -> _t.Iterator[Finding]:
    deps = {s.name: list(s.depends_on) for s in view.steps}
    # Self-dependencies are DAG002's finding; mask them here so one
    # mistake doesn't fire two rules.
    masked = {
        name: [d for d in ds if d != name] for name, ds in deps.items()
    }
    cycle = find_cycle(masked)
    if cycle is None:
        return
    yield Finding(
        code="DAG001",
        severity=Severity.ERROR,
        message=f"dependency cycle: {format_cycle(cycle)}",
        location=_loc(view),
        suggestion="break the cycle by removing one of the edges on the "
                   "quoted path",
    )


@rule(
    "DAG002",
    "self-dependency",
    pack="dag",
    severity=Severity.ERROR,
    description="Step depends on itself",
)
def check_self_dependency(view: WorkflowView) -> _t.Iterator[Finding]:
    for step in view.steps:
        if step.name in step.depends_on:
            yield Finding(
                code="DAG002",
                severity=Severity.ERROR,
                message=f"step {step.name!r} depends on itself",
                location=_loc(view, step.name),
                suggestion=f"remove {step.name!r} from its own depends_on",
            )


@rule(
    "DAG003",
    "unknown-dependency",
    pack="dag",
    severity=Severity.ERROR,
    description="Step depends on a name not present in the workflow",
)
def check_unknown_dependency(view: WorkflowView) -> _t.Iterator[Finding]:
    names = {s.name for s in view.steps}
    for step in view.steps:
        for dep in step.depends_on:
            if dep not in names:
                yield Finding(
                    code="DAG003",
                    severity=Severity.ERROR,
                    message=(
                        f"step {step.name!r} depends on unknown step {dep!r}"
                    ),
                    location=_loc(view, step.name),
                    suggestion="fix the typo or add the missing step",
                )


@rule(
    "DAG004",
    "orphan-step",
    pack="dag",
    severity=Severity.WARNING,
    description="Step is disconnected from an otherwise-connected DAG",
)
def check_orphans(view: WorkflowView) -> _t.Iterator[Finding]:
    if len(view.steps) < 2:
        return
    names = {s.name for s in view.steps}
    has_dependents = {
        dep for s in view.steps for dep in s.depends_on if dep in names
    }
    any_edges = any(
        dep in names for s in view.steps for dep in s.depends_on
    )
    if not any_edges:
        return  # an intentional all-parallel batch, not a wiring mistake
    for step in view.steps:
        connected = step.name in has_dependents or any(
            dep in names for dep in step.depends_on
        )
        if connected:
            continue
        yield Finding(
            code="DAG004",
            severity=Severity.WARNING,
            message=(
                f"step {step.name!r} is orphaned: nothing depends on it and "
                "it depends on nothing, while the rest of the workflow is "
                "wired together"
            ),
            location=_loc(view, step.name),
            suggestion="wire the step into the DAG or drop it from the "
                       "workflow",
        )


@rule(
    "DAG005",
    "network-step-without-budget",
    pack="dag",
    severity=Severity.WARNING,
    description="Network-touching step has neither timeout_s nor max_retries",
)
def check_network_budget(view: WorkflowView) -> _t.Iterator[Finding]:
    for step in view.steps:
        if not step.network_bound:
            continue
        if step.timeout_s is not None or step.max_retries > 0:
            continue
        yield Finding(
            code="DAG005",
            severity=Severity.WARNING,
            message=(
                f"network-touching step {step.name!r} (image "
                f"{step.image or 'unknown'!r}) has no timeout_s and no "
                "max_retries; a WAN partition stalls the workflow forever"
            ),
            location=_loc(view, step.name),
            suggestion="give transfer steps a timeout_s and/or max_retries "
                       "so partitions convert to retries",
        )


@rule(
    "DAG006",
    "checkpoint-coverage-gap",
    pack="dag",
    severity=Severity.WARNING,
    description="resume_from cannot skip past a non-checkpointable step",
)
def check_checkpoint_coverage(view: WorkflowView) -> _t.Iterator[Finding]:
    names = {s.name for s in view.steps}
    dependents: dict[str, list[str]] = {s.name: [] for s in view.steps}
    for step in view.steps:
        for dep in step.depends_on:
            if dep in names:
                dependents[dep].append(step.name)
    for step in view.steps:
        if step.checkpointable or not dependents[step.name]:
            continue
        downstream = ", ".join(sorted(dependents[step.name]))
        yield Finding(
            code="DAG006",
            severity=Severity.WARNING,
            message=(
                f"step {step.name!r} is not checkpointable but {downstream} "
                "depend(s) on it; a run killed downstream cannot "
                "resume_from= past it and must re-execute it"
            ),
            location=_loc(view, step.name),
            suggestion="make the step's artifacts serializable "
                       "(checkpointable=True) or accept re-execution on "
                       "resume",
        )


@rule(
    "DAG007",
    "gpu-oversubscription",
    pack="dag",
    severity=Severity.ERROR,
    description="Concurrently-runnable steps together exceed testbed GPUs",
)
def check_gpu_oversubscription(view: WorkflowView) -> _t.Iterator[Finding]:
    if view.total_gpus is None:
        return
    demand = {s.name: s.gpus for s in view.steps}
    if sum(demand.values()) == 0:
        return
    deps = view.deps()
    pairs = concurrent_pairs(deps)

    def concurrent(a: str, b: str) -> bool:
        return frozenset((a, b)) in pairs

    # Greedy max-weight clique over the concurrency graph: descending
    # GPU demand with lexicographic tie-breaking keeps it deterministic.
    # Exact max-clique is NP-hard; greedy is a lower bound, so anything
    # it flags really can run concurrently and really oversubscribes.
    order = sorted(demand, key=lambda n: (-demand[n], n))
    reported: set[frozenset] = set()
    for seed_step in order:
        if demand[seed_step] == 0:
            continue
        group = [seed_step]
        for candidate in order:
            if candidate == seed_step or demand[candidate] == 0:
                continue
            if all(concurrent(candidate, member) for member in group):
                group.append(candidate)
        total = sum(demand[name] for name in group)
        key = frozenset(group)
        if total > view.total_gpus and key not in reported and len(group) > 1:
            reported.add(key)
            listing = ", ".join(
                f"{name} ({demand[name]})" for name in sorted(group)
            )
            yield Finding(
                code="DAG007",
                severity=Severity.ERROR,
                message=(
                    f"steps that can run concurrently request {total} GPUs "
                    f"together but the testbed has {view.total_gpus}: "
                    f"{listing}"
                ),
                location=_loc(view),
                suggestion="serialize the branches with depends_on or lower "
                           "per-step n_gpus",
            )
        # Also catch the single-step case: one step alone over capacity.
        if demand[seed_step] > view.total_gpus:
            solo = frozenset((seed_step,))
            if solo not in reported:
                reported.add(solo)
                yield Finding(
                    code="DAG007",
                    severity=Severity.ERROR,
                    message=(
                        f"step {seed_step!r} requests {demand[seed_step]} "
                        f"GPUs but the testbed has {view.total_gpus}"
                    ),
                    location=_loc(view, seed_step),
                    suggestion="lower n_gpus to the testbed's capacity",
                )
    return


def run_dag_rules(
    view: WorkflowView,
    rules: _t.Iterable | None = None,
    codes: _t.Collection[str] | None = None,
) -> "list[Finding]":
    """Run (a subset of) the dag pack over one workflow view."""
    from repro.analysis.registry import registry

    findings: list[Finding] = []
    for r in rules if rules is not None else registry.rules(
        pack="dag", select=codes
    ):
        findings.extend(r.check(view))
    return findings
