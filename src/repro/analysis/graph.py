"""Dependency-graph helpers shared by workflow validation and lint.

Both :class:`repro.workflow.Workflow` and the DAG rule pack need the
same answers — "is there a cycle, and through which steps?" — and must
give them *deterministically*: the same graph always reports the same
cycle, in the same orientation, regardless of dict insertion order.
Centralizing the traversal here keeps the runtime error message and the
lint finding literally identical.
"""

from __future__ import annotations

import typing as _t

__all__ = ["find_cycle", "format_cycle", "reachable_from", "concurrent_pairs"]


def find_cycle(deps: _t.Mapping[str, _t.Sequence[str]]) -> "list[str] | None":
    """Return one dependency cycle as a node list, or ``None``.

    ``deps`` maps node -> prerequisites.  Nodes and edges are visited in
    sorted order and the returned cycle is rotated to start at its
    lexicographically smallest member, so the answer is a pure function
    of the graph's *shape* — declaration order never changes it.  Edges
    to unknown nodes are ignored (they are a different validation
    error).

    >>> find_cycle({"a": ["b"], "b": ["a"]})
    ['a', 'b']
    >>> find_cycle({"a": [], "b": ["a"]}) is None
    True
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[str, int] = {name: WHITE for name in deps}
    stack: list[str] = []

    def visit(node: str) -> "list[str] | None":
        color[node] = GREY
        stack.append(node)
        for dep in sorted(deps[node]):
            if dep not in color:
                continue  # unknown dependency: not a cycle problem
            if color[dep] == GREY:
                cycle = stack[stack.index(dep):]
                return _normalize(cycle)
            if color[dep] == WHITE:
                found = visit(dep)
                if found is not None:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for name in sorted(deps):
        if color[name] == WHITE:
            found = visit(name)
            if found is not None:
                return found
    return None


def _normalize(cycle: list[str]) -> list[str]:
    """Rotate a cycle to start at its smallest member."""
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


def format_cycle(cycle: _t.Sequence[str]) -> str:
    """Render a cycle as the quoted path ``a -> b -> a``."""
    return " -> ".join(list(cycle) + [cycle[0]])


def reachable_from(
    deps: _t.Mapping[str, _t.Sequence[str]], start: str
) -> set[str]:
    """All transitive prerequisites of ``start`` (excluding itself)."""
    seen: set[str] = set()
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for dep in deps.get(node, ()):
            if dep in deps and dep not in seen:
                seen.add(dep)
                frontier.append(dep)
    return seen


def concurrent_pairs(
    deps: _t.Mapping[str, _t.Sequence[str]]
) -> "set[frozenset[str]]":
    """Pairs of nodes with no dependency path either way.

    Two such nodes may run at the same time under a driver that launches
    every dependency-satisfied step concurrently — exactly what
    :class:`~repro.workflow.driver.WorkflowDriver` does — so aggregate
    resource checks must consider them together.
    """
    ancestors = {name: reachable_from(deps, name) for name in deps}
    names = sorted(deps)
    pairs: set[frozenset[str]] = set()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if b not in ancestors[a] and a not in ancestors[b]:
                pairs.add(frozenset((a, b)))
    return pairs
