"""Lint views: the neutral shapes rules actually inspect.

Rules never touch live :class:`~repro.cluster.cluster.Cluster` or
:class:`~repro.workflow.Workflow` objects directly — they see small
frozen view dataclasses.  That buys two things: the same rule runs over
a *live* cluster (admission hook), over in-memory workflow objects
(``Workflow.__init__``), and over declarative JSON fixtures (CI,
pre-flight checks of specs that were never instantiated); and the
analysis package never imports the workflow layer, so the workflow
layer is free to import the analysis engine without a cycle.

Adapters here are duck-typed: any object with the right attributes
(``depends_on``, ``timeout_s``, ``spec.total_request()``...) converts.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.quantity import parse_cpu, parse_memory

__all__ = [
    "NodeView",
    "PodView",
    "JobView",
    "NamespaceView",
    "ServiceView",
    "ClusterSpecView",
    "StepView",
    "WorkflowView",
    "TenantView",
    "GatewayView",
    "ClientRetryView",
    "DeploymentView",
    "cluster_view",
    "pod_view_from_spec",
    "workflow_view",
    "deployment_view_from_dict",
]


# --------------------------------------------------------------------- cluster


@dataclasses.dataclass(frozen=True)
class NodeView:
    """Allocatable capacity of one machine."""

    name: str
    cpu: float = 0.0
    memory: float = 0.0
    gpu: int = 0

    def fits(self, pod: "PodView") -> bool:
        """Could the pod's request ever fit on an *empty* copy of this
        node?  (Admission feasibility, not current free capacity.)"""
        return (
            pod.cpu <= self.cpu + 1e-9
            and pod.memory <= self.memory
            and pod.gpu <= self.gpu
        )


@dataclasses.dataclass(frozen=True)
class PodView:
    """One pod spec (standalone, or a controller's template)."""

    name: str
    namespace: str = "default"
    cpu: float = 0.0
    memory: float = 0.0
    gpu: int = 0
    labels: _t.Mapping[str, str] = dataclasses.field(default_factory=dict)
    #: any container declared an explicit cpu or memory request
    has_requests: bool = True
    #: pod is meant to run indefinitely (service/replica workloads)
    long_running: bool = False
    has_liveness: bool = False
    #: "Pod", "Job", "ReplicaSet", "DaemonSet" — what declared this spec
    kind: str = "Pod"
    #: named PriorityClass, when declared ("" otherwise)
    priority_class: str = ""
    #: spec carries an explicit priority (a class name or a nonzero
    #: numeric priority) — the fleet-wide signal SPEC008 keys on
    has_priority: bool = False

    def matches(self, selector: _t.Mapping[str, str]) -> bool:
        return all(self.labels.get(k) == v for k, v in selector.items())


@dataclasses.dataclass(frozen=True)
class JobView:
    """A batch Job: template pod × parallelism, with a failure budget."""

    name: str
    namespace: str = "default"
    backoff_limit: int = 6
    completions: int = 1
    parallelism: int = 1
    template: "PodView | None" = None


@dataclasses.dataclass(frozen=True)
class NamespaceView:
    """A virtual cluster and its (optional) quota ceiling."""

    name: str
    quota_cpu: float = float("inf")
    quota_memory: float = float("inf")
    quota_gpu: float = float("inf")
    quota_pods: float = float("inf")

    @property
    def has_quota(self) -> bool:
        return any(
            q != float("inf")
            for q in (self.quota_cpu, self.quota_memory, self.quota_gpu,
                      self.quota_pods)
        )


@dataclasses.dataclass(frozen=True)
class ServiceView:
    name: str
    namespace: str = "default"
    selector: _t.Mapping[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class ClusterSpecView:
    """Everything the spec pack needs to judge a deployment."""

    nodes: tuple[NodeView, ...] = ()
    namespaces: tuple[NamespaceView, ...] = ()
    pods: tuple[PodView, ...] = ()
    jobs: tuple[JobView, ...] = ()
    services: tuple[ServiceView, ...] = ()
    source: str = "cluster"

    def all_pods(self) -> "list[PodView]":
        """Standalone pods plus each job's template, once per parallel slot."""
        out = list(self.pods)
        for job in self.jobs:
            if job.template is not None:
                out.extend([job.template] * max(1, job.parallelism))
        return out


# -------------------------------------------------------------------- workflow


@dataclasses.dataclass(frozen=True)
class StepView:
    """One workflow step as the DAG pack sees it."""

    name: str
    depends_on: tuple[str, ...] = ()
    timeout_s: "float | None" = None
    max_retries: int = 0
    #: step talks to external services (THREDDS catalog, aria2 streams)
    network_bound: bool = False
    #: a checkpoint written after this step supports resume_from
    checkpointable: bool = True
    #: concurrent GPU demand while the step runs
    gpus: int = 0
    image: str = ""


@dataclasses.dataclass(frozen=True)
class WorkflowView:
    name: str
    steps: tuple[StepView, ...] = ()
    #: total GPUs in the target testbed, when known (None disables
    #: aggregate-capacity rules)
    total_gpus: "int | None" = None
    source: str = "workflow"

    def deps(self) -> dict[str, tuple[str, ...]]:
        return {s.name: s.depends_on for s in self.steps}

    def step(self, name: str) -> StepView:
        for s in self.steps:
            if s.name == name:
                return s
        raise KeyError(name)


# ------------------------------------------------------------------ deployment


@dataclasses.dataclass(frozen=True)
class TenantView:
    """One gateway tenant (or a group of identical tenants)."""

    name: str
    rate: float = float("inf")  # sustained submissions/sec (token refill)
    burst: float = float("inf")  # bucket capacity
    weight: float = 1.0  # fair-share weight
    priority_class: str = ""
    namespace: str = ""
    #: identical tenants collapsed into one view row
    count: int = 1


@dataclasses.dataclass(frozen=True)
class GatewayView:
    """Admission-gateway configuration as the deploy pack sees it."""

    max_queue_depth: int = 0
    pending_timeout_s: float = 0.0
    breaker_failure_threshold: int = 0
    breaker_cooldown_s: float = 0.0
    tenants: tuple[TenantView, ...] = ()

    @property
    def has_rate_limits(self) -> bool:
        return any(t.rate != float("inf") for t in self.tenants)

    @property
    def has_breaker(self) -> bool:
        return self.breaker_failure_threshold > 0


@dataclasses.dataclass(frozen=True)
class ClientRetryView:
    """The submitting client's retry policy (loadgen tenant runner)."""

    max_submit_retries: int = 0
    max_pod_retries: int = 0
    #: client sleeps at least the gateway's retry_after hint before
    #: resubmitting (the anti-retry-storm contract)
    honors_retry_after: bool = True
    #: minimum backoff between resubmissions, seconds
    backoff_base_s: float = 1.0


@dataclasses.dataclass(frozen=True)
class DeploymentView:
    """The cross-layer join the ``deploy`` pack inspects.

    Any part may be absent (``None``/empty): rules check what is
    present and stay quiet about the rest, so a gateway-only fixture
    still exercises retry-storm rules without declaring a cluster.
    """

    cluster: "ClusterSpecView | None" = None
    gateway: "GatewayView | None" = None
    workflows: tuple[WorkflowView, ...] = ()
    client: "ClientRetryView | None" = None
    #: per-transfer attempts of network-bound steps (repro.netsim)
    transfer_retry_attempts: int = 1
    source: str = "deployment"


def deployment_view_from_dict(
    data: dict, source: str = "fixture"
) -> DeploymentView:
    """Build a :class:`DeploymentView` from a JSON fixture dict.

    Reuses the cluster/workflow fixture schemas and adds ``gateway``
    (queue/breaker knobs plus ``tenants``) and ``client`` (retry
    policy) sections; see ``tests/analysis/fixtures/deploy_*.json``.
    """
    raw_gw = data.get("gateway")
    gateway = None
    if raw_gw is not None:
        breaker = raw_gw.get("breaker", {})
        tenants = tuple(
            TenantView(
                name=raw["name"],
                rate=float(raw.get("rate", float("inf"))),
                burst=float(raw.get("burst", float("inf"))),
                weight=float(raw.get("weight", 1.0)),
                priority_class=str(raw.get("priority_class", "")),
                namespace=str(raw.get("namespace", "")),
                count=int(raw.get("count", 1)),
            )
            for raw in raw_gw.get("tenants", [])
        )
        gateway = GatewayView(
            max_queue_depth=int(raw_gw.get("max_queue_depth", 0)),
            pending_timeout_s=float(raw_gw.get("pending_timeout_s", 0.0)),
            breaker_failure_threshold=int(
                breaker.get("failure_threshold", 0)
            ),
            breaker_cooldown_s=float(breaker.get("cooldown_s", 0.0)),
            tenants=tenants,
        )
    raw_client = data.get("client")
    client = None
    if raw_client is not None:
        client = ClientRetryView(
            max_submit_retries=int(raw_client.get("max_submit_retries", 0)),
            max_pod_retries=int(raw_client.get("max_pod_retries", 0)),
            honors_retry_after=bool(
                raw_client.get("honors_retry_after", True)
            ),
            backoff_base_s=float(raw_client.get("backoff_base_s", 1.0)),
        )
    cluster = None
    if any(k in data for k in ("nodes", "namespaces", "pods", "jobs")):
        cluster = spec_view_from_dict(data, source=source)
    return DeploymentView(
        cluster=cluster,
        gateway=gateway,
        workflows=tuple(workflow_views_from_dict(data, source=source)),
        client=client,
        transfer_retry_attempts=int(data.get("transfer_retry_attempts", 1)),
        source=source,
    )


# -------------------------------------------------------------------- adapters

#: substrings of a container image name that imply WAN transfers
_NETWORK_IMAGE_HINTS = ("thredds", "aria2", "download", "transfer", "rsync", "s3")


def pod_view_from_spec(
    name: str,
    spec: _t.Any,
    namespace: str,
    labels: _t.Mapping[str, str] | None = None,
    kind: str = "Pod",
    long_running: bool = False,
) -> PodView:
    """Adapt a live :class:`~repro.cluster.pod.PodSpec`."""
    total = spec.total_request()
    has_requests = any(
        c.resources.cpu > 0 or c.resources.memory > 0 for c in spec.containers
    )
    priority_class = str(getattr(spec, "priority_class", "") or "")
    return PodView(
        name=name,
        namespace=namespace,
        cpu=total.cpu,
        memory=float(total.memory),
        gpu=total.gpu,
        labels=dict(labels or {}),
        has_requests=has_requests,
        long_running=long_running,
        has_liveness=getattr(spec, "liveness", None) is not None,
        kind=kind,
        priority_class=priority_class,
        has_priority=bool(priority_class)
        or int(getattr(spec, "priority", 0) or 0) != 0,
    )


def cluster_view(cluster: _t.Any) -> ClusterSpecView:
    """Adapt a live :class:`~repro.cluster.cluster.Cluster`.

    Job templates are materialized at index 0 (templates are pure
    spec-builders in this codebase); ReplicaSet/DaemonSet pods count as
    long-running for the liveness-probe rule.
    """
    nodes = tuple(
        NodeView(
            name=node.spec.name,
            cpu=node.capacity.cpu,
            memory=float(node.capacity.memory),
            gpu=node.capacity.gpu,
        )
        for _name, node in sorted(cluster.nodes.items())
    )
    namespaces = tuple(
        NamespaceView(
            name=ns.name,
            quota_cpu=ns.quota.cpu,
            quota_memory=float(ns.quota.memory),
            quota_gpu=ns.quota.gpu,
            quota_pods=ns.quota.max_pods,
        )
        for _name, ns in sorted(cluster.namespaces.items())
    )
    service_owned = {
        uid
        for rs in cluster.replicasets.values()
        for uid in [rs.meta.uid]
    } | {uid for ds in cluster.daemonsets.values() for uid in [ds.meta.uid]}
    pods = tuple(
        pod_view_from_spec(
            pod.meta.name,
            pod.spec,
            pod.meta.namespace,
            pod.meta.labels,
            long_running=pod.owner_uid in service_owned,
        )
        for _key, pod in sorted(cluster.pods.items())
        if not pod.is_terminal
    )
    jobs = []
    for _key, job in sorted(cluster.jobs.items()):
        try:
            template = pod_view_from_spec(
                f"{job.meta.name}-template",
                job.spec.template(0),
                job.meta.namespace,
                kind="Job",
            )
        except Exception:  # template needs runtime context: skip its pods
            template = None
        jobs.append(
            JobView(
                name=job.meta.name,
                namespace=job.meta.namespace,
                backoff_limit=job.spec.backoff_limit,
                completions=job.spec.completions,
                parallelism=job.spec.parallelism,
                template=template,
            )
        )
    services = tuple(
        ServiceView(
            name=svc.meta.name,
            namespace=svc.meta.namespace,
            selector=dict(svc.selector),
        )
        for _key, svc in sorted(cluster.services.items())
    )
    return ClusterSpecView(
        nodes=nodes,
        namespaces=namespaces,
        pods=pods,
        jobs=tuple(jobs),
        services=services,
        source=f"cluster:{getattr(cluster, 'name', 'cluster')}",
    )


def workflow_view(
    workflow: _t.Any, total_gpus: "int | None" = None
) -> WorkflowView:
    """Adapt a live :class:`~repro.workflow.Workflow` (or anything with a
    ``name`` and a ``steps`` mapping of step-like objects)."""
    steps = []
    for step in workflow.steps.values():
        image = getattr(step, "image", "") or ""
        network = bool(getattr(step, "network_bound", False)) or any(
            hint in image.lower() for hint in _NETWORK_IMAGE_HINTS
        )
        if hasattr(step, "gpu_demand"):
            gpus = int(step.gpu_demand())
        else:
            params = getattr(step, "params", {}) or {}
            gpus = int(params.get("n_gpus", params.get("gpus", 0)))
        steps.append(
            StepView(
                name=step.name,
                depends_on=tuple(getattr(step, "depends_on", ())),
                timeout_s=getattr(step, "timeout_s", None),
                max_retries=int(getattr(step, "max_retries", 0)),
                network_bound=network,
                checkpointable=bool(getattr(step, "checkpointable", True)),
                gpus=gpus,
                image=image,
            )
        )
    return WorkflowView(
        name=workflow.name,
        steps=tuple(steps),
        total_gpus=total_gpus,
        source=f"workflow:{workflow.name}",
    )


# -------------------------------------------------------------------- fixtures


def _fixture_pod(raw: dict, default_ns: str = "default") -> PodView:
    cpu = parse_cpu(raw.get("cpu", 0))
    memory = float(parse_memory(raw.get("memory", 0)))
    explicit = "has_requests" in raw
    priority_class = str(raw.get("priority_class", "") or "")
    return PodView(
        name=raw["name"],
        namespace=raw.get("namespace", default_ns),
        cpu=cpu,
        memory=memory,
        gpu=int(raw.get("gpu", 0)),
        labels=dict(raw.get("labels", {})),
        has_requests=(
            bool(raw["has_requests"]) if explicit else (cpu > 0 or memory > 0)
        ),
        long_running=bool(raw.get("long_running", False)),
        has_liveness=bool(raw.get("liveness", False)),
        kind=raw.get("kind", "Pod"),
        priority_class=priority_class,
        has_priority=bool(priority_class) or int(raw.get("priority", 0)) != 0,
    )


def spec_view_from_dict(data: dict, source: str = "fixture") -> ClusterSpecView:
    """Build a :class:`ClusterSpecView` from a JSON fixture dict.

    See ``tests/analysis/fixtures/`` and the README "Static analysis"
    section for the schema.  Quantities accept Kubernetes strings
    (``"500m"``, ``"96Gi"``).
    """
    nodes = tuple(
        NodeView(
            name=raw["name"],
            cpu=parse_cpu(raw.get("cpu", 0)),
            memory=float(parse_memory(raw.get("memory", 0))),
            gpu=int(raw.get("gpus", raw.get("gpu", 0))),
        )
        for raw in data.get("nodes", [])
    )
    namespaces = tuple(
        NamespaceView(
            name=raw["name"],
            quota_cpu=(
                parse_cpu(raw["quota"]["cpu"])
                if "cpu" in raw.get("quota", {})
                else float("inf")
            ),
            quota_memory=(
                float(parse_memory(raw["quota"]["memory"]))
                if "memory" in raw.get("quota", {})
                else float("inf")
            ),
            quota_gpu=float(raw.get("quota", {}).get("gpu", float("inf"))),
            quota_pods=float(raw.get("quota", {}).get("max_pods", float("inf"))),
        )
        for raw in data.get("namespaces", [])
    )
    pods = tuple(_fixture_pod(raw) for raw in data.get("pods", []))
    jobs = tuple(
        JobView(
            name=raw["name"],
            namespace=raw.get("namespace", "default"),
            backoff_limit=int(raw.get("backoff_limit", 6)),
            completions=int(raw.get("completions", 1)),
            parallelism=int(raw.get("parallelism", 1)),
            template=(
                _fixture_pod(raw["pod"], raw.get("namespace", "default"))
                if "pod" in raw
                else None
            ),
        )
        for raw in data.get("jobs", [])
    )
    services = tuple(
        ServiceView(
            name=raw["name"],
            namespace=raw.get("namespace", "default"),
            selector=dict(raw.get("selector", {})),
        )
        for raw in data.get("services", [])
    )
    return ClusterSpecView(
        nodes=nodes,
        namespaces=namespaces,
        pods=pods,
        jobs=jobs,
        services=services,
        source=source,
    )


def workflow_views_from_dict(
    data: dict, source: str = "fixture"
) -> "list[WorkflowView]":
    """Build workflow views from a JSON fixture dict (``workflows`` key,
    or a single top-level ``workflow``)."""
    raw_workflows = list(data.get("workflows", []))
    if "workflow" in data:
        raw_workflows.append(data["workflow"])
    out = []
    for raw in raw_workflows:
        steps = tuple(
            StepView(
                name=s["name"],
                depends_on=tuple(s.get("depends_on", [])),
                timeout_s=s.get("timeout_s"),
                max_retries=int(s.get("max_retries", 0)),
                network_bound=bool(s.get("network", s.get("network_bound", False))),
                checkpointable=bool(s.get("checkpointable", True)),
                gpus=int(s.get("gpus", 0)),
                image=s.get("image", ""),
            )
            for s in raw.get("steps", [])
        )
        out.append(
            WorkflowView(
                name=raw.get("name", "workflow"),
                steps=steps,
                total_gpus=raw.get("total_gpus", data.get("total_gpus")),
                source=source,
            )
        )
    return out
