"""Rule pack ``deploy``: cross-layer deployment lint.

Every individual config in PR 6's overload drill is defensible alone —
the gateway's rate limits, the client's retry budgets, the namespace
quotas, the workflow fan-outs.  What fails in production is their
*product*: a client that retries without honoring backpressure hints
turns the circuit breaker into an amplifier; a quota sized below one
step's request admits tenants that can never run a workflow; enough
long-running high-priority pods make lower classes starve forever no
matter what fair-share promises.  These rules inspect the joined
:class:`~repro.analysis.model.DeploymentView` — cluster + gateway +
workflows + client retry policy — and flag exactly those interaction
bugs:

- ``DEPLOY001`` (error) — retry storm: bounded client retries that
  ignore ``retry_after`` hints (or back off zero seconds) against a
  rate-limited/breaker-protected gateway.
- ``DEPLOY002`` (error) — priority starvation: long-running
  higher-class pods pin >= the whole cluster's GPUs (or CPUs) while
  lower-class tenants submit workflows needing them; fair-share weights
  cannot help because preemption only ever flows downhill.
- ``DEPLOY003`` (error/warning) — quota infeasibility: a single
  workflow step outgrows its tenant namespace's quota (error: it can
  never bind), or a concurrent step wave does (warning: it serializes).
- ``DEPLOY004`` (warning) — burst infeasibility: one workflow's
  concurrent submission wave exceeds token burst + admission queue, so
  part of every wave is rejected by design.
- ``DEPLOY005`` (warning) — nested retry amplification: submit retries
  × pod retries × per-transfer attempts multiply past a storm bound
  (64 attempts for one logical pod).

The PR 6 loadtest defaults pass clean — the drill's client honors
``retry_after``, its amplification product is 45, and its inference
fan-out fits burst + queue; that cleanliness is asserted in CI.
"""

from __future__ import annotations

import math
import typing as _t

from repro.analysis.findings import Finding, Location, Severity
from repro.analysis.model import DeploymentView, WorkflowView
from repro.analysis.registry import rule

__all__ = ["run_deployment_rules", "DEPLOY_CODES", "priority_rank"]

DEPLOY_CODES = (
    "DEPLOY001", "DEPLOY002", "DEPLOY003", "DEPLOY004", "DEPLOY005",
)

#: worst-case admission attempts for one logical pod before we call the
#: retry tree a storm (DEPLOY005)
RETRY_AMPLIFICATION_BOUND = 64

_FALLBACK_PRIORITIES = {
    "best-effort": 0, "batch": 10, "normal": 100, "high": 1000,
    "system": 10000,
}


def priority_rank(name: str) -> int:
    """Numeric priority of a class name (scheduler's table when
    importable, its frozen mirror otherwise; unknown names rank 0)."""
    try:  # lazy: keeps analysis importable without the cluster layer
        from repro.cluster.pod import PRIORITY_CLASSES
    except Exception:  # pragma: no cover - cluster layer always present here
        PRIORITY_CLASSES = _FALLBACK_PRIORITIES
    return PRIORITY_CLASSES.get(name, 0)


def _loc(view: DeploymentView, kind: str, name: str) -> Location:
    return Location(
        path=view.source if view.source.endswith(".json") else "",
        kind=kind,
        name=name,
    )


def _max_concurrent(workflow: WorkflowView, weigh=len) -> "tuple[float, list[str]]":
    """Greedy max-weight antichain of steps that may run concurrently.

    Same construction DAG007 uses: steps with no dependency path either
    way can be launched together by the driver, so the heaviest such
    clique is the workflow's worst-case concurrent demand.  ``weigh``
    maps a step list to a weight; default is the count.
    """
    from repro.analysis.graph import concurrent_pairs, reachable_from

    deps = workflow.deps()
    pairs = concurrent_pairs(deps)
    names = sorted(deps)
    best_weight: float = 0.0
    best: list[str] = []
    for seed in names:
        clique = [seed]
        for cand in names:
            if cand == seed:
                continue
            if all(frozenset((cand, member)) in pairs for member in clique):
                clique.append(cand)
        weight = weigh([workflow.step(n) for n in sorted(clique)])
        if weight > best_weight:
            best_weight = weight
            best = sorted(clique)
    return best_weight, best


@rule(
    "DEPLOY001",
    "retry-storm-loop",
    pack="deploy",
    severity=Severity.ERROR,
    description="Client retries ignore gateway backpressure hints, closing "
                "a retry-storm loop with rate limits / circuit breaker",
)
def check_retry_storm(view: DeploymentView) -> _t.Iterator[Finding]:
    gw, client = view.gateway, view.client
    if gw is None or client is None or client.max_submit_retries <= 0:
        return
    if not (gw.has_rate_limits or gw.has_breaker):
        return
    if client.honors_retry_after and client.backoff_base_s > 0:
        return
    if not client.honors_retry_after:
        why = "ignores the gateway's retry_after hints"
    else:
        why = f"backs off {client.backoff_base_s:g}s between attempts"
    defense = []
    if gw.has_rate_limits:
        defense.append("token-bucket rate limits")
    if gw.has_breaker:
        defense.append(
            f"a circuit breaker (threshold {gw.breaker_failure_threshold})"
        )
    yield Finding(
        code="DEPLOY001",
        severity=Severity.ERROR,
        message=(
            f"client retries up to {client.max_submit_retries} times but "
            f"{why}; against {' and '.join(defense)} every rejection "
            "triggers an immediate resubmission — a retry storm that "
            "keeps the breaker open and starves well-behaved tenants"
        ),
        location=_loc(view, "Client", "retry-policy"),
        suggestion="honor decision.retry_after_s (sleep at least the hint, "
                   "plus jitter) before resubmitting",
    )


@rule(
    "DEPLOY002",
    "priority-starvation",
    pack="deploy",
    severity=Severity.ERROR,
    description="Long-running higher-priority pods pin the whole cluster "
                "while lower-class tenants need it",
)
def check_priority_starvation(view: DeploymentView) -> _t.Iterator[Finding]:
    cluster, gw = view.cluster, view.gateway
    if cluster is None or gw is None or not cluster.nodes:
        return
    total_gpu = sum(n.gpu for n in cluster.nodes)
    total_cpu = sum(n.cpu for n in cluster.nodes)
    by_class: dict[str, dict[str, float]] = {}
    for pod in cluster.all_pods():
        if not pod.long_running or not pod.priority_class:
            continue
        agg = by_class.setdefault(
            pod.priority_class, {"gpu": 0.0, "cpu": 0.0}
        )
        agg["gpu"] += pod.gpu
        agg["cpu"] += pod.cpu
    if not by_class:
        return
    needs_gpu = any(
        step.gpus > 0 for wf in view.workflows for step in wf.steps
    ) or not view.workflows
    for tenant in sorted(gw.tenants, key=lambda t: t.name):
        rank = priority_rank(tenant.priority_class)
        pinned_gpu = sum(
            agg["gpu"] for cls, agg in by_class.items()
            if priority_rank(cls) > rank
        )
        pinned_cpu = sum(
            agg["cpu"] for cls, agg in by_class.items()
            if priority_rank(cls) > rank
        )
        starved = []
        if needs_gpu and total_gpu > 0 and pinned_gpu >= total_gpu:
            starved.append(
                f"all {total_gpu:g} GPUs are pinned by long-running "
                "higher-priority pods"
            )
        if pinned_cpu >= total_cpu > 0:
            starved.append(
                f"all {total_cpu:g} CPUs are pinned by long-running "
                "higher-priority pods"
            )
        if not starved:
            continue
        yield Finding(
            code="DEPLOY002",
            severity=Severity.ERROR,
            message=(
                f"tenant {tenant.name!r} (class "
                f"{tenant.priority_class or 'unclassed'!r}) can never "
                f"bind a pod: {'; '.join(starved)}; preemption only "
                "evicts lower priorities, so fair-share weight "
                f"{tenant.weight:g} is irrelevant"
            ),
            location=_loc(view, "Tenant", tenant.name),
            suggestion="cap long-running high-class demand below cluster "
                       "capacity, or raise the tenant's priority class",
        )


@rule(
    "DEPLOY003",
    "quota-infeasible-workflow",
    pack="deploy",
    severity=Severity.ERROR,
    description="Workflow steps outgrow their tenant namespace's quota "
                "(single step: error; concurrent wave: warning)",
)
def check_quota_infeasible(view: DeploymentView) -> _t.Iterator[Finding]:
    cluster, gw = view.cluster, view.gateway
    if cluster is None or gw is None or not view.workflows:
        return
    quotas = {
        ns.name: ns for ns in cluster.namespaces
        if ns.quota_gpu != float("inf")
    }
    if not quotas:
        return
    for tenant in sorted(gw.tenants, key=lambda t: t.name):
        ns = quotas.get(tenant.namespace)
        if ns is None:
            continue
        for wf in view.workflows:
            worst = max(wf.steps, key=lambda s: (s.gpus, s.name), default=None)
            if worst is not None and worst.gpus > ns.quota_gpu:
                yield Finding(
                    code="DEPLOY003",
                    severity=Severity.ERROR,
                    message=(
                        f"step {worst.name!r} of workflow {wf.name!r} "
                        f"requests {worst.gpus} GPUs but tenant "
                        f"{tenant.name!r}'s namespace {ns.name!r} caps at "
                        f"{ns.quota_gpu:g}; the step can never be admitted"
                    ),
                    location=_loc(view, "Tenant", tenant.name),
                    suggestion="shard the step below the quota or raise "
                               "the namespace quota",
                )
                continue  # the wave finding would be redundant noise
            gpu_wave, clique = _max_concurrent(
                wf, weigh=lambda steps: sum(s.gpus for s in steps)
            )
            if gpu_wave > ns.quota_gpu:
                yield Finding(
                    code="DEPLOY003",
                    severity=Severity.WARNING,
                    message=(
                        f"workflow {wf.name!r}'s concurrent steps "
                        f"[{', '.join(clique)}] demand {gpu_wave:g} GPUs "
                        f"at once but namespace {ns.name!r} caps at "
                        f"{ns.quota_gpu:g}; the wave will serialize "
                        f"behind the quota for tenant {tenant.name!r}"
                    ),
                    location=_loc(view, "Tenant", tenant.name),
                    suggestion="add dependencies to stagger the wave, or "
                               "size the quota for the full wave",
                )


@rule(
    "DEPLOY004",
    "burst-exceeds-admission",
    pack="deploy",
    severity=Severity.WARNING,
    description="One workflow's concurrent submission wave exceeds token "
                "burst + admission queue",
)
def check_burst_infeasible(view: DeploymentView) -> _t.Iterator[Finding]:
    gw = view.gateway
    if gw is None or not view.workflows:
        return
    for tenant in sorted(gw.tenants, key=lambda t: t.name):
        if tenant.burst == float("inf"):
            continue
        headroom = math.floor(tenant.burst) + gw.max_queue_depth
        for wf in view.workflows:
            wave, clique = _max_concurrent(wf)
            if wave <= headroom:
                continue
            yield Finding(
                code="DEPLOY004",
                severity=Severity.WARNING,
                message=(
                    f"workflow {wf.name!r} submits {wave:g} pods at once "
                    f"([{', '.join(clique)}]) but tenant {tenant.name!r} "
                    f"can admit at most {headroom:g} (burst "
                    f"{tenant.burst:g} + queue {gw.max_queue_depth}); "
                    "part of every wave is rejected by construction"
                ),
                location=_loc(view, "Tenant", tenant.name),
                suggestion="lower the fan-out, raise the burst, or deepen "
                           "the admission queue",
            )


@rule(
    "DEPLOY005",
    "nested-retry-amplification",
    pack="deploy",
    severity=Severity.WARNING,
    description="Submit × pod × transfer retry budgets multiply past the "
                "storm bound",
)
def check_retry_amplification(view: DeploymentView) -> _t.Iterator[Finding]:
    client = view.client
    if client is None:
        return
    transfer = max(1, view.transfer_retry_attempts)
    network_bound = any(
        step.network_bound for wf in view.workflows for step in wf.steps
    )
    per_pod = (client.max_submit_retries + 1) * (client.max_pod_retries + 1)
    worst = per_pod * (transfer if network_bound else 1)
    if worst <= RETRY_AMPLIFICATION_BOUND:
        return
    factors = [
        f"{client.max_submit_retries + 1} submit attempts",
        f"{client.max_pod_retries + 1} pod attempts",
    ]
    if network_bound and transfer > 1:
        factors.append(f"{transfer} transfer attempts")
    yield Finding(
        code="DEPLOY005",
        severity=Severity.WARNING,
        message=(
            f"retry budgets multiply to {worst} worst-case admission "
            f"attempts per logical pod ({' x '.join(factors)}), above "
            f"the storm bound of {RETRY_AMPLIFICATION_BOUND}; under "
            "chaos the fleet amplifies its own failures"
        ),
        location=_loc(view, "Client", "retry-policy"),
        suggestion="budget retries at one layer (usually pod resubmission) "
                   "and cap the product below the bound",
    )


def run_deployment_rules(
    view: DeploymentView, rules: _t.Iterable | None = None
) -> "list[Finding]":
    """Run (a subset of) the deploy pack over one deployment view."""
    from repro.analysis.registry import registry

    findings: list[Finding] = []
    for r in rules if rules is not None else registry.rules(pack="deploy"):
        findings.extend(r.check(view))
    return findings
