"""Distributed GPU visualization: the CalVR scenario of paper §VII.

"In January 2019, Calit2 visualization researchers ... used the CHASE-CI
infrastructure to schedule and debug a scalable OpenGL-based
visualization application across 11 remote GPU nodes.  They were able to
lead a Virtual Reality content demonstration at University of
California, Merced from an immersive visualization space at University
of California, San Diego ... driving graphical displays in Merced with
input from a motion tracked wand in San Diego with unnoticeable latency.
Kubernetes object labeling conventions enabled straightforward targeting
of specific nodes ... It is notable that graphics and machine learning
processes can cohabitate."

This module reproduces that usage: label-targeted placement of render
pods on specific GPU nodes, wand-event round-trips measured over the PRP
topology, and cohabitation with compute pods on the same hardware.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster import ContainerSpec, PodSpec, ReplicaSetSpec, ResourceRequirements
from repro.cluster.pod import PodPhase
from repro.errors import ClusterError
from repro.sim import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.testbed import NautilusTestbed

__all__ = ["WandEvent", "VisualizationCluster"]

#: Latency below which tracked-input interaction feels instantaneous.
UNNOTICEABLE_LATENCY_S = 0.050

#: A motion-tracker update packet (pose + orientation + buttons).
WAND_EVENT_BYTES = 512.0


@dataclasses.dataclass
class WandEvent:
    """One measured input round trip."""

    sent_at: float
    rtt_s: float

    @property
    def unnoticeable(self) -> bool:
        return self.rtt_s <= UNNOTICEABLE_LATENCY_S


class VisualizationCluster:
    """A CalVR-style render fleet driven from a remote input site.

    Parameters
    ----------
    testbed:
        The Nautilus deployment.
    input_host:
        Hostname of the machine holding the motion-tracked wand (the
        SunCAVE at UCSD in the paper).
    namespace:
        Namespace for the render pods.
    """

    def __init__(
        self,
        testbed: "NautilusTestbed",
        input_host: str,
        namespace: str = "calvr",
    ):
        self.testbed = testbed
        self.input_host = input_host
        self.namespace = namespace
        if namespace not in testbed.cluster.namespaces:
            testbed.cluster.create_namespace(namespace)
        self._rs = None
        self.render_nodes: list[str] = []
        self.events: list[WandEvent] = []

    # -- deployment -----------------------------------------------------------------

    def deploy(self, node_names: _t.Sequence[str]) -> None:
        """Pin one render pod to each named GPU node via hostname labels
        ("Kubernetes object labeling conventions enabled straightforward
        targeting of specific nodes")."""
        cluster = self.testbed.cluster
        for name in node_names:
            node = cluster.get_node(name)
            if node.spec.gpus < 1:
                raise ClusterError(f"{name} has no GPUs to render with")
        self.render_nodes = list(node_names)

        def template(index: int) -> PodSpec:
            target = node_names[index % len(node_names)]

            def main(ctx):
                while True:  # render loop runs until torn down
                    yield ctx.env.timeout(30.0)

            return PodSpec(
                containers=[
                    ContainerSpec(
                        name="calvr-render",
                        image="calit2/calvr:5.0",
                        main=main,
                        resources=ResourceRequirements(
                            cpu=2, memory="8Gi", gpu=1
                        ),
                    )
                ],
                node_selector={"kubernetes.io/hostname": target},
            )

        self._rs = cluster.create_replicaset(
            f"calvr-{len(cluster.replicasets)}",
            ReplicaSetSpec(template=template, replicas=len(node_names)),
            namespace=self.namespace,
            labels={"app": "calvr"},
        )

    def ready_renderers(self) -> int:
        if self._rs is None:
            return 0
        return self._rs.ready_count

    def renderer_placement(self) -> dict[str, int]:
        """node name -> number of running render pods (should be 1 each)."""
        placement: dict[str, int] = {}
        for pod in self.testbed.cluster.list_pods(
            namespace=self.namespace, phase=PodPhase.RUNNING
        ):
            placement[pod.node_name] = placement.get(pod.node_name, 0) + 1
        return placement

    def teardown(self) -> None:
        if self._rs is not None:
            self._rs.delete()

    # -- interaction ---------------------------------------------------------------

    def send_wand_event(self, display_host: str) -> Event:
        """One tracked-wand input round trip to a display host.

        Returns an event that fires with the recorded :class:`WandEvent`.
        The RTT is two one-way PRP latencies plus the (tiny) serialization
        time of the tracker packet on the path.
        """
        topo = self.testbed.topology
        env = self.testbed.env
        sent_at = env.now
        one_way = topo.path_latency(self.input_host, display_host)
        done = env.event()

        def round_trip():
            yield self.testbed.flowsim.transfer(
                topo.path_resources(self.input_host, display_host),
                WAND_EVENT_BYTES,
                latency_s=one_way,
                name="wand:event",
            )
            yield self.testbed.flowsim.transfer(
                topo.path_resources(display_host, self.input_host),
                WAND_EVENT_BYTES,
                latency_s=one_way,
                name="wand:ack",
            )
            event = WandEvent(sent_at=sent_at, rtt_s=env.now - sent_at)
            self.events.append(event)
            done.succeed(event)

        env.process(round_trip(), name="wand-roundtrip")
        return done

    def interaction_report(self) -> dict[str, float]:
        """Latency statistics over all measured wand events."""
        if not self.events:
            return {"events": 0.0, "mean_rtt_ms": 0.0, "max_rtt_ms": 0.0,
                    "unnoticeable_fraction": 0.0}
        rtts = [e.rtt_s for e in self.events]
        return {
            "events": float(len(rtts)),
            "mean_rtt_ms": 1e3 * sum(rtts) / len(rtts),
            "max_rtt_ms": 1e3 * max(rtts),
            "unnoticeable_fraction": (
                sum(e.unnoticeable for e in self.events) / len(self.events)
            ),
        }
