"""CRUSH-style deterministic data placement.

Ceph's CRUSH algorithm maps placement groups to OSDs pseudo-randomly,
weighted by device size, while separating replicas across failure domains
— with no central lookup table.  We reproduce those properties with
weighted rendezvous (highest-random-weight) hashing:

- **Deterministic**: placement depends only on (pg, OSD id, weight).
- **Weighted**: an OSD with twice the weight receives ~twice the data.
- **Minimal reshuffling**: removing one OSD only moves the data that
  lived on it.
- **Failure-domain aware**: replicas land on distinct hosts when enough
  hosts exist.
"""

from __future__ import annotations

import hashlib
import math
import typing as _t

from repro.errors import InsufficientReplicasError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.storage.osd import OSD

__all__ = ["hrw_score", "place", "CrushMap"]


def hrw_score(pg: int, osd_id: int) -> float:
    """Highest-random-weight score for (placement group, OSD).

    Uniform in (0, 1], derived from a stable BLAKE2 hash.
    """
    h = hashlib.blake2b(f"{pg}:{osd_id}".encode(), digest_size=8)
    raw = int.from_bytes(h.digest(), "big")
    return (raw + 1) / float(2**64)


def place(
    pg: int,
    osds: _t.Sequence["OSD"],
    replicas: int,
    *,
    separate_hosts: bool = True,
) -> list["OSD"]:
    """Choose ``replicas`` OSDs for a placement group.

    Uses weighted rendezvous hashing (``-weight / ln(score)`` keys, the
    standard weighted-HRW construction) and, when ``separate_hosts``,
    takes at most one replica per host while distinct hosts remain.

    Raises
    ------
    InsufficientReplicasError
        If fewer than ``replicas`` up OSDs exist.
    """
    candidates = [osd for osd in osds if osd.up]
    if len(candidates) < replicas:
        raise InsufficientReplicasError(
            f"need {replicas} up OSDs, have {len(candidates)}"
        )
    # Weighted-HRW key is -weight/ln(score) (larger is better); sorting by
    # weight/ln(score) ascending puts the best candidates first because
    # ln(score) is negative on (0, 1].
    scored = sorted(
        candidates,
        key=lambda osd: (osd.weight / math.log(hrw_score(pg, osd.id)), osd.id),
    )
    chosen: list["OSD"] = []
    used_hosts: set[str] = set()
    if separate_hosts:
        for osd in scored:
            if osd.host not in used_hosts:
                chosen.append(osd)
                used_hosts.add(osd.host)
                if len(chosen) == replicas:
                    return chosen
    # Not enough distinct hosts (or separation disabled): fill remaining
    # slots with the best unchosen OSDs regardless of host.
    for osd in scored:
        if osd not in chosen:
            chosen.append(osd)
            if len(chosen) == replicas:
                return chosen
    raise InsufficientReplicasError(  # pragma: no cover - guarded above
        f"could not place {replicas} replicas"
    )


class CrushMap:
    """Placement policy for a cluster: pg count + replica placement."""

    def __init__(self, pg_num: int = 128, separate_hosts: bool = True):
        if pg_num < 1:
            raise ValueError("pg_num must be >= 1")
        self.pg_num = pg_num
        self.separate_hosts = separate_hosts

    def pg_of(self, pool: str, key: str) -> int:
        """Hash an object key into a placement group."""
        h = hashlib.blake2b(f"{pool}/{key}".encode(), digest_size=4)
        return int.from_bytes(h.digest(), "big") % self.pg_num

    def osds_for(
        self, pool: str, key: str, osds: _t.Sequence["OSD"], replicas: int
    ) -> list["OSD"]:
        """Replica set for an object (primary first)."""
        pg = self.pg_of(pool, key)
        return place(pg, osds, replicas, separate_hosts=self.separate_hosts)
