"""Ceph/Rook-like distributed storage substrate.

Paper §II-A: "Nautilus uses Rook, an embedded strain of the Ceph
cloud-native storage system.  Ceph provides block, object, and POSIX
compliant file storage as a service within the cluster.  Massively
scalable, Ceph replicates and dynamically distributes data between
storage nodes while monitoring their health."

This package reproduces those semantics from scratch:

- :mod:`repro.storage.crush` — deterministic CRUSH-style placement via
  rendezvous (HRW) hashing with host-level failure-domain separation.
- :class:`OSD` — an object storage daemon with capacity and disk
  bandwidth (a :class:`~repro.netsim.flows.CapacityResource`, so disk and
  network share one rate-limiting mechanism).
- :class:`CephCluster` — pools, placement groups, replicated writes,
  OSD failure + autonomous recovery (re-replication), health reporting.
- :class:`CephFS` — the POSIX-ish shared-filesystem facade every workflow
  step mounts ("CephFS accessible by all nodes", §III-B).
"""

from repro.storage.crush import CrushMap, place
from repro.storage.osd import OSD
from repro.storage.objects import CephCluster, ObjectRef, Pool
from repro.storage.cephfs import CephFS
from repro.storage.s3 import S3Gateway, MultipartUpload
from repro.storage.rbd import RBDPool, BlockImage

__all__ = [
    "CrushMap",
    "place",
    "OSD",
    "CephCluster",
    "ObjectRef",
    "Pool",
    "CephFS",
    "S3Gateway",
    "MultipartUpload",
    "RBDPool",
    "BlockImage",
]
