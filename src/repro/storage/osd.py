"""Object Storage Daemons: the disks of the Ceph-like cluster."""

from __future__ import annotations

from repro.errors import StorageError
from repro.netsim.flows import CapacityResource

__all__ = ["OSD"]


class OSD:
    """One storage daemon: a disk on a host.

    Parameters
    ----------
    id:
        Cluster-unique integer id.
    host:
        Hostname of the machine carrying the disk (the failure domain;
        also the network attachment point when transfers are simulated).
    capacity:
        Usable bytes.
    disk_Bps:
        Device bandwidth in bytes/s (SSD ~500 MB/s, NVMe ~3 GB/s).  The
        bandwidth is a :class:`CapacityResource`, shared max-min between
        concurrent reads/writes by the same flow engine as the network.
    """

    def __init__(self, id: int, host: str, capacity: float, disk_Bps: float = 500e6):
        if capacity <= 0:
            raise StorageError(f"osd.{id}: capacity must be positive")
        self.id = id
        self.host = host
        self.capacity = float(capacity)
        self.disk = CapacityResource(name=f"osd.{id}:disk", capacity=disk_Bps)
        self.up = True
        self.used = 0.0
        #: (pool, key) -> replica size in bytes
        self.replicas: dict[tuple[str, str], float] = {}

    @property
    def weight(self) -> float:
        """CRUSH weight (proportional to capacity, in TB units)."""
        return self.capacity / 1e12

    @property
    def free(self) -> float:
        return self.capacity - self.used

    def store(self, pool: str, key: str, size: float) -> None:
        """Account a replica onto this disk."""
        if not self.up:
            raise StorageError(f"osd.{self.id} is down")
        if size > self.free:
            raise StorageError(
                f"osd.{self.id} full: {size:.3g}B requested, {self.free:.3g}B free"
            )
        handle = (pool, key)
        if handle in self.replicas:
            self.used -= self.replicas[handle]
        self.replicas[handle] = size
        self.used += size

    def evict(self, pool: str, key: str) -> None:
        """Drop a replica (idempotent)."""
        size = self.replicas.pop((pool, key), None)
        if size is not None:
            self.used -= size

    def holds(self, pool: str, key: str) -> bool:
        return (pool, key) in self.replicas

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return (
            f"<OSD {self.id} on {self.host} [{state}] "
            f"{self.used / 1e9:.1f}/{self.capacity / 1e9:.0f} GB>"
        )
