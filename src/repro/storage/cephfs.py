"""CephFS: the POSIX-ish shared filesystem facade.

Every step of the paper's workflow reads and writes "the storage volume
(CephFS accessible by all nodes)" (§III-B).  This facade maps paths onto
a dedicated pool of the object cluster, adds directory listing, and
offers both instant and timed I/O so pods can mount it as a volume.
"""

from __future__ import annotations

import posixpath
import typing as _t

from repro.errors import ObjectNotFoundError
from repro.sim import Event
from repro.storage.objects import CephCluster, ObjectRef

__all__ = ["CephFS"]


class CephFS:
    """A path-addressed view over a :class:`CephCluster` pool."""

    def __init__(self, cluster: CephCluster, pool: str = "cephfs", replication: int = 3):
        self.cluster = cluster
        self.pool = pool
        if pool not in cluster.pools:
            cluster.create_pool(pool, replication=replication)

    @staticmethod
    def _norm(path: str) -> str:
        normed = posixpath.normpath("/" + path.lstrip("/"))
        return normed

    # -- instant API (metadata / small control files) ---------------------------

    def write(self, path: str, size: float, payload: object = None) -> ObjectRef:
        """Write a file instantly (control-plane convenience)."""
        return self.cluster.put_sync(self.pool, self._norm(path), size, payload)

    def read(self, path: str) -> ObjectRef:
        """Read a file's metadata/payload instantly."""
        return self.cluster.get_sync(self.pool, self._norm(path))

    def exists(self, path: str) -> bool:
        return self.cluster.exists(self.pool, self._norm(path))

    def remove(self, path: str) -> None:
        self.cluster.delete(self.pool, self._norm(path))

    def listdir(self, path: str = "/") -> list[str]:
        """Immediate children (files and sub-directories) of a directory."""
        prefix = self._norm(path)
        if not prefix.endswith("/"):
            prefix += "/"
        children: set[str] = set()
        for key in self.cluster.list_keys(self.pool, prefix=prefix):
            rest = key[len(prefix):]
            children.add(rest.split("/", 1)[0])
        return sorted(children)

    def glob_files(self, prefix: str = "/") -> list[str]:
        """All file paths under a prefix."""
        return self.cluster.list_keys(self.pool, prefix=self._norm(prefix))

    def du(self, path: str = "/") -> float:
        """Total bytes stored under a path."""
        prefix = self._norm(path)
        total = 0.0
        for key in self.cluster.list_keys(self.pool):
            if key == prefix or key.startswith(prefix.rstrip("/") + "/"):
                total += self.cluster.stat(self.pool, key).size
        return total

    # -- timed API (bulk data from inside pods) ----------------------------------

    def write_timed(
        self,
        path: str,
        size: float,
        payload: object = None,
        client_host: str | None = None,
    ) -> Event:
        """Write through the network/disk flow model; yields the ref."""
        return self.cluster.put(
            self.pool, self._norm(path), size, payload, client_host=client_host
        )

    def read_timed(self, path: str, client_host: str | None = None) -> Event:
        """Read through the network/disk flow model; yields the ref."""
        return self.cluster.get(self.pool, self._norm(path), client_host=client_host)

    def read_payload(self, path: str) -> object:
        """Payload of a file, raising if it was stored metadata-only."""
        ref = self.read(path)
        if ref.payload is None:
            raise ObjectNotFoundError(f"{path} has no in-memory payload")
        return ref.payload

    def __repr__(self) -> str:  # pragma: no cover
        n = len(self.cluster.list_keys(self.pool))
        return f"<CephFS pool={self.pool} files={n}>"
