"""The Ceph-like cluster: pools, replicated objects, failure recovery.

Provides two data paths:

- a **synchronous metadata path** (``put_sync``/``get_sync``/...) used by
  control-plane code and tests, where only placement and accounting
  matter;
- a **timed path** (``put``/``get`` returning events) used inside
  simulated pods, where bytes traverse the client's NIC, the WAN, and the
  target OSDs' disks through the max-min flow engine — this is what gives
  the paper's Figure-4 storage IOPS/throughput curves.

Replication follows Ceph semantics: a write commits once all replicas
are durable; reads are served by the primary.  When an OSD dies the
cluster "replicates and dynamically distributes data between storage
nodes while monitoring their health" (§II-A): degraded objects are
re-replicated onto surviving OSDs by background recovery workers.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import (
    ConflictError,
    InsufficientReplicasError,
    ObjectNotFoundError,
    StorageError,
)
from repro.netsim.flows import CapacityResource, FlowSimulator
from repro.netsim.topology import Topology
from repro.sim import Environment, Event, Store
from repro.storage.crush import CrushMap
from repro.storage.osd import OSD

__all__ = ["ObjectRef", "Pool", "CephCluster"]


@dataclasses.dataclass
class ObjectRef:
    """Metadata (and optionally payload) of one stored object."""

    pool: str
    key: str
    size: float
    payload: object = None
    created: float = 0.0
    version: int = 1


@dataclasses.dataclass
class Pool:
    """A named replication domain (e.g. ``cephfs``, ``merra``)."""

    name: str
    replication: int = 3

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise StorageError("replication must be >= 1")


class CephCluster:
    """A replicated object store over a set of OSDs.

    Parameters
    ----------
    env:
        Simulation environment.
    flowsim / topology:
        When both are given, timed ``put``/``get`` move bytes through the
        network and disks; otherwise only disk bandwidth limits apply.
    crush:
        Placement policy (defaults to 128 PGs with host separation).
    recovery_workers:
        Parallel background re-replication streams.
    """

    def __init__(
        self,
        env: Environment,
        flowsim: FlowSimulator | None = None,
        topology: Topology | None = None,
        crush: CrushMap | None = None,
        recovery_workers: int = 4,
    ):
        self.env = env
        self.flowsim = flowsim
        self.topology = topology
        self.crush = crush or CrushMap()
        self.osds: dict[int, OSD] = {}
        self.pools: dict[str, Pool] = {}
        self._objects: dict[tuple[str, str], ObjectRef] = {}
        self._next_osd_id = 0
        self.lost_objects: list[tuple[str, str]] = []
        self.recovered_objects = 0
        self._recovery_queue: Store = Store(env)
        for i in range(recovery_workers):
            env.process(self._recovery_worker(), name=f"ceph-recovery-{i}")

    # ------------------------------------------------------------------- admin

    def add_osd(self, host: str, capacity: float, disk_Bps: float = 500e6) -> OSD:
        """Bring a new disk into the cluster."""
        osd = OSD(self._next_osd_id, host, capacity, disk_Bps)
        self._next_osd_id += 1
        self.osds[osd.id] = osd
        return osd

    def create_pool(self, name: str, replication: int = 3) -> Pool:
        if name in self.pools:
            raise ConflictError(f"pool {name!r} already exists")
        pool = Pool(name, replication)
        self.pools[name] = pool
        return pool

    def _pool(self, name: str) -> Pool:
        try:
            return self.pools[name]
        except KeyError:
            raise ObjectNotFoundError(f"no pool {name!r}") from None

    def up_osds(self) -> list[OSD]:
        return [self.osds[i] for i in sorted(self.osds) if self.osds[i].up]

    # ----------------------------------------------------------------- placement

    def placement(self, pool: str, key: str) -> list[OSD]:
        """The replica set CRUSH assigns to an object right now."""
        p = self._pool(pool)
        return self.crush.osds_for(pool, key, list(self.osds.values()), p.replication)

    def holders(self, pool: str, key: str) -> list[OSD]:
        """Up OSDs actually holding a replica (primary first by id)."""
        return [
            osd
            for osd in (self.osds[i] for i in sorted(self.osds))
            if osd.up and osd.holds(pool, key)
        ]

    # -------------------------------------------------------- synchronous path

    def put_sync(
        self, pool: str, key: str, size: float, payload: object = None
    ) -> ObjectRef:
        """Instantly store an object (metadata/accounting only)."""
        targets = self.placement(pool, key)
        return self._commit(pool, key, size, payload, targets)

    def get_sync(self, pool: str, key: str) -> ObjectRef:
        """Instantly fetch object metadata/payload."""
        ref = self._objects.get((pool, key))
        if ref is None:
            raise ObjectNotFoundError(f"{pool}/{key}")
        if not self.holders(pool, key):
            raise StorageError(f"{pool}/{key} is unavailable (no up replicas)")
        return ref

    def delete(self, pool: str, key: str) -> None:
        """Remove an object and free its replicas."""
        ref = self._objects.pop((pool, key), None)
        if ref is None:
            raise ObjectNotFoundError(f"{pool}/{key}")
        for osd in self.osds.values():
            osd.evict(pool, key)

    def exists(self, pool: str, key: str) -> bool:
        return (pool, key) in self._objects

    def stat(self, pool: str, key: str) -> ObjectRef:
        ref = self._objects.get((pool, key))
        if ref is None:
            raise ObjectNotFoundError(f"{pool}/{key}")
        return ref

    def list_keys(self, pool: str, prefix: str = "") -> list[str]:
        """Keys in a pool matching a prefix, sorted."""
        return sorted(
            key
            for (p, key) in self._objects
            if p == pool and key.startswith(prefix)
        )

    def _commit(
        self,
        pool: str,
        key: str,
        size: float,
        payload: object,
        targets: _t.Sequence[OSD],
    ) -> ObjectRef:
        previous = self._objects.get((pool, key))
        if previous is not None:
            for osd in self.osds.values():
                osd.evict(pool, key)
        for osd in targets:
            osd.store(pool, key, size)
        ref = ObjectRef(
            pool=pool,
            key=key,
            size=size,
            payload=payload,
            created=self.env.now,
            version=(previous.version + 1 if previous else 1),
        )
        self._objects[(pool, key)] = ref
        return ref

    # -------------------------------------------------------------- timed path

    def put(
        self,
        pool: str,
        key: str,
        size: float,
        payload: object = None,
        client_host: str | None = None,
    ) -> Event:
        """Store an object, taking simulated time.

        The write commits (event fires with the :class:`ObjectRef`) once
        every replica has been written through its network path and disk.
        """
        targets = self.placement(pool, key)
        done = self.env.event()

        def _writer():
            if self.flowsim is not None:
                flows = [
                    self.flowsim.transfer(
                        self._path_to(client_host, osd),
                        size,
                        name=f"ceph-put:{pool}/{key}->osd.{osd.id}",
                    )
                    for osd in targets
                ]
                yield self.env.all_of(flows)
            ref = self._commit(pool, key, size, payload, targets)
            done.succeed(ref)
            return ref

        self.env.process(_writer(), name=f"ceph-put:{pool}/{key}")
        return done

    def get(
        self, pool: str, key: str, client_host: str | None = None
    ) -> Event:
        """Read an object, taking simulated time (served by the primary)."""
        ref = self.stat(pool, key)
        holders = self.holders(pool, key)
        if not holders:
            raise StorageError(f"{pool}/{key} is unavailable (no up replicas)")
        primary = holders[0]
        done = self.env.event()

        def _reader():
            if self.flowsim is not None:
                yield self.flowsim.transfer(
                    self._path_to(client_host, primary),
                    ref.size,
                    name=f"ceph-get:{pool}/{key}<-osd.{primary.id}",
                )
            else:  # pragma: no cover - flowsim always set in practice
                yield self.env.timeout(0)
            done.succeed(ref)

        self.env.process(_reader(), name=f"ceph-get:{pool}/{key}")
        return done

    def _path_to(self, client_host: str | None, osd: OSD) -> list[CapacityResource]:
        """Resources a data flow must cross: WAN path (if known) + disk."""
        resources: list[CapacityResource] = []
        if (
            self.topology is not None
            and client_host is not None
            and client_host != osd.host
        ):
            resources.extend(self.topology.path_resources(client_host, osd.host))
        resources.append(osd.disk)
        return resources

    # ------------------------------------------------------------ failure model

    def fail_osd(self, osd_id: int) -> None:
        """Kill a disk; its objects become degraded and recovery starts."""
        osd = self.osds[osd_id]
        if not osd.up:
            return
        osd.up = False
        for (pool, key) in list(osd.replicas):
            self._recovery_queue.put((pool, key))

    def recover_osd(self, osd_id: int) -> None:
        """Bring a disk back empty (its old replicas were re-created)."""
        osd = self.osds[osd_id]
        osd.up = True
        osd.replicas.clear()
        osd.used = 0.0

    def _recovery_worker(self):
        while True:
            pool, key = yield self._recovery_queue.get()
            ref = self._objects.get((pool, key))
            if ref is None:
                continue  # deleted meanwhile
            holders = self.holders(pool, key)
            if not holders:
                self.lost_objects.append((pool, key))
                continue
            needed = self._pool(pool).replication - len(holders)
            if needed <= 0:
                continue
            try:
                candidates = [
                    osd
                    for osd in self.crush.osds_for(
                        pool, key, self.up_osds(), self._pool(pool).replication
                    )
                    if not osd.holds(pool, key)
                ]
            except InsufficientReplicasError:
                candidates = [
                    osd for osd in self.up_osds() if not osd.holds(pool, key)
                ]
            source = holders[0]
            for target in candidates[:needed]:
                resources = [source.disk]
                if self.topology is not None and source.host != target.host:
                    resources.extend(
                        self.topology.path_resources(source.host, target.host)
                    )
                resources.append(target.disk)
                if self.flowsim is not None:
                    yield self.flowsim.transfer(
                        resources, ref.size, name=f"ceph-recover:{pool}/{key}"
                    )
                target.store(pool, key, ref.size)
                self.recovered_objects += 1

    # ----------------------------------------------------------------- health

    def degraded_objects(self) -> int:
        """Objects with fewer up replicas than their pool requires."""
        count = 0
        for (pool, key) in self._objects:
            if len(self.holders(pool, key)) < self._pool(pool).replication:
                count += 1
        return count

    def health(self) -> dict[str, object]:
        """The ``ceph status`` analog."""
        degraded = self.degraded_objects()
        down = sum(1 for osd in self.osds.values() if not osd.up)
        if self.lost_objects:
            status = "HEALTH_ERR"
        elif degraded or down:
            status = "HEALTH_WARN"
        else:
            status = "HEALTH_OK"
        return {
            "status": status,
            "osds": len(self.osds),
            "osds_up": len(self.osds) - down,
            "objects": len(self._objects),
            "degraded_objects": degraded,
            "lost_objects": len(self.lost_objects),
            "capacity_bytes": self.total_capacity(),
            "used_bytes": self.total_used(),
        }

    def total_capacity(self) -> float:
        return sum(osd.capacity for osd in self.osds.values())

    def total_used(self) -> float:
        return sum(osd.used for osd in self.osds.values())

    def __repr__(self) -> str:  # pragma: no cover
        h = self.health()
        return (
            f"<CephCluster {h['status']} osds={h['osds_up']}/{h['osds']} "
            f"objects={h['objects']}>"
        )
