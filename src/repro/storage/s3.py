"""S3-compatible object gateway over the Ceph cluster.

Paper §II-A: data in Nautilus is "compatible with other cloud storage
solutions such as Amazon S3, OpenStack Swift, and various supercomputer
storage architectures via the Ceph Object Store" — the RADOS Gateway.
This facade exposes the familiar bucket/key API, including multipart
uploads (how big scientific objects actually move), mapped onto pools of
a :class:`~repro.storage.objects.CephCluster`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing as _t

from repro.errors import ConflictError, ObjectNotFoundError, StorageError
from repro.storage.objects import CephCluster, ObjectRef

__all__ = ["S3Gateway", "MultipartUpload", "S3Object"]

#: S3's minimum part size (5 MiB), enforced for all but the last part.
MIN_PART_BYTES = 5 * 1024 * 1024


@dataclasses.dataclass(frozen=True)
class S3Object:
    """A listed object: key, size, etag."""

    bucket: str
    key: str
    size: float
    etag: str


class MultipartUpload:
    """An in-progress multipart upload (parts may arrive out of order)."""

    def __init__(self, gateway: "S3Gateway", bucket: str, key: str, upload_id: str):
        self._gateway = gateway
        self.bucket = bucket
        self.key = key
        self.upload_id = upload_id
        self.parts: dict[int, tuple[float, object]] = {}
        self.completed = False
        self.aborted = False

    def upload_part(self, part_number: int, size: float, payload: object = None) -> str:
        """Store one part; returns its etag."""
        if self.completed or self.aborted:
            raise StorageError(f"upload {self.upload_id} is closed")
        if part_number < 1 or part_number > 10_000:
            raise StorageError("part numbers must be in 1..10000")
        if size < 0:
            raise StorageError("negative part size")
        self.parts[part_number] = (float(size), payload)
        return _etag(f"{self.upload_id}:{part_number}:{size}")

    def complete(self) -> S3Object:
        """Assemble the parts into the final object.

        Enforces S3's rule: every part except the last must be at least
        5 MiB.
        """
        if self.aborted:
            raise StorageError(f"upload {self.upload_id} was aborted")
        if not self.parts:
            raise StorageError("cannot complete an upload with no parts")
        ordered = sorted(self.parts)
        for part_number in ordered[:-1]:
            if self.parts[part_number][0] < MIN_PART_BYTES:
                raise StorageError(
                    f"part {part_number} is below the 5 MiB minimum"
                )
        total = sum(size for size, _ in self.parts.values())
        payloads = [
            self.parts[n][1] for n in ordered if self.parts[n][1] is not None
        ]
        payload = payloads if payloads else None
        obj = self._gateway._put_object(self.bucket, self.key, total, payload)
        self.completed = True
        self._gateway._uploads.pop(self.upload_id, None)
        return obj

    def abort(self) -> None:
        """Discard all parts."""
        self.aborted = True
        self.parts.clear()
        self._gateway._uploads.pop(self.upload_id, None)


def _etag(seed: str) -> str:
    return hashlib.blake2b(seed.encode(), digest_size=16).hexdigest()


class S3Gateway:
    """Bucket/key API mapped onto Ceph pools.

    Each bucket is one pool named ``s3-<bucket>``; keys map directly to
    object keys.  All metadata operations are instant (the gateway is a
    control-plane facade); bulk data still moves through the cluster's
    timed path when callers use :meth:`put_object_timed`.
    """

    def __init__(self, cluster: CephCluster, replication: int = 3):
        self.cluster = cluster
        self.replication = replication
        self._uploads: dict[str, MultipartUpload] = {}
        self._upload_serial = 0

    # -- buckets ------------------------------------------------------------------

    @staticmethod
    def _pool(bucket: str) -> str:
        return f"s3-{bucket}"

    def create_bucket(self, bucket: str) -> None:
        if not bucket or "/" in bucket:
            raise StorageError(f"invalid bucket name {bucket!r}")
        if self._pool(bucket) in self.cluster.pools:
            raise ConflictError(f"bucket {bucket!r} already exists")
        self.cluster.create_pool(self._pool(bucket), replication=self.replication)

    def bucket_exists(self, bucket: str) -> bool:
        return self._pool(bucket) in self.cluster.pools

    def list_buckets(self) -> list[str]:
        return sorted(
            name[3:] for name in self.cluster.pools if name.startswith("s3-")
        )

    def _require_bucket(self, bucket: str) -> str:
        pool = self._pool(bucket)
        if pool not in self.cluster.pools:
            raise ObjectNotFoundError(f"no bucket {bucket!r}")
        return pool

    # -- objects -------------------------------------------------------------------

    def _put_object(
        self, bucket: str, key: str, size: float, payload: object = None
    ) -> S3Object:
        pool = self._require_bucket(bucket)
        self.cluster.put_sync(pool, key, size, payload)
        return S3Object(bucket=bucket, key=key, size=size,
                        etag=_etag(f"{bucket}/{key}/{size}"))

    def put_object(
        self, bucket: str, key: str, size: float, payload: object = None
    ) -> S3Object:
        """Instant PUT (control-plane sized objects)."""
        return self._put_object(bucket, key, size, payload)

    def put_object_timed(self, bucket: str, key: str, size: float,
                         payload: object = None, client_host: str | None = None):
        """PUT through the flow engine; returns a simulation event."""
        pool = self._require_bucket(bucket)
        return self.cluster.put(pool, key, size, payload,
                                client_host=client_host)

    def get_object(self, bucket: str, key: str) -> ObjectRef:
        pool = self._require_bucket(bucket)
        return self.cluster.get_sync(pool, key)

    def head_object(self, bucket: str, key: str) -> S3Object:
        pool = self._require_bucket(bucket)
        ref = self.cluster.stat(pool, key)
        return S3Object(bucket=bucket, key=key, size=ref.size,
                        etag=_etag(f"{bucket}/{key}/{ref.size}"))

    def delete_object(self, bucket: str, key: str) -> None:
        pool = self._require_bucket(bucket)
        self.cluster.delete(pool, key)

    def list_objects(self, bucket: str, prefix: str = "") -> list[S3Object]:
        pool = self._require_bucket(bucket)
        return [
            self.head_object(bucket, key)
            for key in self.cluster.list_keys(pool, prefix=prefix)
        ]

    # -- multipart -----------------------------------------------------------------

    def create_multipart_upload(self, bucket: str, key: str) -> MultipartUpload:
        """Begin a multipart upload (how >5 GB scientific objects move)."""
        self._require_bucket(bucket)
        self._upload_serial += 1
        upload_id = f"mpu-{self._upload_serial:06d}"
        upload = MultipartUpload(self, bucket, key, upload_id)
        self._uploads[upload_id] = upload
        return upload

    def list_multipart_uploads(self) -> list[str]:
        return sorted(self._uploads)
