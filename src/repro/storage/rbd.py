"""RBD-like block volumes: the "block" third of Ceph's storage trio.

Paper §II-A: "Ceph provides block, object, and POSIX compliant file
storage as a service within the cluster."  Kubernetes consumes the block
side as PersistentVolumes; this module models that path: images are
thin-provisioned over the object pool (one backing object per extent),
claimed by pods, resized, and snapshotted.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConflictError, StorageError
from repro.storage.objects import CephCluster

__all__ = ["BlockImage", "RBDPool"]

#: Extent (object) size backing an image: 4 MiB, Ceph's default.
EXTENT_BYTES = 4 * 1024 * 1024


@dataclasses.dataclass
class BlockImage:
    """One block device image."""

    name: str
    size_bytes: float
    provisioned_extents: int = 0
    claimed_by: str | None = None
    snapshots: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def total_extents(self) -> int:
        return int(-(-self.size_bytes // EXTENT_BYTES))  # ceil

    @property
    def thin_utilization(self) -> float:
        """Fraction of the logical size actually backed by objects."""
        if self.total_extents == 0:
            return 0.0
        return self.provisioned_extents / self.total_extents


class RBDPool:
    """Block-image management over a Ceph pool.

    Thin provisioning: creating an image costs nothing; extents are
    backed by real (replicated) objects only when written.
    """

    def __init__(self, cluster: CephCluster, pool: str = "rbd",
                 replication: int = 3):
        self.cluster = cluster
        self.pool = pool
        if pool not in cluster.pools:
            cluster.create_pool(pool, replication=replication)
        self.images: dict[str, BlockImage] = {}

    def create_image(self, name: str, size_bytes: float) -> BlockImage:
        """``rbd create``: a thin-provisioned image."""
        if name in self.images:
            raise ConflictError(f"image {name!r} already exists")
        if size_bytes <= 0:
            raise StorageError("image size must be positive")
        image = BlockImage(name=name, size_bytes=float(size_bytes))
        self.images[name] = image
        return image

    def _image(self, name: str) -> BlockImage:
        try:
            return self.images[name]
        except KeyError:
            raise StorageError(f"no image {name!r}") from None

    # -- attachment (PersistentVolumeClaim semantics) -------------------------------

    def claim(self, name: str, pod_uid: str) -> BlockImage:
        """Attach an image to a pod (RWO: one claimant at a time)."""
        image = self._image(name)
        if image.claimed_by is not None and image.claimed_by != pod_uid:
            raise ConflictError(
                f"image {name!r} is already claimed by {image.claimed_by!r}"
            )
        image.claimed_by = pod_uid
        return image

    def release(self, name: str, pod_uid: str) -> None:
        image = self._image(name)
        if image.claimed_by == pod_uid:
            image.claimed_by = None

    # -- I/O ----------------------------------------------------------------------

    def write(self, name: str, offset: float, nbytes: float) -> int:
        """Write a byte range; returns the number of newly-backed extents.

        Only the claimant may write; writes past the end fail.
        """
        image = self._image(name)
        if image.claimed_by is None:
            raise StorageError(f"image {name!r} is not claimed")
        if offset < 0 or nbytes < 0 or offset + nbytes > image.size_bytes:
            raise StorageError(
                f"write [{offset}, {offset + nbytes}) outside image of "
                f"{image.size_bytes} bytes"
            )
        first = int(offset // EXTENT_BYTES)
        last = int((offset + max(nbytes, 1) - 1) // EXTENT_BYTES)
        newly_backed = 0
        for extent in range(first, last + 1):
            key = f"{name}/extent-{extent:08d}"
            if not self.cluster.exists(self.pool, key):
                self.cluster.put_sync(self.pool, key, EXTENT_BYTES)
                image.provisioned_extents += 1
                newly_backed += 1
        return newly_backed

    def resize(self, name: str, new_size: float) -> None:
        """Grow (never shrink below provisioned data) an image."""
        image = self._image(name)
        if new_size < image.provisioned_extents * EXTENT_BYTES:
            raise StorageError("cannot shrink below provisioned extents")
        image.size_bytes = float(new_size)

    # -- snapshots -----------------------------------------------------------------

    def snapshot(self, name: str, snap_name: str) -> None:
        """Record a point-in-time extent count (COW bookkeeping model)."""
        image = self._image(name)
        if snap_name in image.snapshots:
            raise ConflictError(f"snapshot {snap_name!r} exists")
        image.snapshots[snap_name] = image.provisioned_extents

    def remove_image(self, name: str) -> None:
        """``rbd rm``: drop the image and its backing objects."""
        image = self._image(name)
        if image.claimed_by is not None:
            raise StorageError(f"image {name!r} is claimed; release first")
        for key in self.cluster.list_keys(self.pool, prefix=f"{name}/"):
            self.cluster.delete(self.pool, key)
        del self.images[name]

    def provisioned_bytes(self) -> float:
        """Real bytes backing all images (before replication)."""
        return sum(
            img.provisioned_extents * EXTENT_BYTES
            for img in self.images.values()
        )
