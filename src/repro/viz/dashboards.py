"""Prebuilt Grafana-style dashboards for a Nautilus testbed.

"Grafana ... graphs cluster health and performance data" (§II-A); admins
don't assemble panels by hand every time — they load the standard
cluster dashboard.  These builders produce the equivalents for a
:class:`~repro.testbed.NautilusTestbed`.
"""

from __future__ import annotations

import typing as _t

from repro.monitoring.grafana import Dashboard, Panel

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.testbed import NautilusTestbed

__all__ = ["build_cluster_dashboard", "build_workflow_dashboard"]


def build_cluster_dashboard(testbed: "NautilusTestbed") -> Dashboard:
    """The cluster-health view: per-node compute + storage + network."""
    dash = Dashboard(f"Nautilus cluster — {testbed.cluster.name}",
                     testbed.registry)
    dash.add_panel(Panel(title="CPU allocated (cores)",
                         metric="node_cpu_allocated_cores", unit="cores"))
    dash.add_panel(Panel(title="Memory allocated",
                         metric="node_memory_allocated_bytes", unit="GB",
                         scale=1e-9))
    dash.add_panel(Panel(title="GPUs in use", metric="node_gpus_in_use",
                         unit="GPUs"))
    dash.add_panel(Panel(title="Ceph bytes stored", metric="ceph_used_bytes",
                         unit="TB", scale=1e-12, kind="stat"))
    dash.add_panel(Panel(title="Ceph disk writes",
                         metric="ceph_disk_write_bytes_per_second", unit="MB/s",
                         scale=1e-6))
    dash.add_panel(Panel(title="THREDDS egress", metric="thredds_egress_bytes_per_second",
                         unit="MB/s", scale=1e-6))
    return dash


def build_workflow_dashboard(testbed: "NautilusTestbed") -> Dashboard:
    """The workflow view: the per-step series Figures 3/5/6 are built on."""
    dash = Dashboard("CONNECT workflow", testbed.registry)
    dash.add_panel(Panel(title="Step 1 worker CPU (per worker)",
                         metric="step1_worker_cpu_cores", unit="cores"))
    dash.add_panel(Panel(title="Step 1 bytes downloaded",
                         metric="step1_downloaded_bytes_total", unit="GB",
                         scale=1e-9, kind="stat"))
    dash.add_panel(Panel(title="Step 2 phase (0 fetch/1 prep/2 train/3 done)",
                         metric="step2_phase"))
    dash.add_panel(Panel(title="Step 3 GPU busy (per worker)",
                         metric="step3_gpu_busy"))
    dash.add_panel(Panel(title="Step 3 voxels segmented",
                         metric="step3_voxels_done_total", kind="stat",
                         unit="voxels"))
    return dash
