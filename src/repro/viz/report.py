"""Per-figure/table renderers + the numeric stats the benches assert on.

Every function takes the live objects (testbed, workflow report) and
produces (a) a text rendering comparable with the paper's figure and
(b) — via the ``figureN_stats`` twins — the headline numbers (maxima,
durations, peaks) that EXPERIMENTS.md tabulates against the paper.
"""

from __future__ import annotations

import typing as _t

import repro.monitoring.promql as promql
from repro.monitoring.grafana import sparkline
from repro.viz.ascii import bar_chart, text_table

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.testbed import NautilusTestbed
    from repro.workflow import Workflow, WorkflowReport

__all__ = [
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_table1",
    "figure3_stats",
    "figure4_stats",
    "figure5_stats",
    "figure6_stats",
]


# ------------------------------------------------------------------ figure 1


def render_figure1(testbed: "NautilusTestbed") -> str:
    """Figure 1: the PRP/Nautilus deployment inventory."""
    fig = testbed.figure1_summary()
    rows = [
        ("PRP partner sites", fig["prp_sites"]),
        ("  ...supercomputer-center tier", fig["core_sites"]),
        ("WAN link speeds (Gbps)", ", ".join(map(str, fig["wan_link_speeds_gbps"]))),
        ("Cluster nodes (FIONAs)", fig["cluster_nodes"]),
        ("  ...FIONA8 GPU appliances", fig["fiona8_nodes"]),
        ("GPUs", fig["gpus"]),
        ("Ceph OSDs", fig["osds"]),
        ("Storage capacity (PB)", f"{fig['storage_petabytes']:.2f}"),
        ("MERRA-2 archive files", f"{fig['archive_files']:,}"),
        ("Archive size full/subset (GB)",
         f"{fig['archive_bytes_full'] / 1e9:.0f} / "
         f"{fig['archive_bytes_subset'] / 1e9:.0f}"),
    ]
    return text_table(
        ["Component", "Value"],
        rows,
        title="Figure 1 — Kubernetes/Rook/Ceph on PRP: deployment inventory",
    )


# ------------------------------------------------------------------ figure 2


def render_figure2(workflow: "Workflow") -> str:
    """Figure 2: the workflow steps and their ordering."""
    return "Figure 2 — Workflow steps\n" + workflow.describe()


# ------------------------------------------------------------------ figure 3


def _step_window(report: "WorkflowReport", step: str) -> tuple[float, float]:
    s = report.step(step)
    return s.start_time, s.end_time


def figure3_stats(
    testbed: "NautilusTestbed", report: "WorkflowReport"
) -> dict[str, float]:
    """Download-job orchestration numbers (paper: 10 workers, 37 min,
    246 GB, 112,249 files)."""
    step = report.step("download")
    series = testbed.registry.all_series("step1_worker_cpu_cores")
    workers = {dict(ts.labels).get("worker") for ts in series}
    return {
        "workers": float(len(workers)),
        "minutes": step.duration_minutes,
        "gigabytes": step.data_processed_bytes / 1e9,
        "files": float(step.artifacts.get("files_downloaded", 0)),
        "pods": float(step.pods),
        "cpus": float(step.cpus),
    }


def render_figure3(testbed: "NautilusTestbed", report: "WorkflowReport") -> str:
    """Figure 3: per-worker CPU/memory during the download job."""
    stats = figure3_stats(testbed, report)
    start, end = _step_window(report, "download")
    lines = [
        "Figure 3 — Kubernetes data download job orchestration",
        f"  {stats['workers']:.0f} workers via Redis queue | total "
        f"{stats['minutes']:.0f} min | {stats['gigabytes']:.0f} GB "
        f"({stats['files']:,.0f} NetCDF files)",
        "  per-worker CPU (cores):",
    ]
    for ts in testbed.registry.all_series("step1_worker_cpu_cores"):
        worker = dict(ts.labels).get("worker", "?")
        times, values = ts.window(start, end)
        lines.append(f"    {worker:<26} {sparkline(values, width=48)}")
    mem = [
        ts
        for ts in testbed.registry.all_series("node_memory_allocated_bytes")
        if len(ts)
    ]
    if mem:
        _, total = promql.sum_series(mem)
        lines.append("  cluster memory allocated (sum):")
        lines.append(f"    {'all nodes':<26} {sparkline(total, width=48)}")
    return "\n".join(lines)


# ------------------------------------------------------------------ figure 4


def figure4_stats(
    testbed: "NautilusTestbed", report: "WorkflowReport",
    sample_interval: float | None = None,
) -> dict[str, float]:
    """Network usage during the download (paper: IOPS max 593 MB/s,
    throughput max 2.64 GB per sample)."""
    start, end = _step_window(report, "download")
    interval = sample_interval or testbed.sampler.interval
    egress = testbed.registry.all_series("thredds_egress_bytes_per_second")
    disk = testbed.registry.all_series("ceph_disk_write_bytes_per_second")
    peak_egress = max(
        (promql.max_over_time(ts, start, end) for ts in egress), default=0.0
    )
    peak_disk = max(
        (promql.max_over_time(ts, start, end) for ts in disk), default=0.0
    )
    return {
        "storage_write_peak_MBps": peak_disk / 1e6,
        "wan_egress_peak_MBps": peak_egress / 1e6,
        # The paper labels this "Throughput: Max 2.64GB" — a data volume,
        # which we read as bytes moved per Grafana sampling window at the
        # peak WAN rate (EXPERIMENTS.md discusses the unit ambiguity).
        "throughput_peak_GB_per_sample": peak_egress * interval / 1e9,
        "throughput_peak_Gbps": peak_egress * 8 / 1e9,
    }


def render_figure4(testbed: "NautilusTestbed", report: "WorkflowReport") -> str:
    stats = figure4_stats(testbed, report)
    start, end = _step_window(report, "download")
    lines = [
        "Figure 4 — Network usage during download job run",
        f"  IOPS (storage writes): max {stats['storage_write_peak_MBps']:.0f} MB/s",
        f"  Throughput: max {stats['throughput_peak_GB_per_sample']:.2f} GB "
        f"per {testbed.sampler.interval:.0f}s sample",
    ]
    for name, label in (
        ("thredds_egress_bytes_per_second", "THREDDS egress (B/s)"),
        ("ceph_disk_write_bytes_per_second", "Ceph disk writes (B/s)"),
    ):
        for ts in testbed.registry.all_series(name):
            _, values = ts.window(start, end)
            lines.append(f"  {label:<24} {sparkline(values, width=48)}")
    return "\n".join(lines)


# ------------------------------------------------------------------ figure 5


def figure5_stats(
    testbed: "NautilusTestbed", report: "WorkflowReport"
) -> dict[str, float]:
    """Training job phases (paper: 306 min total; prep then training)."""
    step = report.step("training")
    phases = testbed.registry.all_series("step2_phase")
    prep_s = train_s = 0.0
    if phases:
        times, values = phases[0].as_arrays()
        # Phases: 0 fetch, 1 prep, 2 training, 3 done (see TrainingStep).
        marks = {v: t for t, v in zip(times, values)}
        if 1.0 in marks and 2.0 in marks:
            prep_s = marks[2.0] - marks[1.0]
        if 2.0 in marks and 3.0 in marks:
            train_s = marks[3.0] - marks[2.0]
    return {
        "total_minutes": step.duration_minutes,
        "prep_minutes": prep_s / 60.0,
        "train_minutes": train_s / 60.0,
        "train_voxels": float(step.artifacts.get("train_voxels", 0)),
    }


def render_figure5(testbed: "NautilusTestbed", report: "WorkflowReport") -> str:
    stats = figure5_stats(testbed, report)
    chart = bar_chart(
        [
            ("data preparation", stats["prep_minutes"]),
            ("FFN training", stats["train_minutes"]),
        ],
        unit=" min",
        title=(
            "Figure 5 — Training job (purple = data prep, green = FFN "
            f"training on a 576x361x240 volume); total "
            f"{stats['total_minutes']:.0f} min"
        ),
    )
    return chart


# ------------------------------------------------------------------ figure 6


def figure6_stats(
    testbed: "NautilusTestbed", report: "WorkflowReport"
) -> dict[str, float]:
    """Inference job utilization (paper: 50 GPUs, 1133 min)."""
    step = report.step("inference")
    start, end = _step_window(report, "inference")
    gpu_series = testbed.registry.all_series("node_gpus_in_use")
    grid, total_gpu = promql.sum_series(gpu_series)
    if len(grid):
        mask = (grid >= start) & (grid <= end)
        peak_gpus = float(total_gpu[mask].max()) if mask.any() else 0.0
    else:
        peak_gpus = 0.0
    return {
        "minutes": step.duration_minutes,
        "gpus": float(step.gpus),
        "peak_gpus_in_use": peak_gpus,
        "cpus": float(step.cpus),
        "memory_gb": step.memory_bytes / 1e9,
        "voxels": float(step.artifacts.get("voxels_total", 0)),
    }


def render_figure6(testbed: "NautilusTestbed", report: "WorkflowReport") -> str:
    stats = figure6_stats(testbed, report)
    start, end = _step_window(report, "inference")
    lines = [
        "Figure 6 — Inference job",
        f"  {stats['gpus']:.0f} GPUs | {stats['minutes']:.0f} min | "
        f"{stats['voxels']:.3g} voxels",
    ]
    for metric, label in (
        ("node_cpu_allocated_cores", "CPUs in use"),
        ("node_memory_allocated_bytes", "Memory in use"),
        ("node_gpus_in_use", "GPUs in use"),
    ):
        series = testbed.registry.all_series(metric)
        grid, total = promql.sum_series(series)
        if len(grid):
            mask = (grid >= start) & (grid <= end)
            lines.append(f"  {label:<16} {sparkline(total[mask], width=48)}")
    return "\n".join(lines)


# ------------------------------------------------------------------- table 1


def render_table1(report: "WorkflowReport") -> str:
    """Table I: Nautilus resource summary for all steps."""
    order = ["download", "training", "inference", "visualization"]
    steps = [report.step(name) for name in order if _has(report, name)]
    headers = ["Metric"] + [f"Step {i + 1}" for i in range(len(steps))]
    rows = [
        ["# of Pods"] + [s.pods for s in steps],
        ["# of CPUs"] + [int(round(s.cpus)) for s in steps],
        ["# of GPUs"] + [s.gpus for s in steps],
        ["Data Processed"]
        + [_fmt_bytes(s.data_processed_bytes) for s in steps],
        ["Memory"] + [_fmt_bytes(s.memory_bytes) for s in steps],
        ["Total Time"] + [s.total_time_cell() for s in steps],
    ]
    return text_table(
        headers,
        rows,
        title="Table I — Nautilus resource summary for all workflow steps",
    )


def _has(report: "WorkflowReport", name: str) -> bool:
    try:
        report.step(name)
        return True
    except KeyError:
        return False


def _fmt_bytes(nbytes: float) -> str:
    if nbytes >= 1e9:
        return f"{nbytes / 1e9:.3g}GB"
    return f"{nbytes / 1e6:.3g}MB"
