"""Renderers for every figure and table in the paper's evaluation.

Each ``render_*`` function regenerates one artifact from a testbed and/or
workflow report, as text: the benchmark harness prints these so a run's
output can be compared side by side with the paper.
"""

from repro.viz.report import (
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_table1,
    figure3_stats,
    figure4_stats,
    figure5_stats,
    figure6_stats,
)
from repro.viz.ascii import bar_chart, text_table
from repro.viz.flame import flame_summary

__all__ = [
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_table1",
    "figure3_stats",
    "figure4_stats",
    "figure5_stats",
    "figure6_stats",
    "bar_chart",
    "text_table",
    "flame_summary",
]
