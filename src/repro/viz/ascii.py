"""Plain-text chart primitives: tables and horizontal bar charts."""

from __future__ import annotations

import typing as _t

__all__ = ["text_table", "bar_chart"]


def text_table(
    headers: _t.Sequence[str],
    rows: _t.Sequence[_t.Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table (all cells stringified)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def fmt(row: _t.Sequence[str]) -> str:
        inner = " | ".join(c.ljust(w) for c, w in zip(row, widths))
        return f"| {inner} |"

    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt([str(h) for h in headers]))
    lines.append(sep)
    for row in cells:
        lines.append(fmt(row))
    lines.append(sep)
    return "\n".join(lines)


def bar_chart(
    items: _t.Sequence[tuple[str, float]],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart: one ``(label, value)`` per row."""
    if not items:
        return title or "(empty)"
    finite = [v for _, v in items if v == v and abs(v) != float("inf")]
    peak = max(finite, default=0.0) or 1.0
    label_w = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        if value != value or abs(value) == float("inf"):
            lines.append(f"{label:<{label_w}} (no finite value)")
            continue
        bar = "█" * max(0, int(round(width * value / peak)))
        lines.append(f"{label:<{label_w}} {bar} {value:,.2f}{unit}")
    return "\n".join(lines)
