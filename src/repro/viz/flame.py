"""ASCII flame summary for a span tree.

Each span renders as one line: an indented name, a duration, and a bar
whose horizontal position and width are the span's [start, end) interval
scaled to the root span's extent — the text analogue of a flame graph /
Chrome trace timeline, printable in CI logs.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.tracing.span import Span

__all__ = ["flame_summary"]

_BAR = "█"
_TRACK = "·"


def _bar(start: float, end: float, t0: float, extent: float, width: int) -> str:
    """One timeline track: filled over [start, end), dotted elsewhere."""
    if extent <= 0.0:
        return _TRACK * width
    lo = int(round((start - t0) / extent * width))
    hi = int(round((end - t0) / extent * width))
    lo = max(0, min(width, lo))
    hi = max(lo, min(width, hi))
    if hi == lo and end > start:
        hi = min(width, lo + 1)  # sub-pixel spans still get one cell
    return _TRACK * lo + _BAR * (hi - lo) + _TRACK * (width - hi)


def flame_summary(
    spans: _t.Sequence["Span"],
    *,
    width: int = 48,
    max_depth: int | None = None,
    min_fraction: float = 0.0,
) -> str:
    """Render finished ``spans`` as an indented ASCII timeline.

    ``min_fraction`` drops spans shorter than that fraction of the root
    (children of a dropped span are dropped with it); ``max_depth``
    truncates the tree below that depth.  Sibling order is by start time
    (ties by span_id), so the rendering is deterministic.
    """
    finished = [s for s in spans if s.end is not None]
    if not finished:
        return "(no finished spans)"

    by_parent: dict[str | None, list["Span"]] = {}
    ids = {s.span_id for s in finished}
    for s in finished:
        parent = s.parent_id if s.parent_id in ids else None
        by_parent.setdefault(parent, []).append(s)
    for children in by_parent.values():
        children.sort(key=lambda s: (s.start, s.span_id))

    roots = by_parent.get(None, [])
    t0 = min(s.start for s in roots)
    t1 = max(s.end for s in roots)
    extent = t1 - t0

    name_w = 34
    lines = [
        f"{'span':<{name_w}} {'dur(s)':>9} timeline "
        f"[{t0:.1f}s .. {t1:.1f}s]"
    ]

    def walk(span: "Span", depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        if extent > 0 and span.duration < min_fraction * extent:
            return
        label = ("  " * depth + span.name)[:name_w]
        track = _bar(span.start, span.end, t0, extent, width)
        lines.append(f"{label:<{name_w}} {span.duration:>9.2f} {track}")
        for child in by_parent.get(span.span_id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
