"""The simulation environment: event heap, virtual clock, run loop."""

from __future__ import annotations

import heapq
import typing as _t

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment"]

#: Scheduling priorities: urgent (interrupts) before normal.
_URGENT = 0
_NORMAL = 1


class Environment:
    """Owns the virtual clock and the pending-event heap.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (defaults to ``0.0``).

    Notes
    -----
    Events scheduled for the same time fire in FIFO order of scheduling
    (stable, deterministic).  The kernel never consults the wall clock, so
    two runs of the same program are bit-identical.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        self._crashes: list[tuple[Process, BaseException]] = []

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds by library convention)."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: _t.Generator[Event, object, object],
        name: str | None = None,
    ) -> Process:
        """Spawn a new process driving ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """Event firing once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """Event firing once any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = _NORMAL
    ) -> None:
        """Put a triggered event on the heap ``delay`` units from now.

        ``priority=0`` (urgent) is used for interrupt delivery so that an
        interrupt scheduled at time *t* pre-empts normal events at *t*.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def _crashed(self, process: Process, exc: BaseException) -> None:
        """Record an unwatched process crash; re-raised by :meth:`run`."""
        self._crashes.append((process, exc))

    # -- run loop ----------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("no events scheduled")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - heap invariant
            raise SimulationError("time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks or ():
            callback(event)
        if not event._ok and not event._defused:
            raise _t.cast(BaseException, event._value)
        if self._crashes:
            _proc, exc = self._crashes[0]
            self._crashes.clear()
            raise exc

    def run(self, until: float | Event | None = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            - ``None``: run until the heap is empty.
            - a number: run until the clock reaches that time.
            - an :class:`Event`: run until that event fires and return its
              value (raising its exception if it failed).
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            if until.env is not self:
                raise SimulationError("`until` event from another environment")
            finished: list[Event] = []
            if until.processed:
                finished.append(until)
            else:
                until.callbacks.append(finished.append)
            while not finished:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before `until` fired"
                    )
                self.step()
            event = finished[0]
            if not event._ok:
                event.defuse()
                raise _t.cast(BaseException, event._value)
            return event._value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} < now ({self._now})"
            )
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = max(self._now, horizon)
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Environment now={self._now} pending={len(self._heap)}>"
