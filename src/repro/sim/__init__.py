"""Discrete-event simulation kernel.

This package is the substrate on which every simulated subsystem of the
CHASE-CI reproduction runs: the Kubernetes-like control plane, the PRP
network, the Ceph-like storage cluster, and the workflow driver are all
coroutine *processes* scheduled on a single virtual clock.

The design is a compact, from-scratch SimPy-style engine:

- :class:`Environment` owns the event heap and the virtual clock.
- :class:`Event` is a one-shot occurrence with success/failure and callbacks.
- :class:`Process` wraps a generator; ``yield``-ing an event suspends the
  process until the event fires.
- :class:`Resource`, :class:`Container` and :class:`Store` provide
  capacity-limited sharing, continuous levels, and object queues.

Determinism: all ties at equal simulation time are broken by a monotonically
increasing sequence number, so a run is exactly reproducible given the same
program and seed. The kernel never reads the wall clock.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield env.timeout(5)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[5.0]
"""

from repro.sim.events import Event, Timeout, AllOf, AnyOf, Interrupt
from repro.sim.process import Process
from repro.sim.environment import Environment
from repro.sim.resources import Resource, PriorityResource, Container, Store
from repro.sim.rng import SeededRNG, derive_seed

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "PriorityResource",
    "Container",
    "Store",
    "SeededRNG",
    "derive_seed",
]
