"""Deterministic randomness utilities.

Every stochastic component in the reproduction (network jitter, worker
speed variation, synthetic weather fields) draws from a seeded
:class:`numpy.random.Generator`.  To keep subsystems independent —
adding a draw in one module must not perturb another — seeds are *derived*
per named stream from a root seed via a stable hash.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "SeededRNG"]


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of names.

    Stable across processes and Python versions (uses BLAKE2, not
    ``hash()``).

    >>> derive_seed(42, "network") != derive_seed(42, "storage")
    True
    >>> derive_seed(42, "network") == derive_seed(42, "network")
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode())
    for name in names:
        h.update(b"/")
        h.update(str(name).encode())
    return int.from_bytes(h.digest(), "big")


class SeededRNG:
    """A tree of named, independent random generators.

    >>> rng = SeededRNG(7)
    >>> a = rng.stream("net").normal()
    >>> b = SeededRNG(7).stream("net").normal()
    >>> a == b
    True
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[tuple, np.random.Generator] = {}

    def stream(self, *names: object) -> np.random.Generator:
        """Return (creating if needed) the generator for a named stream."""
        key = tuple(str(n) for n in names)
        gen = self._streams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.root_seed, *key))
            self._streams[key] = gen
        return gen

    def child(self, *names: object) -> "SeededRNG":
        """A sub-tree rooted at a derived seed (for handing to subsystems)."""
        return SeededRNG(derive_seed(self.root_seed, *names))
