"""Shared-resource primitives: capacity slots, continuous levels, queues.

These mirror the classic SimPy trio but are written from scratch on top of
:mod:`repro.sim.events`:

- :class:`Resource` — a pool of identical slots (e.g. CPU cores on a node).
- :class:`PriorityResource` — slots granted lowest-priority-number first.
- :class:`Container` — a continuous quantity (e.g. bytes of disk).
- :class:`Store` — a FIFO queue of Python objects (e.g. a message queue).

All ``request``/``get``/``put`` calls return events; processes ``yield``
them.  Releases are immediate (no event needed) but trigger waiter wake-up
at the current simulation time.
"""

from __future__ import annotations

import typing as _t
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment

__all__ = ["Request", "Resource", "PriorityResource", "Container", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the slot ...
    """

    __slots__ = ("resource", "priority", "amount")

    def __init__(self, resource: "Resource", priority: int = 0, amount: int = 1):
        super().__init__(resource.env)
        if amount < 1:
            raise SimulationError(f"request amount must be >= 1, got {amount}")
        self.resource = resource
        self.priority = priority
        self.amount = amount

    def cancel(self) -> None:
        """Withdraw the request (waiting or granted)."""
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)


class Resource:
    """A pool of ``capacity`` identical slots granted FIFO.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of slots (>= 1).
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._in_use = 0
        self._queue: list[tuple[int, int, Request]] = []
        self._seq = 0
        self._granted: set[Request] = set()

    @property
    def count(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def queue_len(self) -> int:
        """Requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: int = 0, amount: int = 1) -> Request:
        """Claim ``amount`` slots; the returned event fires when granted."""
        req = Request(self, priority=priority, amount=amount)
        if amount > self.capacity:
            raise SimulationError(
                f"request for {amount} slots exceeds capacity {self.capacity}"
            )
        self._seq += 1
        heappush(self._queue, (priority, self._seq, req))
        self._dispatch()
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot (or cancel a waiting request)."""
        if request in self._granted:
            self._granted.remove(request)
            self._in_use -= request.amount
            self._dispatch()
        else:
            # Still waiting: lazily remove from the heap.
            for i, (_p, _s, queued) in enumerate(self._queue):
                if queued is request:
                    self._queue.pop(i)
                    _heapify(self._queue)
                    break

    def _dispatch(self) -> None:
        while self._queue:
            _prio, _seq, req = self._queue[0]
            if req.triggered:
                heappop(self._queue)  # cancelled or already granted
                continue
            if self._in_use + req.amount > self.capacity:
                break
            heappop(self._queue)
            self._in_use += req.amount
            self._granted.add(req)
            req.succeed(req)


def _heapify(heap: list) -> None:
    import heapq

    heapq.heapify(heap)


class PriorityResource(Resource):
    """A :class:`Resource` that grants waiters lowest ``priority`` first.

    Identical mechanics — :class:`Resource` already orders its wait-heap by
    ``(priority, arrival)`` — this alias exists so call sites read clearly.
    """


class Container:
    """A continuous quantity with ``put``/``get`` events.

    Used for byte-capacity modelling (disk space, memory pools).

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum level (default: unbounded).
    init:
        Initial level.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init must be within [0, capacity]")
        self.env = env
        self.capacity = float(capacity)
        self._level = float(init)
        self._getters: list[tuple[int, float, Event]] = []
        self._putters: list[tuple[int, float, Event]] = []
        self._seq = 0

    @property
    def level(self) -> float:
        """Current quantity held."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires when it fits under ``capacity``."""
        if amount < 0:
            raise SimulationError("cannot put a negative amount")
        event = Event(self.env)
        self._seq += 1
        self._putters.append((self._seq, float(amount), event))
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires when that much is available."""
        if amount < 0:
            raise SimulationError("cannot get a negative amount")
        if amount > self.capacity:
            raise SimulationError("get amount exceeds capacity; would never fire")
        event = Event(self.env)
        self._seq += 1
        self._getters.append((self._seq, float(amount), event))
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Drop waiters abandoned by interrupted processes.
            while self._putters and self._putters[0][2].defused:
                self._putters.pop(0)
            while self._getters and self._getters[0][2].defused:
                self._getters.pop(0)
            if self._putters:
                _seq, amount, event = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.pop(0)
                    self._level += amount
                    event.succeed(amount)
                    progress = True
            if self._getters:
                _seq, amount, event = self._getters[0]
                if self._level >= amount:
                    self._getters.pop(0)
                    self._level -= amount
                    event.succeed(amount)
                    progress = True


class Store:
    """A FIFO queue of arbitrary items with blocking get/put.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of queued items (default: unbounded).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[object] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[object, Event]] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: object) -> Event:
        """Enqueue ``item``; fires once it is accepted."""
        event = Event(self.env)
        self._putters.append((item, event))
        self._dispatch()
        return event

    def get(self) -> Event:
        """Dequeue the oldest item; fires with the item."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            # Accept puts while there is room (skipping abandoned putters:
            # their item must not enter the queue after the producer died).
            while self._putters and len(self.items) < self.capacity:
                item, event = self._putters.pop(0)
                if event.defused:
                    continue
                self.items.append(item)
                event.succeed(item)
                progress = True
            # Serve getters while items remain.  Skip waiters that already
            # triggered or were abandoned by an interrupted process (the
            # kernel pre-defuses an abandoned target) — otherwise an item
            # would be handed to a dead waiter and lost.
            while self._getters and self.items:
                event = self._getters.pop(0)
                if event.triggered or event.defused:
                    continue
                item = self.items.pop(0)
                event.succeed(item)
                progress = True
