"""Coroutine processes for the discrete-event kernel.

A :class:`Process` drives a Python generator: each ``yield`` must produce an
:class:`~repro.sim.events.Event`; the process suspends until that event
fires, then resumes with the event's value (or with the event's exception
raised at the ``yield``).
"""

from __future__ import annotations

import typing as _t

from repro.errors import ProcessKilled, SimulationError
from repro.sim.events import PENDING, Event, Interrupt

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment

__all__ = ["Process"]


class Process(Event):
    """A running simulated process.

    A ``Process`` is itself an :class:`Event` that fires when the generator
    returns (success, with the generator's return value) or raises (failure,
    with the exception) — so processes can wait on each other simply by
    yielding the other process.

    Do not instantiate directly; use
    :meth:`repro.sim.Environment.process`.
    """

    __slots__ = ("generator", "name", "_target", "_resume")

    def __init__(
        self,
        env: "Environment",
        generator: _t.Generator[Event, object, object],
        name: str | None = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}"
            )
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running
        #: or finished).
        self._target: Event | None = None
        # Kick off at the current simulation time.
        self._resume = Event(env)
        self._resume.callbacks.append(self._step)
        self._resume.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Event | None:
        """The event the process is currently suspended on."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Raise :class:`~repro.errors.ProcessKilled` inside the process.

        The interrupt is delivered at the process's current ``yield``
        immediately (at the current simulation time).  Interrupting a
        finished process is an error; interrupting a process that is about
        to resume anyway delivers the interrupt first.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has already terminated")
        if self._target is None and self._resume is not None:
            # Process hasn't taken its first step yet; deliver on first step.
            pass
        event = Interrupt(self.env)
        event._ok = False
        event._value = ProcessKilled(cause)
        event._defused = True
        event.callbacks.append(self._step)
        self.env.schedule(event, priority=0)

    # -- engine -------------------------------------------------------------

    def _step(self, trigger: Event) -> None:
        """Advance the generator by one ``yield``.

        Called as an event callback when the awaited event fires.
        """
        if not self.is_alive:  # interrupted after completion; nothing to do
            return
        # Detach from the event we were waiting on (relevant for interrupts:
        # the original target may fire later and must not resume us again).
        if self._target is not None and self._target is not trigger:
            # We are abandoning the awaited event (interrupt delivery).
            if (
                self._target.callbacks is not None
                and self._step in self._target.callbacks
            ):
                self._target.callbacks.remove(self._step)
            # Nobody may be left to consume the abandoned event's eventual
            # failure; pre-defuse so the kernel doesn't crash the run.
            self._target.defuse()
        self._target = None
        if not trigger._ok:
            # This process consumes the failure (it is thrown into the
            # generator below), so the kernel must not treat it as unhandled.
            trigger.defuse()
        self.env._active_process = self
        try:
            if trigger._ok:
                result = self.generator.send(trigger._value)
            else:
                # Failure propagates into the generator.
                result = self.generator.throw(
                    _t.cast(BaseException, trigger._value)
                )
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:  # generator crashed
            self.env._active_process = None
            self.fail(exc)
            if not self._defused and not self.callbacks:
                # Nobody is watching this process; surface the crash.
                self.env._crashed(self, exc)
            return
        self.env._active_process = None

        if not isinstance(result, Event):
            self.generator.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded non-event {result!r}"
                )
            )
            return
        if result.env is not self.env:
            self.generator.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded event from another "
                    "environment"
                )
            )
            return
        self._target = result
        if result.processed:
            # Already fired: resume at the current time via a zero-delay hop.
            hop = Event(self.env)
            hop._ok = result._ok
            hop._value = result._value
            if not result._ok:
                result.defuse()
                hop._defused = True
            hop.callbacks.append(self._step)
            self.env.schedule(hop)
        else:
            result.callbacks.append(self._step)
            if result.triggered and not result._ok:
                result.defuse()

    def __repr__(self) -> str:  # pragma: no cover
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"
