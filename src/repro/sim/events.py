"""Core event types for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence.  It moves through three states:

``pending`` → ``triggered`` (scheduled on the heap) → ``processed``
(callbacks ran).  An event may *succeed* with a value or *fail* with an
exception; a failed event re-raises inside any process waiting on it unless
the failure was *defused* (consumed by a composite event or an explicit
handler).
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment
    from repro.sim.process import Process

__all__ = ["PENDING", "Event", "Timeout", "Interrupt", "AllOf", "AnyOf"]

#: Sentinel for "event has not been triggered yet".
PENDING = object()


class Event:
    """A one-shot occurrence on the simulation timeline.

    Parameters
    ----------
    env:
        The owning :class:`~repro.sim.environment.Environment`.

    Attributes
    ----------
    callbacks:
        List of callables invoked with the event when it is processed.
        ``None`` once the event has been processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list | None = []
        self._value: object = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (succeeded or failed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> object:
        """The value the event succeeded/failed with."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failure as handled so the kernel does not crash the run."""
        self._defused = True

    @property
    def defused(self) -> bool:
        return self._defused

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire with ``exception``.

        A process waiting on the event will see the exception raised at its
        ``yield``.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome onto this one (callback helper)."""
        if self._value is not PENDING:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition sugar ----------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        """``a & b`` — an event firing when both have fired."""
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        """``a | b`` — an event firing when either has fired."""
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time ``delay``."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=self.delay)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Timeout delay={self.delay}>"


class Interrupt(Event):
    """Internal event used to deliver an interrupt to a process.

    Users call :meth:`repro.sim.Process.interrupt`; they never construct
    this directly.  The interrupt is delivered as a
    :class:`repro.errors.ProcessKilled` raised at the target's current
    ``yield``.
    """

    __slots__ = ()


class _Condition(Event):
    """Base for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: _t.Sequence[Event]):
        super().__init__(env)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("all events must share one environment")
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self.events and self._value is PENDING:
            # An empty condition is trivially satisfied.
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, object]:
        # Only *processed* events count: a Timeout carries its value from
        # construction, so ``triggered`` alone would leak future values.
        return {ev: ev._value for ev in self.events if ev.processed}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* constituent events have fired.

    Succeeds with a ``{event: value}`` dict.  Fails as soon as any
    constituent fails (the failure is defused on the constituent).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event._ok:
            # Consume the constituent's failure even if this condition has
            # already fired (e.g. stragglers killed after an interrupt).
            event.defuse()
        if self._value is not PENDING:
            return
        if not event._ok:
            self.fail(_t.cast(BaseException, event._value))
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when *any* constituent event fires.

    Succeeds with a ``{event: value}`` dict of all events triggered so far.
    Fails if the first event to fire failed.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event._ok:
            event.defuse()
        if self._value is not PENDING:
            return
        if not event._ok:
            self.fail(_t.cast(BaseException, event._value))
            return
        self.succeed(self._collect())
