"""JupyterHub: on-demand per-user GPU notebooks (paper §VII).

"JupyterHub is also an integral part of the CHASE-CI Kubernetes GPU
cluster.  This software allows for a web based environment to
automatically be generated per user on demand.  The Jupyter Notebook
instance that is generated is attached to a GPU on the cluster."

The hub authenticates users through CILogon-style federated identities
(§IV), spawns one single-user notebook pod per user (GPU-attached by
default, CephFS mounted), culls idle servers, and tears everything down
on logout — all on the simulated cluster, so notebooks contend for the
same GPUs the workflow jobs use.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster import ContainerSpec, PodSpec, ResourceRequirements
from repro.cluster.pod import Pod, PodPhase
from repro.errors import ClusterError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.testbed import NautilusTestbed

__all__ = ["CILogonAuthenticator", "NotebookServer", "JupyterHub"]


class CILogonAuthenticator:
    """Federated identity verification (the CILogon model, §IV).

    "over 2500 identity providers are supported, allowing the use of
    home or campus credentials.  In this way, new users log on and
    'claim' their identity, rather than creating a new one."
    """

    #: Identity providers accepted out of the box (a representative set).
    DEFAULT_PROVIDERS = frozenset(
        {"ucsd.edu", "uci.edu", "stanford.edu", "berkeley.edu",
         "caltech.edu", "washington.edu", "hawaii.edu", "orcid.org"}
    )

    def __init__(self, providers: _t.Iterable[str] | None = None):
        self.providers = frozenset(providers) if providers else self.DEFAULT_PROVIDERS
        self.claimed: set[str] = set()

    def authenticate(self, identity: str) -> str:
        """Validate and 'claim' a federated identity; returns it."""
        if "@" not in identity:
            raise PermissionError(f"not a federated identity: {identity!r}")
        domain = identity.rsplit("@", 1)[1].lower()
        if domain not in self.providers:
            raise PermissionError(
                f"identity provider {domain!r} is not federated with CILogon"
            )
        self.claimed.add(identity)
        return identity


@dataclasses.dataclass
class NotebookServer:
    """One user's running single-user server."""

    user: str
    pod: Pod
    started_at: float
    last_activity: float

    @property
    def ready(self) -> bool:
        return self.pod.phase is PodPhase.RUNNING

    @property
    def gpus(self) -> tuple[str, ...]:
        return self.pod.assigned_gpus


class JupyterHub:
    """The hub: authenticate, spawn, track activity, cull idle servers.

    Parameters
    ----------
    testbed:
        The Nautilus deployment notebooks run on.
    namespace:
        Namespace for the single-user pods.
    default_gpu / default_cpu / default_memory:
        Single-user server profile ("attached to a GPU on the cluster").
    idle_timeout:
        Servers idle longer than this are culled by the periodic culler.
    """

    def __init__(
        self,
        testbed: "NautilusTestbed",
        namespace: str = "jupyterhub",
        default_gpu: int = 1,
        default_cpu: float = 2.0,
        default_memory: str = "12G",
        idle_timeout: float = 3600.0,
        cull_interval: float = 300.0,
    ):
        self.testbed = testbed
        self.namespace = namespace
        self.default_gpu = default_gpu
        self.default_cpu = default_cpu
        self.default_memory = default_memory
        self.idle_timeout = idle_timeout
        self.authenticator = CILogonAuthenticator()
        self.servers: dict[str, NotebookServer] = {}
        self.culled: list[str] = []
        if namespace not in testbed.cluster.namespaces:
            testbed.cluster.create_namespace(namespace)
        self._serial = 0
        testbed.env.process(self._culler(cull_interval), name="jhub-culler")

    # -- spawning -------------------------------------------------------------------

    def spawn(self, identity: str, gpu: int | None = None) -> NotebookServer:
        """Authenticate and start (or return) the user's server."""
        user = self.authenticator.authenticate(identity)
        existing = self.servers.get(user)
        if existing is not None and not existing.pod.is_terminal:
            existing.last_activity = self.testbed.env.now
            return existing

        env = self.testbed.env
        hub = self

        def notebook_main(ctx):
            # Runs until stopped or culled; activity is driven externally.
            try:
                while True:
                    yield ctx.env.timeout(60.0)
            finally:
                pass

        spec = PodSpec(
            containers=[
                ContainerSpec(
                    name="notebook",
                    image="chase-ci/jupyterlab-gpu:2.0",
                    main=notebook_main,
                    resources=ResourceRequirements(
                        cpu=self.default_cpu,
                        memory=self.default_memory,
                        gpu=self.default_gpu if gpu is None else gpu,
                    ),
                )
            ],
            volumes={"cephfs": self.testbed.cephfs},
        )
        self._serial += 1
        safe = user.replace("@", "-").replace(".", "-")
        pod = self.testbed.cluster.create_pod(
            f"jupyter-{safe}-{self._serial}", spec, namespace=self.namespace
        )
        server = NotebookServer(
            user=user, pod=pod, started_at=env.now, last_activity=env.now
        )
        self.servers[user] = server
        return server

    def touch(self, identity: str) -> None:
        """Record user activity (resets the idle-cull clock)."""
        server = self.servers.get(identity)
        if server is None:
            raise ClusterError(f"no server for {identity!r}")
        server.last_activity = self.testbed.env.now

    def stop(self, identity: str) -> None:
        """Stop a user's server, releasing its GPU."""
        server = self.servers.pop(identity, None)
        if server is not None and not server.pod.is_terminal:
            self.testbed.cluster.delete_pod(server.pod)

    def active_users(self) -> list[str]:
        return sorted(
            user
            for user, server in self.servers.items()
            if not server.pod.is_terminal
        )

    def gpus_in_use(self) -> int:
        return sum(
            len(s.pod.assigned_gpus)
            for s in self.servers.values()
            if s.pod.phase is PodPhase.RUNNING
        )

    # -- culling -------------------------------------------------------------------

    def _culler(self, interval: float):
        env = self.testbed.env
        while True:
            yield env.timeout(interval)
            now = env.now
            for user, server in list(self.servers.items()):
                if server.pod.is_terminal:
                    del self.servers[user]
                    continue
                if now - server.last_activity >= self.idle_timeout:
                    self.culled.append(user)
                    self.stop(user)
