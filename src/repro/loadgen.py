"""Open-loop multi-tenant load generator for overload drills.

ROADMAP item 1 asks whether the control plane survives *fleet-scale*
load, not whether it schedules one workflow.  This module answers it
executably: ``run_loadtest`` builds a deliberately small Nautilus
testbed, registers tens of simulated tenants with the admission
gateway, and has every tenant submit CONNECT-derived workflows
(download → train → inference fan-out → optional viz) open-loop on the
sim clock while a :class:`~repro.chaos.ChaosMonkey` degrades links and
kills nodes underneath.

The invariant under test: **no workflow is ever lost**.  Every one of
``n_tenants × workflows_per_tenant`` submissions must end in a
structured outcome — ``completed``, ``shed`` (the cluster chose to drop
it: scheduling timeout, open breaker), ``rejected`` (lint/quota/
backpressure, retries exhausted), or ``failed`` (pod killed by faults,
retries exhausted) — and high-priority tenants must keep bounded
scheduling latency while low-priority traffic absorbs the shedding.

Everything is measured through ``repro.obs`` metrics: admission→bind
latency percentiles per priority class, scheduler throughput, queue
depths, preemption and shed counters.  ``python -m repro loadtest``
drives this module; ``repro bench`` runs it twice on one seed and
checksums the outcome summary to pin determinism.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import typing as _t

import numpy as np

from repro.chaos import ChaosMonkey
from repro.cluster.objects import ResourceRequirements
from repro.cluster.pod import ContainerSpec, Pod, PodPhase, PodSpec
from repro.gateway import (
    ADMITTED,
    REJECTED,
    SHED,
    AdmissionGateway,
    GatewayConfig,
    TenantPolicy,
)
from repro.sim.rng import derive_seed
from repro.testbed import build_nautilus_testbed
from repro.workflow.degradation import DegradationPolicy

__all__ = [
    "LoadgenConfig",
    "WorkflowOutcome",
    "LoadTestReport",
    "run_loadtest",
    "loadtest_deployment_view",
]


@dataclasses.dataclass
class LoadgenConfig:
    """Knobs for one overload drill (defaults = the acceptance scenario)."""

    n_tenants: int = 50
    workflows_per_tenant: int = 4
    seed: int = 42
    #: GPU nodes in the testbed — small on purpose, so the drill is a
    #: genuine overload, not a capacity test.
    n_fiona8: int = 4
    #: fraction of tenants granted the ``high`` priority class (the
    #: rest run ``batch``); deterministic: the first ceil(f*n) tenants.
    high_priority_fraction: float = 0.2
    #: mean seconds between one tenant's workflow submissions
    mean_interarrival_s: float = 30.0
    chaos: bool = True
    chaos_mean_interval_s: float = 240.0
    chaos_recovery_after_s: float = 90.0
    #: inference shards per workflow (coarsened under saturation)
    inference_fanout: int = 4
    #: drop the optional viz step / coarsen fan-out while saturated
    degradation: bool = True
    # Gateway knobs.
    pending_timeout_s: float = 900.0
    max_queue_depth: int = 16
    tenant_rate: float = 0.2
    tenant_burst: float = 4.0
    breaker_failure_threshold: int = 4
    breaker_cooldown_s: float = 300.0
    #: resubmission budget for backpressure / open-breaker bounces
    max_submit_retries: int = 8
    #: resubmission budget for pods killed by faults or preemption
    max_pod_retries: int = 4
    #: cluster pending-pod depth that also counts as saturation for the
    #: degradation policy (None = 8 pods per GPU node)
    saturation_pending_threshold: int | None = None
    #: sim-time ceiling: anything unfinished by now counts as hung
    horizon_s: float = 4 * 3600.0

    def expected_workflows(self) -> int:
        return self.n_tenants * self.workflows_per_tenant

    def n_high_priority(self) -> int:
        return math.ceil(self.high_priority_fraction * self.n_tenants)


@dataclasses.dataclass
class WorkflowOutcome:
    """The structured fate of one submitted workflow."""

    tenant: str
    workflow: str
    priority_class: str
    outcome: str  # completed | shed | rejected | failed
    reason: str = ""
    submitted_at: float = 0.0
    finished_at: float = 0.0
    #: viz step dropped / fan-out coarsened for this workflow
    degraded: bool = False

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class LoadTestReport:
    """Everything an overload drill measured."""

    config: LoadgenConfig
    outcomes: list[WorkflowOutcome]
    hung: int
    makespan_s: float
    #: admission→bind pods/sec over the whole drill
    scheduler_throughput: float
    #: per-priority-class scheduling latency percentiles, e.g.
    #: ``{"high": {"p50": ..., "p99": ...}, "batch": {...}}``
    latency_by_class: dict[str, dict[str, float]]
    peak_queue_depth: float
    preemptions: float
    chaos_failures: int
    degradation_summary: dict

    @property
    def counts(self) -> dict[str, int]:
        out = {"completed": 0, "shed": 0, "rejected": 0, "failed": 0}
        for o in self.outcomes:
            out[o.outcome] = out.get(o.outcome, 0) + 1
        return out

    @property
    def lost(self) -> int:
        """Workflows that never reached a structured outcome — the number
        the drill's core invariant requires to be zero.  (``hung`` is the
        diagnostic companion: tenant processes still alive at the
        horizon, i.e. lost workflows that were mid-flight rather than
        never started.)"""
        return max(0, self.config.expected_workflows() - len(self.outcomes))

    def outcome_summary(self) -> list[tuple]:
        """Canonical, order-independent projection of every outcome —
        the determinism fingerprint ``repro bench`` checksums."""
        return sorted(
            (o.tenant, o.workflow, o.priority_class, o.outcome, o.reason)
            for o in self.outcomes
        )

    def checksum(self) -> str:
        payload = json.dumps(self.outcome_summary(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> dict:
        return {
            "config": dataclasses.asdict(self.config),
            "counts": self.counts,
            "lost": self.lost,
            "hung": self.hung,
            "makespan_s": self.makespan_s,
            "scheduler_throughput_pods_per_s": self.scheduler_throughput,
            "latency_by_class": self.latency_by_class,
            "peak_queue_depth": self.peak_queue_depth,
            "preemptions": self.preemptions,
            "chaos_failures": self.chaos_failures,
            "degradation": self.degradation_summary,
            "checksum": self.checksum(),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def _sleeper(duration_s: float):
    """A container entrypoint that works for ``duration_s`` sim-seconds."""

    def main(ctx):
        remaining = float(duration_s)
        # Heartbeat in slices so liveness probes (if any) stay green.
        while remaining > 0:
            slice_s = min(remaining, 30.0)
            yield ctx.env.timeout(slice_s)
            ctx.heartbeat()
            remaining -= slice_s
        return "done"

    return main


def _pod_spec(
    kind: str, duration_s: float, cpu: float, memory: float, gpu: float
) -> PodSpec:
    return PodSpec(
        containers=[
            ContainerSpec(
                name=kind,
                image=f"chase-ci/loadgen-{kind}:1",
                main=_sleeper(duration_s),
                resources=ResourceRequirements(cpu=cpu, memory=memory, gpu=gpu),
            )
        ]
    )


class _PodWaiter:
    """One env-event per watched pod, fired on its terminal phase.

    Cheaper and sharper than polling: the workflow process resumes at
    the exact sim time the pod finishes.
    """

    def __init__(self, cluster):
        self.env = cluster.env
        self._waiting: dict[str, object] = {}
        cluster.phase_hooks.append(self._on_phase)

    def _on_phase(self, pod: Pod, _old: PodPhase, new: PodPhase) -> None:
        if new.is_terminal():
            event = self._waiting.pop(pod.meta.uid, None)
            if event is not None:
                event.succeed(pod)  # type: ignore[attr-defined]

    def wait(self, pod: Pod):
        """An event that fires when ``pod`` terminates (immediately if
        it already has)."""
        event = self.env.event()
        if pod.is_terminal:
            event.succeed(pod)
        else:
            self._waiting[pod.meta.uid] = event
        return event


class _TenantRunner:
    """Drives one tenant's open-loop workflow stream."""

    #: CONNECT-derived stages: (kind, cpu, memory, gpu, mean seconds).
    #: Durations are drawn lognormally around the mean per workflow.
    STAGES = {
        "download": (2.0, 4 * 2**30, 0.0, 60.0),
        "train": (4.0, 8 * 2**30, 1.0, 150.0),
        "infer": (2.0, 4 * 2**30, 1.0, 45.0),
        "viz": (1.0, 2 * 2**30, 0.0, 30.0),
    }

    def __init__(
        self,
        name: str,
        gateway: AdmissionGateway,
        waiter: _PodWaiter,
        config: LoadgenConfig,
        priority_class: str,
        degradation: DegradationPolicy | None,
        outcomes: list[WorkflowOutcome],
        rng: np.random.Generator,
    ):
        self.name = name
        self.gw = gateway
        self.waiter = waiter
        self.cfg = config
        self.priority_class = priority_class
        self.degradation = degradation
        self.outcomes = outcomes
        self.rng = rng
        self.env = gateway.env

    # -- submission helpers ---------------------------------------------------

    def _duration(self, mean_s: float) -> float:
        """Lognormal around the stage mean (sigma 0.35, clipped 5s..10x)."""
        draw = float(self.rng.lognormal(math.log(mean_s), 0.35))
        return min(max(draw, 5.0), mean_s * 10.0)

    def _submit(self, pod_name: str, spec: PodSpec):
        """Submit with bounded retries on backpressure / open breaker.

        Returns the final :class:`AdmissionDecision`; outcome
        ``admitted`` means ``decision.pod`` is live.
        """
        decision = None
        for attempt in range(self.cfg.max_submit_retries + 1):
            decision = yield from self.gw.admit(
                f"{pod_name}-a{attempt}", spec, self.name
            )
            if decision.outcome == ADMITTED:
                return decision
            retryable = (
                decision.outcome == REJECTED
                and decision.reason == "Backpressure"
            ) or (
                decision.outcome == SHED and decision.reason == "CircuitOpen"
            )
            if not retryable or attempt >= self.cfg.max_submit_retries:
                return decision
            backoff = max(decision.retry_after_s, 1.0)
            backoff *= 1.0 + 0.25 * float(self.rng.random())  # decorrelate
            yield self.env.timeout(backoff)
        return decision

    def _run_stage(self, wf: str, stage: str, fanout: int = 1):
        """Run one stage (possibly fanned out); returns (ok, reason).

        Pods killed by faults or preemption are resubmitted up to
        ``max_pod_retries``; a gateway shed is final for the workflow.
        """
        cpu, memory, gpu, mean_s = self.STAGES[stage]
        shards = list(range(fanout))
        for retry in range(self.cfg.max_pod_retries + 1):
            pods: list[tuple[int, Pod]] = []
            for shard in shards:
                spec = _pod_spec(
                    stage, self._duration(mean_s), cpu, memory, gpu
                )
                name = f"{wf}-{stage}-s{shard}-r{retry}"
                decision = yield from self._submit(name, spec)
                if decision.outcome != ADMITTED:
                    return False, f"{decision.outcome}:{decision.reason}"
                pods.append((shard, decision.pod))
            if pods:
                yield self.env.all_of(
                    [self.waiter.wait(pod) for _shard, pod in pods]
                )
            failed = [
                (shard, pod)
                for shard, pod in pods
                if pod.phase is not PodPhase.SUCCEEDED
            ]
            if not failed:
                return True, ""
            for _shard, pod in failed:
                shed = self.gw.shed_reasons.get(pod.meta.uid)
                if shed is not None:
                    return False, f"shed:{shed}"
            if retry >= self.cfg.max_pod_retries:
                # Repeated preemption is the cluster explicitly choosing
                # higher-priority work over this pod — report it as shed,
                # not as an unexplained failure.
                if any(
                    pod.termination_reason == "Preempted"
                    for _shard, pod in failed
                ):
                    return False, "shed:Preempted"
                return False, "failed:PodFailed"
            # Chaos/preemption casualties: back off briefly and resubmit
            # only the failed shards.
            shards = [shard for shard, _pod in failed]
            yield self.env.timeout(5.0 + 10.0 * float(self.rng.random()))
        return False, "failed:PodFailed"

    # -- the tenant process ---------------------------------------------------

    def run(self):
        for index in range(self.cfg.workflows_per_tenant):
            yield self.env.timeout(
                float(self.rng.exponential(self.cfg.mean_interarrival_s))
            )
            yield from self._run_workflow(f"{self.name}-wf{index}")

    def _run_workflow(self, wf: str):
        started = self.env.now
        degraded = False
        outcome = WorkflowOutcome(
            tenant=self.name,
            workflow=wf,
            priority_class=self.priority_class,
            outcome="completed",
            submitted_at=started,
        )
        for stage in ("download", "train", "infer", "viz"):
            if stage == "viz" and self.degradation is not None:
                if self.degradation.saturated():
                    self.degradation.note_skip(f"{wf}-viz")
                    degraded = True
                    continue  # optional step dropped under saturation
            fanout = 1
            if stage == "infer":
                fanout = self.cfg.inference_fanout
                if self.degradation is not None:
                    granted = self.degradation.effective_fanout(
                        fanout, f"{wf}-infer"
                    )
                    degraded = degraded or granted < fanout
                    fanout = granted
            ok, reason = yield from self._run_stage(wf, stage, fanout)
            if not ok:
                kind, _, detail = reason.partition(":")
                outcome.outcome = kind if kind in ("shed", "rejected", "failed") else "failed"
                outcome.reason = detail or reason
                break
        outcome.finished_at = self.env.now
        outcome.degraded = degraded
        self.outcomes.append(outcome)


def loadtest_deployment_view(
    config: "LoadgenConfig | None" = None, cluster=None
):
    """The overload drill's config as a lint :class:`DeploymentView`.

    This is the cross-layer join ``repro lint --deep`` inspects with the
    ``deploy`` pack: the gateway's tenant policies, the client retry
    budgets of :class:`_TenantRunner` (which *honors*
    ``decision.retry_after_s`` — the property DEPLOY001 checks), and the
    CONNECT-derived workflow shape with its inference fan-out.  CI
    asserts the default config passes the pack clean, so config drift
    that opens a retry-storm loop fails the build before any drill runs.
    """
    from repro.analysis.model import (
        ClientRetryView,
        DeploymentView,
        GatewayView,
        StepView,
        TenantView,
        WorkflowView,
        cluster_view,
    )

    cfg = config or LoadgenConfig()
    n_high = cfg.n_high_priority()
    tenants = []
    if n_high:
        tenants.append(
            TenantView(
                name="high-tenants",
                rate=cfg.tenant_rate,
                burst=cfg.tenant_burst,
                weight=4.0,
                priority_class="high",
                count=n_high,
            )
        )
    if cfg.n_tenants - n_high:
        tenants.append(
            TenantView(
                name="batch-tenants",
                rate=cfg.tenant_rate,
                burst=cfg.tenant_burst,
                weight=1.0,
                priority_class="batch",
                count=cfg.n_tenants - n_high,
            )
        )
    # The drill's workflow DAG: download -> train -> infer×fanout -> viz.
    steps = [
        StepView(name="download", network_bound=True, max_retries=cfg.max_pod_retries,
                 timeout_s=cfg.pending_timeout_s),
        StepView(name="train", depends_on=("download",), gpus=1,
                 max_retries=cfg.max_pod_retries,
                 timeout_s=cfg.pending_timeout_s),
    ]
    infer_names = tuple(
        f"infer-s{shard}" for shard in range(cfg.inference_fanout)
    )
    for name in infer_names:
        steps.append(
            StepView(name=name, depends_on=("train",), gpus=1,
                     max_retries=cfg.max_pod_retries,
                     timeout_s=cfg.pending_timeout_s)
        )
    steps.append(
        StepView(name="viz", depends_on=infer_names,
                 max_retries=cfg.max_pod_retries,
                 timeout_s=cfg.pending_timeout_s)
    )
    return DeploymentView(
        cluster=cluster_view(cluster) if cluster is not None else None,
        gateway=GatewayView(
            max_queue_depth=cfg.max_queue_depth,
            pending_timeout_s=cfg.pending_timeout_s,
            breaker_failure_threshold=cfg.breaker_failure_threshold,
            breaker_cooldown_s=cfg.breaker_cooldown_s,
            tenants=tuple(tenants),
        ),
        workflows=(
            WorkflowView(
                name="loadgen-connect", steps=tuple(steps),
                source="loadgen",
            ),
        ),
        client=ClientRetryView(
            max_submit_retries=cfg.max_submit_retries,
            max_pod_retries=cfg.max_pod_retries,
            # _TenantRunner._submit sleeps >= decision.retry_after_s
            # (floored at 1s, jittered) before every resubmission.
            honors_retry_after=True,
            backoff_base_s=1.0,
        ),
        transfer_retry_attempts=1,
        source="loadgen",
    )


def _percentiles(values: _t.Sequence[float]) -> dict[str, float]:
    if not values:
        return {"p50": 0.0, "p99": 0.0, "count": 0}
    arr = np.asarray(values, dtype=float)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "count": int(arr.size),
    }


def _latency_by_class(registry) -> dict[str, dict[str, float]]:
    out: dict[str, list[float]] = {}
    for series in registry.all_series("scheduler_bind_latency_seconds"):
        label = dict(series.labels).get("class", "")
        out.setdefault(label, []).extend(series.values)
    return {cls: _percentiles(vals) for cls, vals in sorted(out.items())}


def run_loadtest(config: LoadgenConfig | None = None) -> LoadTestReport:
    """Run one overload drill and return its report.

    Deterministic for a fixed config: all randomness derives from
    ``config.seed`` via per-tenant substreams.
    """
    cfg = config or LoadgenConfig()
    testbed = build_nautilus_testbed(
        seed=cfg.seed,
        n_fiona8=cfg.n_fiona8,
    )
    env = testbed.env
    cluster = testbed.cluster
    gateway = AdmissionGateway(
        cluster,
        GatewayConfig(
            max_queue_depth=cfg.max_queue_depth,
            pending_timeout_s=cfg.pending_timeout_s,
            breaker_failure_threshold=cfg.breaker_failure_threshold,
            breaker_cooldown_s=cfg.breaker_cooldown_s,
        ),
    )
    pending_threshold = (
        cfg.saturation_pending_threshold
        if cfg.saturation_pending_threshold is not None
        else 8 * cfg.n_fiona8
    )

    def _saturated() -> bool:
        # Saturation = the gateway's queues are filling OR the scheduler
        # itself has a deep unschedulable backlog (preemption churn).
        return (
            gateway.saturated()
            or len(cluster.pending_pods()) >= pending_threshold
        )

    degradation = DegradationPolicy(_saturated) if cfg.degradation else None
    waiter = _PodWaiter(cluster)

    outcomes: list[WorkflowOutcome] = []
    n_high = cfg.n_high_priority()
    procs = []
    for i in range(cfg.n_tenants):
        tenant = f"tenant-{i:03d}"
        high = i < n_high
        gateway.register_tenant(
            tenant,
            TenantPolicy(
                rate=cfg.tenant_rate,
                burst=cfg.tenant_burst,
                weight=4.0 if high else 1.0,
                priority_class="high" if high else "batch",
            ),
        )
        runner = _TenantRunner(
            tenant,
            gateway,
            waiter,
            cfg,
            priority_class="high" if high else "batch",
            degradation=degradation,
            outcomes=outcomes,
            rng=np.random.default_rng(derive_seed(cfg.seed, f"loadgen:{tenant}")),
        )
        procs.append(env.process(runner.run(), name=f"loadgen:{tenant}"))

    monkey = None
    if cfg.chaos:
        monkey = ChaosMonkey(
            testbed,
            mean_interval=cfg.chaos_mean_interval_s,
            recovery_after=cfg.chaos_recovery_after_s,
            include_links=True,
            seed=cfg.seed,
        )

    start = env.now
    env.run(until=env.any_of([env.all_of(procs), env.timeout(cfg.horizon_s)]))
    if monkey is not None:
        monkey.stop()
    hung = sum(1 for p in procs if p.is_alive)
    makespan = env.now - start

    registry = testbed.registry
    binds = registry.counter_sum("scheduler_binds_total")
    depth_peak = 0.0
    for series in registry.all_series("gateway_queue_depth"):
        if series.values:
            depth_peak = max(depth_peak, max(series.values))

    return LoadTestReport(
        config=cfg,
        outcomes=outcomes,
        hung=hung,
        makespan_s=makespan,
        scheduler_throughput=binds / makespan if makespan > 0 else 0.0,
        latency_by_class=_latency_by_class(registry),
        peak_queue_depth=depth_peak,
        preemptions=registry.counter_sum("scheduler_preemptions_total"),
        chaos_failures=(monkey.failures_injected if monkey is not None else 0),
        degradation_summary=(
            degradation.summary() if degradation is not None else {}
        ),
    )
