"""Monitoring: Prometheus-like metrics and Grafana-like dashboards.

.. deprecated::
    Importing from ``repro.monitoring`` is deprecated — the unified
    observability facade is :mod:`repro.obs` (``repro.obs.metrics`` for
    the registry/sampler/promql/dashboards/alerts, ``repro.obs.tracing``
    for spans, ``repro.obs.reports`` for workflow reports).  The old
    paths keep working but emit :class:`DeprecationWarning`.

Paper §II-A: "Nautilus needs software to monitor the health, availability,
and performance of resources.  Grafana is an open source platform for
time series analytics.  It graphs cluster health and performance data
using a functional query language provided by Prometheus."  Contribution
5 — the step-by-step measurement approach — depends on exactly this loop:
every workflow step is measured, and "experimental results and
performance measurements were presented using the CHASE-CI dashboard
visualizations in Grafana" (§VIII).

The implementations live in the submodules (``repro.monitoring.metrics``,
``.sampler``, ``.promql``, ``.grafana``, ``.alerts``), which internal
code imports directly and warning-free.
"""

from __future__ import annotations

import importlib
import warnings

__all__ = [
    "MetricRegistry",
    "TimeSeries",
    "Sampler",
    "promql",
    "Dashboard",
    "Panel",
    "Alert",
    "AlertManager",
    "AlertRule",
    "AlertState",
]

#: package-level name -> (implementation module, attribute)
_EXPORTS: dict[str, tuple[str, str]] = {
    "MetricRegistry": ("repro.monitoring.metrics", "MetricRegistry"),
    "TimeSeries": ("repro.monitoring.metrics", "TimeSeries"),
    "METRIC_ALIASES": ("repro.monitoring.metrics", "METRIC_ALIASES"),
    "canonical_metric_name": (
        "repro.monitoring.metrics",
        "canonical_metric_name",
    ),
    "Sampler": ("repro.monitoring.sampler", "Sampler"),
    "Dashboard": ("repro.monitoring.grafana", "Dashboard"),
    "Panel": ("repro.monitoring.grafana", "Panel"),
    "Alert": ("repro.monitoring.alerts", "Alert"),
    "AlertManager": ("repro.monitoring.alerts", "AlertManager"),
    "AlertRule": ("repro.monitoring.alerts", "AlertRule"),
    "AlertState": ("repro.monitoring.alerts", "AlertState"),
}


def __getattr__(name: str):  # PEP 562 deprecation shim
    if name == "promql":
        warnings.warn(
            "importing promql from repro.monitoring is deprecated; "
            "use repro.obs.metrics (or repro.monitoring.promql directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        return importlib.import_module("repro.monitoring.promql")
    target = _EXPORTS.get(name)
    if target is not None:
        warnings.warn(
            f"importing {name} from repro.monitoring is deprecated; "
            "use repro.obs.metrics",
            DeprecationWarning,
            stacklevel=2,
        )
        module = importlib.import_module(target[0])
        return getattr(module, target[1])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS) | {"promql"})
