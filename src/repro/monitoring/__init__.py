"""Monitoring: Prometheus-like metrics and Grafana-like dashboards.

Paper §II-A: "Nautilus needs software to monitor the health, availability,
and performance of resources.  Grafana is an open source platform for
time series analytics.  It graphs cluster health and performance data
using a functional query language provided by Prometheus."  Contribution
5 — the step-by-step measurement approach — depends on exactly this loop:
every workflow step is measured, and "experimental results and
performance measurements were presented using the CHASE-CI dashboard
visualizations in Grafana" (§VIII).

- :class:`MetricRegistry` — named, labelled counters and gauges backed by
  time series on the virtual clock.
- :class:`Sampler` — a kernel process that scrapes probe callables at a
  fixed interval (the Prometheus scrape loop).
- :mod:`repro.monitoring.promql` — the query-language subset the
  dashboards need: ``rate``, ``avg/max/sum_over_time``, label aggregation.
- :class:`Dashboard` — ASCII Grafana: time-series panels and stat panels
  rendering the Figure-3/4/5/6 views.
"""

from repro.monitoring.metrics import MetricRegistry, TimeSeries
from repro.monitoring.sampler import Sampler
from repro.monitoring import promql
from repro.monitoring.grafana import Dashboard, Panel
from repro.monitoring.alerts import Alert, AlertManager, AlertRule, AlertState

__all__ = [
    "MetricRegistry",
    "TimeSeries",
    "Sampler",
    "promql",
    "Dashboard",
    "Panel",
    "Alert",
    "AlertManager",
    "AlertRule",
    "AlertState",
]
