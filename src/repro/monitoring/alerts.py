"""Prometheus-style alerting rules.

§II-A's monitoring stack exists so admins see "the health, availability,
and performance of resources"; in Prometheus that is the alert-rule
engine: an expression over recent samples, a ``for`` duration the
condition must hold, and pending → firing → resolved state transitions.

Rules here are predicates over a :class:`MetricRegistry` series (or an
aggregate), evaluated by a kernel process at a fixed interval.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from repro.monitoring.metrics import MetricRegistry
from repro.sim import Environment

__all__ = ["AlertState", "AlertRule", "Alert", "AlertManager"]


class AlertState(enum.Enum):
    INACTIVE = "inactive"
    PENDING = "pending"  # condition true, `for` duration not yet met
    FIRING = "firing"


@dataclasses.dataclass
class AlertRule:
    """One rule: a condition with a hold duration and severity.

    Parameters
    ----------
    name:
        Rule name (``CephDegraded``, ``NodeDown``...).
    condition:
        ``condition(registry) -> bool`` — True when the alert condition
        holds *right now*.
    for_seconds:
        The condition must hold continuously this long before firing
        (debouncing, like Prometheus's ``for:``).
    severity:
        Free-form label (``warning`` / ``critical``).
    """

    name: str
    condition: _t.Callable[[MetricRegistry], bool]
    for_seconds: float = 0.0
    severity: str = "warning"
    annotation: str = ""


@dataclasses.dataclass
class Alert:
    """A fired alert instance (kept in the manager's history)."""

    rule: str
    severity: str
    fired_at: float
    resolved_at: float | None = None
    annotation: str = ""

    @property
    def active(self) -> bool:
        return self.resolved_at is None


class AlertManager:
    """Evaluates rules on an interval; tracks pending/firing/resolved."""

    def __init__(
        self,
        env: Environment,
        registry: MetricRegistry,
        interval: float = 30.0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.registry = registry
        self.interval = interval
        self.rules: list[AlertRule] = []
        self.states: dict[str, AlertState] = {}
        self._pending_since: dict[str, float] = {}
        self._active: dict[str, Alert] = {}
        self.history: list[Alert] = []
        #: callbacks invoked with each newly fired Alert
        self.notifiers: list[_t.Callable[[Alert], None]] = []
        env.process(self._loop(), name="alertmanager")

    def add_rule(self, rule: AlertRule) -> None:
        if any(r.name == rule.name for r in self.rules):
            raise ValueError(f"duplicate rule {rule.name!r}")
        self.rules.append(rule)
        self.states[rule.name] = AlertState.INACTIVE

    def state(self, rule_name: str) -> AlertState:
        return self.states[rule_name]

    def firing(self) -> list[Alert]:
        """Currently active alerts, sorted by rule name."""
        return [self._active[k] for k in sorted(self._active)]

    def evaluate_once(self) -> None:
        """One evaluation pass (also called by the periodic loop)."""
        now = self.env.now
        for rule in self.rules:
            try:
                holds = bool(rule.condition(self.registry))
            except Exception:
                holds = False  # a broken expression must not crash the loop
            state = self.states[rule.name]
            if holds:
                if state is AlertState.INACTIVE:
                    self._pending_since[rule.name] = now
                    state = AlertState.PENDING
                if (
                    state is AlertState.PENDING
                    and now - self._pending_since[rule.name] >= rule.for_seconds
                ):
                    state = AlertState.FIRING
                    alert = Alert(
                        rule=rule.name,
                        severity=rule.severity,
                        fired_at=now,
                        annotation=rule.annotation,
                    )
                    self._active[rule.name] = alert
                    self.history.append(alert)
                    for notify in self.notifiers:
                        notify(alert)
            else:
                if state is AlertState.FIRING:
                    self._active.pop(rule.name).resolved_at = now
                state = AlertState.INACTIVE
                self._pending_since.pop(rule.name, None)
            self.states[rule.name] = state

    def _loop(self):
        while True:
            self.evaluate_once()
            yield self.env.timeout(self.interval)


# -- canned conditions for the Nautilus testbed ---------------------------------


def gauge_above(metric: str, threshold: float) -> _t.Callable[[MetricRegistry], bool]:
    """Condition: any labelled series' latest sample exceeds threshold."""

    def cond(registry: MetricRegistry) -> bool:
        return any(
            (ts.latest() or 0.0) > threshold
            for ts in registry.all_series(metric)
        )

    return cond


def aggregate_above(metric: str, threshold: float) -> _t.Callable[[MetricRegistry], bool]:
    """Condition: the sum of latest samples across series exceeds threshold."""

    def cond(registry: MetricRegistry) -> bool:
        total = sum(
            ts.latest() or 0.0 for ts in registry.all_series(metric)
        )
        return total > threshold

    return cond
