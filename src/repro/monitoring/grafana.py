"""ASCII Grafana: render time-series panels and stat rows in a terminal.

"Grafanas web-based dashboard is accessible from a browser, providing a
quick debugging solution for cluster users and administrators" (§II-A).
Ours renders to text so benchmark output can carry the same panels the
paper screenshots (Figures 3–6): one sparkline row per labelled series,
min/mean/max in the legend, plus stat panels for headline numbers.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.monitoring.metrics import MetricRegistry
import repro.monitoring.promql as promql

__all__ = ["Panel", "Dashboard", "sparkline"]

_TICKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: _t.Sequence[float], width: int = 60) -> str:
    """Render values as a unicode sparkline, resampled to ``width``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return " " * width
    if arr.size > width:
        # Bucket-max resampling keeps peaks visible.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array(
            [arr[a:b].max() if b > a else arr[min(a, arr.size - 1)]
             for a, b in zip(edges, edges[1:])]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi <= lo:
        return _TICKS[1] * len(arr)
    scaled = (arr - lo) / (hi - lo) * (len(_TICKS) - 2)
    return "".join(_TICKS[int(round(s)) + 1] for s in scaled)


@dataclasses.dataclass
class Panel:
    """One dashboard panel: a metric name + display options."""

    title: str
    metric: str
    unit: str = ""
    scale: float = 1.0  # display = value * scale (e.g. bytes -> GB)
    kind: str = "timeseries"  # or "stat"

    def render(self, registry: MetricRegistry, width: int = 60) -> str:
        series = registry.all_series(self.metric)
        lines = [f"── {self.title} " + "─" * max(0, width - len(self.title) - 4)]
        if not series:
            lines.append("   (no data)")
            return "\n".join(lines)
        if self.kind == "stat":
            total = sum(ts.latest() or 0.0 for ts in series) * self.scale
            lines.append(f"   {total:,.2f} {self.unit}")
            return "\n".join(lines)
        for ts in series:
            label = ", ".join(f"{k}={v}" for k, v in ts.labels) or "(all)"
            _, values = ts.as_arrays()
            values = values * self.scale
            spark = sparkline(values, width=width)
            stats = (
                f"min {values.min():,.2f} / avg {values.mean():,.2f} / "
                f"max {values.max():,.2f} {self.unit}"
                if len(values)
                else "empty"
            )
            lines.append(f"   {label:<28} {spark}")
            lines.append(f"   {'':<28} {stats}")
        return "\n".join(lines)


class Dashboard:
    """A titled stack of panels over one registry."""

    def __init__(self, title: str, registry: MetricRegistry):
        self.title = title
        self.registry = registry
        self.panels: list[Panel] = []

    def add_panel(self, panel: Panel) -> "Dashboard":
        self.panels.append(panel)
        return self

    def render(self, width: int = 60) -> str:
        header = f"═══ {self.title} " + "═" * max(0, width - len(self.title) - 5)
        parts = [header]
        for panel in self.panels:
            parts.append(panel.render(self.registry, width=width))
        return "\n".join(parts)

    # -- convenience queries for tests/benches -------------------------------------

    def peak(self, metric: str) -> float:
        """Max across all labelled series of a metric."""
        series = self.registry.all_series(metric)
        if not series:
            return 0.0
        return max(promql.max_over_time(ts) for ts in series)

    def aggregate_peak(self, metric: str) -> float:
        """Max of the pointwise SUM across series (cluster-wide peak)."""
        _, total = promql.sum_series(self.registry.all_series(metric))
        return float(total.max()) if len(total) else 0.0
