"""The scrape loop: periodic sampling of probe callables."""

from __future__ import annotations

import typing as _t

from repro.monitoring.metrics import Labels, MetricRegistry
from repro.sim import Environment

__all__ = ["Sampler"]


class Sampler:
    """Scrapes registered probes every ``interval`` seconds of sim time.

    A probe is any zero-argument callable returning a float — e.g.
    ``lambda: node.allocated.cpu`` — so the sampler observes live cluster
    state exactly the way Prometheus scrapes an exporter.

    Probes that raise are skipped for that scrape (a target being briefly
    down must not kill monitoring).
    """

    def __init__(
        self,
        env: Environment,
        registry: MetricRegistry,
        interval: float = 15.0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.registry = registry
        self.interval = interval
        self._probes: list[tuple[str, tuple, _t.Callable[[], float]]] = []
        self._proc = env.process(self._loop(), name="metrics-sampler")
        self.scrapes = 0

    def add_probe(
        self,
        name: str,
        fn: _t.Callable[[], float],
        labels: Labels | None = None,
    ) -> None:
        """Register a gauge probe."""
        self._probes.append((name, tuple(sorted((labels or {}).items())), fn))

    def _loop(self):
        while True:
            for name, label_items, fn in self._probes:
                try:
                    value = float(fn())
                except Exception:
                    continue  # scrape failure: skip this sample
                self.registry.set_gauge(name, value, dict(label_items))
            self.scrapes += 1
            yield self.env.timeout(self.interval)
