"""A PromQL-subset evaluator over recorded time series.

The dashboards only need a handful of functions; each takes a
:class:`~repro.monitoring.metrics.TimeSeries` (or a list of them) plus a
time window and returns scalars/arrays:

- :func:`rate` — per-second increase of a counter over a window.
- :func:`avg_over_time`, :func:`max_over_time`, :func:`min_over_time`
- :func:`sum_series` — pointwise sum of several gauges on a common grid.
- :func:`aggregate_by` — group series by one label, summing the rest.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.monitoring.metrics import TimeSeries

__all__ = [
    "rate",
    "avg_over_time",
    "max_over_time",
    "min_over_time",
    "sum_series",
    "aggregate_by",
]


def _window(ts: TimeSeries, start: float | None, end: float | None):
    lo = start if start is not None else (ts.times[0] if ts.times else 0.0)
    hi = end if end is not None else (ts.times[-1] if ts.times else 0.0)
    return ts.window(lo, hi)


def rate(
    ts: TimeSeries, start: float | None = None, end: float | None = None
) -> float:
    """Per-second increase of a counter across the window.

    Mirrors PromQL's ``rate()``: (last - first) / elapsed.  Counters in
    this library never reset mid-run, so no reset correction is needed.
    """
    times, values = _window(ts, start, end)
    if len(times) < 2:
        return 0.0
    elapsed = times[-1] - times[0]
    if elapsed <= 0:
        return 0.0
    return float((values[-1] - values[0]) / elapsed)


def avg_over_time(
    ts: TimeSeries, start: float | None = None, end: float | None = None
) -> float:
    """Time-weighted mean of a gauge over the window (trapezoidal)."""
    times, values = _window(ts, start, end)
    if len(times) == 0:
        return 0.0
    if len(times) == 1 or times[-1] == times[0]:
        return float(values[-1])
    area = np.trapezoid(values, x=times)
    return float(area / (times[-1] - times[0]))


def max_over_time(
    ts: TimeSeries, start: float | None = None, end: float | None = None
) -> float:
    times, values = _window(ts, start, end)
    return float(values.max()) if len(values) else 0.0


def min_over_time(
    ts: TimeSeries, start: float | None = None, end: float | None = None
) -> float:
    times, values = _window(ts, start, end)
    return float(values.min()) if len(values) else 0.0


def sum_series(
    series: _t.Sequence[TimeSeries],
    grid: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pointwise sum of gauges, step-interpolated onto a common grid.

    Returns ``(grid_times, summed_values)``.  When ``grid`` is ``None``
    the union of all sample times is used.
    """
    nonempty = [ts for ts in series if len(ts)]
    if not nonempty:
        return np.array([]), np.array([])
    if grid is None:
        grid = np.unique(np.concatenate([np.asarray(ts.times) for ts in nonempty]))
    total = np.zeros_like(grid, dtype=np.float64)
    for ts in nonempty:
        times, values = ts.as_arrays()
        # Step interpolation: value holds until the next sample; zero
        # before the first sample.
        idx = np.searchsorted(times, grid, side="right") - 1
        sampled = np.where(idx >= 0, values[np.clip(idx, 0, None)], 0.0)
        total += sampled
    return grid, total


def aggregate_by(
    series: _t.Sequence[TimeSeries], label: str
) -> dict[str, list[TimeSeries]]:
    """Group series by the value of one label (PromQL ``sum by(label)``
    shape; the caller applies :func:`sum_series` per group)."""
    groups: dict[str, list[TimeSeries]] = {}
    for ts in series:
        value = dict(ts.labels).get(label, "")
        groups.setdefault(value, []).append(ts)
    return groups
