"""Metric registry: labelled counters/gauges as time series."""

from __future__ import annotations

import bisect
import typing as _t

import numpy as np

from repro.sim import Environment

__all__ = [
    "TimeSeries",
    "MetricRegistry",
    "METRIC_ALIASES",
    "canonical_metric_name",
]

Labels = _t.Mapping[str, str]

#: Legacy metric name -> canonical Prometheus-convention name
#: (snake_case with unit suffixes).  The registry normalizes **every**
#: name through this map — writers and readers alike — so dashboards,
#: PromQL queries, and tests using either spelling resolve to the same
#: series.  New code should use the canonical (right-hand) names.
METRIC_ALIASES: dict[str, str] = {
    "node_cpu_allocated": "node_cpu_allocated_cores",
    "node_memory_allocated": "node_memory_allocated_bytes",
    "node_gpu_in_use": "node_gpus_in_use",
    "ceph_bytes_used": "ceph_used_bytes",
    "thredds_egress_Bps": "thredds_egress_bytes_per_second",
    "ceph_disk_write_Bps": "ceph_disk_write_bytes_per_second",
    "step1_worker_cpu": "step1_worker_cpu_cores",
    "step1_bytes_downloaded": "step1_downloaded_bytes_total",
    "step1_files_downloaded": "step1_downloaded_files_total",
    "step3_voxels_done": "step3_voxels_done_total",
}


def canonical_metric_name(name: str) -> str:
    """Resolve a (possibly legacy) metric name to its canonical form."""
    return METRIC_ALIASES.get(name, name)


def _label_key(labels: Labels | None) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((labels or {}).items()))


class TimeSeries:
    """An append-only (time, value) series (times non-decreasing)."""

    __slots__ = ("name", "labels", "times", "values")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.times: list[float] = []
        self.values: list[float] = []

    def append(self, t: float, value: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"series {self.name}{dict(self.labels)}: time went backwards"
            )
        self.times.append(t)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with start <= t <= end as numpy arrays."""
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_right(self.times, end)
        return (
            np.asarray(self.times[lo:hi]),
            np.asarray(self.values[lo:hi]),
        )

    def latest(self) -> float | None:
        return self.values[-1] if self.values else None

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<TimeSeries {self.name}{dict(self.labels)} n={len(self)}>"


class MetricRegistry:
    """All metrics of a testbed run.

    Gauges are ``set`` (sampled values: CPU in use, memory, GPU count);
    counters are ``inc``-only (bytes downloaded, files processed); both
    are recorded against the virtual clock.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._series: dict[tuple[str, tuple], TimeSeries] = {}
        self._counter_totals: dict[tuple[str, tuple], float] = {}

    # -- writing -----------------------------------------------------------------

    def series(self, name: str, labels: Labels | None = None) -> TimeSeries:
        """The series for (name, labels), created on first use.

        Legacy names resolve through :data:`METRIC_ALIASES`, so old and
        new spellings address one series.
        """
        key = (canonical_metric_name(name), _label_key(labels))
        ts = self._series.get(key)
        if ts is None:
            ts = TimeSeries(key[0], key[1])
            self._series[key] = ts
        return ts

    def set_gauge(self, name: str, value: float, labels: Labels | None = None) -> None:
        """Record an instantaneous value."""
        self.series(name, labels).append(self.env.now, value)

    def set_gauge_at(
        self, name: str, value: float, t: float, labels: Labels | None = None
    ) -> None:
        """Record a value at an explicit (non-decreasing) timestamp —
        used by exporters replaying events that already happened."""
        self.series(name, labels).append(t, value)

    def inc_counter(
        self, name: str, amount: float = 1.0, labels: Labels | None = None
    ) -> None:
        """Increase a monotonic counter and record its new total."""
        self.inc_counter_at(name, self.env.now, amount, labels)

    def inc_counter_at(
        self,
        name: str,
        t: float,
        amount: float = 1.0,
        labels: Labels | None = None,
    ) -> None:
        """Counter increment stamped at an explicit timestamp."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = (canonical_metric_name(name), _label_key(labels))
        total = self._counter_totals.get(key, 0.0) + amount
        self._counter_totals[key] = total
        self.series(name, labels).append(t, total)

    # -- reading -----------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted({name for name, _ in self._series})

    def all_series(self, name: str) -> list[TimeSeries]:
        """Every labelled series under a metric name (aliases resolve)."""
        name = canonical_metric_name(name)
        return [ts for (n, _), ts in sorted(self._series.items()) if n == name]

    def get(self, name: str, labels: Labels | None = None) -> TimeSeries | None:
        return self._series.get((canonical_metric_name(name), _label_key(labels)))

    def counter_total(self, name: str, labels: Labels | None = None) -> float:
        return self._counter_totals.get(
            (canonical_metric_name(name), _label_key(labels)), 0.0
        )

    def counter_sum(self, name: str) -> float:
        """A counter's total summed across every label set."""
        name = canonical_metric_name(name)
        return sum(
            total
            for (n, _), total in self._counter_totals.items()
            if n == name
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MetricRegistry {len(self._series)} series>"
