"""The Pacific Research Platform network substrate.

The paper's infrastructure claims rest on the PRP: a "high-speed cloud
connected on 10G, 40G and 100G networks using the ESnet Science DMZ model"
(§II), with Data Transfer Nodes (FIONAs) at partner sites and performance
"optimized by minimizing data transfer on Local Area Networks, favoring
high-bandwidth Wide Area Networks".

This package models that network as a fluid-flow simulation:

- :class:`Topology` — sites and links (10/40/100 GbE) as a graph; hosts
  attach to sites through NIC-limited access links.
- :class:`FlowSimulator` — concurrent transfers share links by **max-min
  fairness** (progressive filling); rates re-converge instantly whenever a
  flow starts or finishes, which is the standard fluid approximation for
  long-lived TCP flows on high-bandwidth paths.
- :func:`build_prp_topology` — the PRP backbone with 20+ partner
  institutions, DTN placement, and CENIC-like 100G core links.

Throughput ceilings, contention between the paper's 10 parallel download
workers, and the Figure-4 network-usage shapes all emerge from this model.
"""

from repro.netsim.topology import Link, Site, Topology, build_prp_topology
from repro.netsim.flows import CapacityResource, Flow, FlowSimulator
from repro.netsim.faults import NetworkFaultInjector

__all__ = [
    "Site",
    "Link",
    "Topology",
    "build_prp_topology",
    "CapacityResource",
    "Flow",
    "FlowSimulator",
    "NetworkFaultInjector",
]
