"""Max-min fair fluid-flow engine.

Concurrent bulk transfers on the PRP share link capacity.  The standard
fluid approximation for long-lived TCP on high-bandwidth-delay paths is
**max-min fairness via progressive filling**: every active flow's rate
grows uniformly until some resource saturates; flows crossing a saturated
resource freeze; the rest keep growing.  Rates re-converge instantly when
a flow starts or finishes.

The engine is generic over :class:`CapacityResource`, so the same
machinery rate-limits WAN links, host NICs, *and* storage-device
bandwidth (an OSD's SSD is just another capacity on the flow's path) —
which is how the Figure-4 IOPS and throughput ceilings arise from one
mechanism.
"""

from __future__ import annotations

import itertools
import typing as _t

import numpy as np

from repro.errors import NetworkError
from repro.sim import Environment, Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.tracing.span import Span, Tracer

__all__ = ["CapacityResource", "Flow", "FlowSimulator", "max_min_rates"]

_flow_ids = itertools.count(1)

#: Residual-byte tolerance when deciding a flow has completed.
_EPS_BYTES = 1e-6


class CapacityResource:
    """A shared capacity (bytes/s): a link, a NIC, or a disk.

    ``allocated_rate`` is refreshed by the flow engine on every
    re-convergence, so monitoring can sample instantaneous utilization.

    A ``blocked`` resource (a failed link) pins every flow crossing it to
    rate zero without tearing the flow down — the fluid analog of TCP
    stalling on a dead path and resuming when it heals.
    """

    __slots__ = ("name", "capacity", "allocated_rate", "blocked")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise NetworkError(f"resource {name!r} needs positive capacity")
        self.name = name
        self.capacity = float(capacity)
        self.allocated_rate = 0.0
        self.blocked = False

    def set_capacity(self, capacity: float) -> None:
        """Change capacity in place (fault injection: degraded links).

        Callers must poke the flow engine (``FlowSimulator.recompute``)
        so in-flight rates re-converge at the current simulation time.
        """
        if capacity <= 0:
            raise NetworkError(f"resource {self.name!r} needs positive capacity")
        self.capacity = float(capacity)

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently allocated (0..1)."""
        return min(1.0, self.allocated_rate / self.capacity)

    def __repr__(self) -> str:
        return f"<CapacityResource {self.name} {self.allocated_rate:.3g}/{self.capacity:.3g} B/s>"


class Flow:
    """One in-progress bulk transfer."""

    __slots__ = (
        "id",
        "name",
        "resources",
        "nbytes",
        "remaining",
        "rate",
        "event",
        "start_time",
        "handle",
    )

    def __init__(
        self,
        name: str,
        resources: _t.Sequence[CapacityResource],
        nbytes: float,
        event: Event,
        start_time: float,
    ):
        self.id = next(_flow_ids)
        self.name = name
        self.resources = tuple(resources)
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.event = event
        self.start_time = start_time
        #: The event ``FlowSimulator.transfer`` returned for this flow
        #: (differs from ``event`` when one-way latency is modelled).
        self.handle: Event = event

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Flow {self.name or self.id} {self.remaining:.3g}B left @ {self.rate:.3g}B/s>"


def max_min_rates(flows: _t.Sequence[Flow]) -> dict[Flow, float]:
    """Progressive-filling max-min fair allocation.

    Returns the fair rate for every flow.  Flows with an empty resource
    list are unconstrained (rate ``inf`` — local copies); flows crossing
    a ``blocked`` resource are stalled at rate 0.
    """
    rates: dict[Flow, float] = {}
    active: set[Flow] = set()
    for flow in flows:
        if any(res.blocked for res in flow.resources):
            rates[flow] = 0.0
        elif flow.resources:
            active.add(flow)
            rates[flow] = 0.0
        else:
            rates[flow] = float("inf")

    cap_left: dict[CapacityResource, float] = {}
    users: dict[CapacityResource, set[Flow]] = {}
    for flow in active:
        for res in flow.resources:
            cap_left.setdefault(res, res.capacity)
            users.setdefault(res, set()).add(flow)

    while active:
        # Uniform increment until the tightest resource saturates.
        inc = min(
            cap_left[res] / len(members)
            for res, members in users.items()
            if members
        )
        for flow in active:
            rates[flow] += inc
        saturated: list[CapacityResource] = []
        for res, members in users.items():
            if not members:
                continue
            cap_left[res] -= inc * len(members)
            if cap_left[res] <= 1e-9 * res.capacity:
                saturated.append(res)
        if not saturated:  # pragma: no cover - numerical guard
            break
        frozen: set[Flow] = set()
        for res in saturated:
            frozen |= users[res]
        for flow in frozen & active:
            active.discard(flow)
            for res in flow.resources:
                users[res].discard(flow)
    return rates


class FlowSimulator:
    """Event-driven fluid-flow transfer engine on the simulation kernel.

    Usage (inside a simulated process)::

        done = flowsim.transfer(resources, nbytes, name="worker3:file42")
        yield done        # fires when the last byte lands

    The engine re-plans rates whenever a flow starts or completes, and
    refreshes every touched resource's ``allocated_rate`` for monitoring.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._flows: set[Flow] = set()
        self._handles: dict[Event, Flow] = {}
        self._wake: Event | None = None
        self._proc = env.process(self._coordinator(), name="flowsim")
        self.completed_count = 0
        self.bytes_moved = 0.0
        self.cancelled_count = 0
        #: optional span tracer (the testbed wires this up): every flow
        #: becomes a ``transfer`` span carrying bytes and achieved rate.
        self.tracer: "Tracer | None" = None
        self._flow_spans: dict[int, "Span"] = {}

    # -- public API --------------------------------------------------------------

    def transfer(
        self,
        resources: _t.Sequence[CapacityResource],
        nbytes: float,
        latency_s: float = 0.0,
        name: str = "",
    ) -> Event:
        """Start a transfer of ``nbytes`` across ``resources``.

        Returns an event that fires (with the flow) once the transfer —
        plus one-way ``latency_s`` — completes.
        """
        if nbytes < 0:
            raise NetworkError(f"negative transfer size: {nbytes}")
        done = self.env.event()
        if nbytes == 0 or not resources:
            # Local copy / empty payload: latency only.
            def _immediate(env=self.env):
                yield env.timeout(latency_s)
                done.succeed(None)

            self.env.process(_immediate(), name=f"flow:{name}:local")
            return done

        flow_done = self.env.event()
        flow = Flow(name, resources, nbytes, flow_done, self.env.now)
        self._flows.add(flow)
        if self.tracer is not None:
            self._flow_spans[flow.id] = self.tracer.start(
                name or f"flow-{flow.id}",
                "transfer",
                attributes={"bytes": float(nbytes)},
            )
        self._poke()

        if latency_s > 0:

            def _delayed(env=self.env):
                try:
                    yield flow_done
                except NetworkError as exc:
                    # Flow was cancelled; forward the failure to the handle.
                    if not done.triggered:
                        done.defuse()
                        done.fail(exc)
                    return
                yield env.timeout(latency_s)
                done.succeed(flow)

            self.env.process(_delayed(), name=f"flow:{name}:latency")
            flow.handle = done
            self._handles[done] = flow
            return done
        self._handles[flow_done] = flow
        return flow_done

    def cancel(self, handle: Event) -> bool:
        """Abort the in-flight flow behind a ``transfer()`` handle.

        The handle event fails with :class:`~repro.errors.NetworkError`
        (defused if nobody is watching), the flow's partial bytes are
        discarded, and shared capacity is released immediately.  Returns
        False when the handle is unknown or the flow already finished.
        """
        flow = self._handles.pop(handle, None)
        if flow is None or flow not in self._flows:
            return False
        self._flows.discard(flow)
        self.cancelled_count += 1
        self._finish_flow_span(flow, status="error")
        for res in flow.resources:
            res.allocated_rate = sum(
                f.rate for f in self._flows if res in f.resources
            )
        if not flow.event.triggered:
            flow.event.defuse()
            flow.event.fail(
                NetworkError(f"flow {flow.name or flow.id} cancelled")
            )
        self._poke()
        return True

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def instantaneous_rate(self, resource: CapacityResource) -> float:
        """Current aggregate rate through ``resource`` (bytes/s)."""
        return resource.allocated_rate

    def recompute(self) -> None:
        """Re-converge rates now — call after any capacity change.

        ``Topology.fail_link``/``set_capacity`` mutate resources without
        knowing about the flow engine; fault injectors call this so
        in-flight transfers see the new capacities at the current instant
        (elapsed bytes are accounted at the old rates first).
        """
        self._poke()

    # -- engine -------------------------------------------------------------------

    def _finish_flow_span(self, flow: Flow, status: str = "ok") -> None:
        if self.tracer is None:
            return
        span = self._flow_spans.pop(flow.id, None)
        if span is None:
            return
        self.tracer.finish(span, status=status)
        if status == "ok" and span.duration > 0:
            span.attributes["rate_Bps"] = flow.nbytes / span.duration

    def _poke(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _recompute(self) -> None:
        rates = max_min_rates(list(self._flows))
        touched: set[CapacityResource] = set()
        for flow in self._flows:
            flow.rate = rates[flow]
            touched |= set(flow.resources)
        for res in touched:
            res.allocated_rate = sum(
                f.rate for f in self._flows if res in f.resources
            )
        # Resources no longer used by any flow decay to zero lazily: they
        # are refreshed the next time a flow touches them; callers sampling
        # utilization should prefer `sample_rates`.

    def sample_rates(self, resources: _t.Iterable[CapacityResource]) -> dict[str, float]:
        """Accurate instantaneous rates for ``resources`` (monitoring API)."""
        out = {}
        for res in resources:
            out[res.name] = sum(
                f.rate for f in self._flows if res in f.resources
            )
        return out

    def _coordinator(self):
        while True:
            if not self._flows:
                self._wake = self.env.event()
                yield self._wake
                continue
            self._recompute()
            horizon = min(
                (f.remaining / f.rate for f in self._flows if f.rate > 0),
                default=float("inf"),
            )
            self._wake = self.env.event()
            started = self.env.now
            if horizon == float("inf"):
                # Every flow is stalled (blocked path): sleep until poked.
                yield self._wake
            else:
                yield self.env.any_of([self.env.timeout(horizon), self._wake])
            elapsed = self.env.now - started
            # A flow whose completion lies within the clock's float
            # resolution must finish NOW: otherwise `now + horizon == now`
            # and the loop would spin without advancing time.
            time_eps = max(1e-9, 8.0 * np.spacing(self.env.now))
            finished: list[Flow] = []
            for flow in self._flows:
                flow.remaining -= flow.rate * elapsed
                if flow.remaining <= max(_EPS_BYTES, 1e-9 * flow.nbytes) or (
                    flow.rate > 0 and flow.remaining / flow.rate <= time_eps
                ):
                    finished.append(flow)
            for flow in finished:
                self._flows.remove(flow)
                self._handles.pop(flow.handle, None)
                self.completed_count += 1
                self.bytes_moved += flow.nbytes
                self._finish_flow_span(flow)
                flow.event.succeed(flow)
            if finished:
                # Zero out rates on now-idle resources for clean sampling.
                idle: set[CapacityResource] = set()
                for flow in finished:
                    idle |= set(flow.resources)
                for res in idle:
                    res.allocated_rate = sum(
                        f.rate for f in self._flows if res in f.resources
                    )
