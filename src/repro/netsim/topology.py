"""PRP topology: sites, links, hosts, shortest-path routing."""

from __future__ import annotations

import dataclasses
import typing as _t

import networkx as nx

from repro.errors import NetworkError, NoRouteError
from repro.netsim.flows import CapacityResource

__all__ = ["Site", "Link", "Topology", "build_prp_topology", "gbps_to_Bps"]


def gbps_to_Bps(gbps: float) -> float:
    """Gigabits/s → bytes/s (decimal, as NICs are rated)."""
    return gbps * 1e9 / 8.0


@dataclasses.dataclass(frozen=True)
class Site:
    """A PRP partner institution hosting DTNs and/or compute."""

    name: str
    tier: str = "partner"  # "core" for supercomputer centers, else "partner"


@dataclasses.dataclass
class Link:
    """A WAN/LAN link between two sites, with a capacity resource attached."""

    a: str
    b: str
    gbps: float
    latency_s: float = 0.002
    up: bool = True
    resource: CapacityResource = dataclasses.field(init=False)

    def __post_init__(self) -> None:
        if self.gbps <= 0:
            raise NetworkError(f"link {self.a}-{self.b} needs positive capacity")
        self.resource = CapacityResource(
            name=f"link:{self.a}<->{self.b}", capacity=gbps_to_Bps(self.gbps)
        )

    @property
    def key(self) -> frozenset:
        return frozenset((self.a, self.b))

    def set_capacity(self, gbps: float) -> None:
        """Re-rate the link in place (fault injection: degradation)."""
        if gbps <= 0:
            raise NetworkError(f"link {self.a}-{self.b} needs positive capacity")
        self.gbps = float(gbps)
        self.resource.set_capacity(gbps_to_Bps(gbps))


class Topology:
    """Sites + links + attached hosts, with shortest-path routing.

    Hosts (FIONAs, storage nodes, external archives) attach to a site
    through an access link sized to their NIC. Routes between hosts
    traverse ``host NIC → site … site → host NIC`` and accumulate every
    link's capacity resource, so a transfer is limited by the tightest of
    NIC, access, and WAN hops — exactly the Science-DMZ behaviour of
    "simple, scalable networks" the paper builds on.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self.sites: dict[str, Site] = {}
        self.links: dict[frozenset, Link] = {}
        self.hosts: dict[str, str] = {}  # host -> site

    # -- construction ----------------------------------------------------------

    def add_site(self, name: str, tier: str = "partner") -> Site:
        if name in self.sites:
            raise NetworkError(f"site {name!r} already exists")
        site = Site(name, tier)
        self.sites[name] = site
        self._graph.add_node(name, kind="site")
        return site

    def add_link(
        self, a: str, b: str, gbps: float, latency_s: float = 0.002
    ) -> Link:
        """Connect two sites with a WAN link."""
        for end in (a, b):
            if end not in self.sites:
                raise NetworkError(f"unknown site {end!r}")
        link = Link(a, b, gbps, latency_s)
        if link.key in self.links:
            raise NetworkError(f"duplicate link {a}<->{b}")
        self.links[link.key] = link
        self._graph.add_edge(a, b, link=link, weight=latency_s)
        return link

    def attach_host(self, hostname: str, site: str, nic_gbps: float = 10.0) -> None:
        """Attach a machine to a site through a NIC-limited access link."""
        if site not in self.sites:
            raise NetworkError(f"unknown site {site!r}")
        if hostname in self.hosts:
            raise NetworkError(f"host {hostname!r} already attached")
        self.hosts[hostname] = site
        self._graph.add_node(hostname, kind="host")
        link = Link(hostname, site, nic_gbps, latency_s=0.0001)
        self.links[link.key] = link
        self._graph.add_edge(hostname, site, link=link, weight=0.0001)

    # -- queries -----------------------------------------------------------------

    def site_of(self, host: str) -> str:
        try:
            return self.hosts[host]
        except KeyError:
            raise NetworkError(f"unknown host {host!r}") from None

    def get_link(self, a: str, b: str) -> Link:
        """The link between two endpoints (sites or host/site)."""
        link = self.links.get(frozenset((a, b)))
        if link is None:
            raise NetworkError(f"no link {a}<->{b}")
        return link

    def fail_link(self, a: str, b: str) -> None:
        """Take a link down; routing immediately converges around it.

        The link's capacity resource is marked ``blocked``, so in-flight
        flows crossing it stall at rate zero (and resume on restore) —
        every new route avoids the failed link.  Callers driving a live
        :class:`~repro.netsim.flows.FlowSimulator` should follow up with
        ``flowsim.recompute()`` so stalls take effect mid-flow.
        """
        link = self.get_link(a, b)
        if not link.up:
            return
        link.up = False
        link.resource.blocked = True
        self._graph.remove_edge(a, b)

    def restore_link(self, a: str, b: str) -> None:
        """Bring a failed link back into the routing graph."""
        link = self.get_link(a, b)
        if link.up:
            return
        link.up = True
        link.resource.blocked = False
        self._graph.add_edge(a, b, link=link, weight=link.latency_s)

    def reachable(self, src: str, dst: str) -> bool:
        """True when a route currently exists between two endpoints."""
        try:
            self.route(src, dst)
        except NoRouteError:
            return False
        return True

    def wan_links(self) -> list[Link]:
        """Site-to-site links (excludes host access links), stable order."""
        return sorted(
            (
                link
                for link in self.links.values()
                if link.a in self.sites and link.b in self.sites
            ),
            key=lambda link: (link.a, link.b),
        )

    def route(self, src: str, dst: str) -> list[Link]:
        """Latency-shortest path between two hosts or sites (up links only)."""
        if src == dst:
            return []
        try:
            nodes = nx.shortest_path(self._graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise NoRouteError(f"no route {src!r} -> {dst!r}") from None
        return [
            self.links[frozenset((u, v))] for u, v in zip(nodes, nodes[1:])
        ]

    def path_resources(self, src: str, dst: str) -> list[CapacityResource]:
        """Capacity resources along the route (what a flow must share)."""
        return [link.resource for link in self.route(src, dst)]

    def path_latency(self, src: str, dst: str) -> float:
        return sum(link.latency_s for link in self.route(src, dst))

    def bottleneck_gbps(self, src: str, dst: str) -> float:
        """Idle-network capacity of the narrowest hop."""
        route = self.route(src, dst)
        if not route:
            return float("inf")
        return min(link.gbps for link in route)

    def summary(self) -> dict[str, object]:
        """Inventory for the Figure-1 report."""
        return {
            "sites": len(self.sites),
            "core_sites": sum(1 for s in self.sites.values() if s.tier == "core"),
            "hosts": len(self.hosts),
            "wan_links": sum(
                1
                for link in self.links.values()
                if link.a in self.sites and link.b in self.sites
            ),
            "link_speeds_gbps": sorted(
                {
                    link.gbps
                    for link in self.links.values()
                    if link.a in self.sites and link.b in self.sites
                }
            ),
        }


#: The PRP partnership: "more than 20 institutions, including four
#: NSF/DOE/NASA supercomputer centers" (§II), on CENIC's optical backbone.
PRP_SITES: tuple[tuple[str, str], ...] = (
    ("UCSD", "core"),  # San Diego Supercomputer Center
    ("SDSC", "core"),
    ("NERSC", "core"),
    ("NCAR", "core"),
    ("UCI", "partner"),
    ("UCLA", "partner"),
    ("UCR", "partner"),
    ("UCSB", "partner"),
    ("UCSC", "partner"),
    ("UCD", "partner"),
    ("UCM", "partner"),  # UC Merced (the paper's VR demo far end)
    ("Stanford", "partner"),
    ("Caltech", "partner"),
    ("USC", "partner"),
    ("UW", "partner"),
    ("UHM", "partner"),  # University of Hawaii
    ("UIC", "partner"),
    ("Northwestern", "partner"),
    ("UvA", "partner"),  # transoceanic partner
    ("KISTI", "partner"),
    ("ESnet", "core"),
)


def build_prp_topology(
    *,
    core_gbps: float = 100.0,
    regional_gbps: float = 40.0,
    access_gbps: float = 10.0,
) -> Topology:
    """Build the PRP backbone: a CENIC-like core ring at 100G, regional
    spurs at 40G, and remaining partners at 10G — "10G, 40G and 100G
    networks" (§II)."""
    topo = Topology()
    for name, tier in PRP_SITES:
        topo.add_site(name, tier)

    # 100G core ring among supercomputer centers + major hubs.
    core_ring = ["UCSD", "SDSC", "Caltech", "Stanford", "NERSC", "ESnet", "NCAR"]
    for a, b in zip(core_ring, core_ring[1:] + core_ring[:1]):
        topo.add_link(a, b, core_gbps, latency_s=0.004)

    # 40G regional spurs into the nearest hub.
    regional = {
        "UCI": "UCSD",
        "UCLA": "Caltech",
        "UCR": "UCSD",
        "UCSB": "Caltech",
        "UCSC": "Stanford",
        "UCD": "NERSC",
        "UCM": "NERSC",
        "USC": "Caltech",
    }
    for spur, hub in regional.items():
        topo.add_link(spur, hub, regional_gbps, latency_s=0.003)

    # 10G long-haul partners.
    longhaul = {
        "UW": ("NERSC", 0.012),
        "UHM": ("UCSD", 0.045),
        "UIC": ("NCAR", 0.014),
        "Northwestern": ("NCAR", 0.015),
        "UvA": ("ESnet", 0.075),
        "KISTI": ("UW", 0.065),
    }
    for spur, (hub, lat) in longhaul.items():
        topo.add_link(spur, hub, access_gbps, latency_s=lat)

    return topo
