"""Background traffic: the PRP is a shared platform, not a private wire.

The paper's Nautilus coexists with every other PRP science flow.  This
process injects seeded random site-to-site transfers so experiments can
measure workflow behaviour under realistic contention — and quantify how
much the Science-DMZ overprovisioning (100G core vs 1G archive egress)
insulates the CONNECT workflow from it.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.netsim.flows import FlowSimulator
from repro.netsim.topology import Topology
from repro.sim import Environment
from repro.sim.rng import derive_seed

__all__ = ["BackgroundTraffic"]


class BackgroundTraffic:
    """Seeded Poisson-ish cross traffic between random site pairs.

    Parameters
    ----------
    env, flowsim, topology:
        Simulation plumbing.
    mean_interarrival:
        Mean seconds between new background flows (exponential).
    flow_bytes:
        (low, high) of the log-uniform flow-size distribution.
    seed:
        Stream seed; identical seeds produce identical traffic.
    """

    def __init__(
        self,
        env: Environment,
        flowsim: FlowSimulator,
        topology: Topology,
        mean_interarrival: float = 30.0,
        flow_bytes: tuple[float, float] = (1e8, 1e11),
        seed: int = 0,
    ):
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        lo, hi = flow_bytes
        if not 0 < lo <= hi:
            raise ValueError("flow_bytes must satisfy 0 < low <= high")
        self.env = env
        self.flowsim = flowsim
        self.topology = topology
        self.mean_interarrival = mean_interarrival
        self.flow_bytes = flow_bytes
        self.rng = np.random.default_rng(derive_seed(seed, "background"))
        self.flows_started = 0
        self.bytes_offered = 0.0
        self._stopped = False
        env.process(self._loop(), name="background-traffic")

    def stop(self) -> None:
        self._stopped = True

    def _pick_pair(self) -> tuple[str, str] | None:
        sites = sorted(self.topology.sites)
        if len(sites) < 2:
            return None
        i, j = self.rng.choice(len(sites), size=2, replace=False)
        return sites[int(i)], sites[int(j)]

    def _loop(self):
        lo, hi = self.flow_bytes
        while not self._stopped:
            yield self.env.timeout(
                float(self.rng.exponential(self.mean_interarrival))
            )
            if self._stopped:
                return
            pair = self._pick_pair()
            if pair is None:
                return
            src, dst = pair
            try:
                resources = self.topology.path_resources(src, dst)
            except Exception:
                continue  # transiently partitioned; skip this flow
            nbytes = float(np.exp(self.rng.uniform(np.log(lo), np.log(hi))))
            self.flowsim.transfer(
                resources,
                nbytes,
                latency_s=self.topology.path_latency(src, dst),
                name=f"bg:{src}->{dst}",
            )
            self.flows_started += 1
            self.bytes_offered += nbytes
