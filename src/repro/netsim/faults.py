"""Network fault injection: partitions, link degradation, stragglers.

Real Nautilus outages are rarely clean node deaths: PRP links flap or
degrade, whole sites drop off the backbone, and individual hosts limp
along at a fraction of their I/O rate.  :class:`NetworkFaultInjector`
produces exactly those partial failures on a live :class:`Topology` /
:class:`FlowSimulator` pair, deterministically and reversibly:

- ``fail_link`` / ``heal_link`` — hard cuts; in-flight flows stall at
  rate zero (``CapacityResource.blocked``) and resume on heal.
- ``degrade_link`` / ``restore_link`` — scale a link's capacity by a
  factor; stacking degrades compose against the *original* rating, so
  restore is exact.
- ``flap_link`` — scheduled down/up cycles (the classic dirty-optics
  failure mode).
- ``partition`` / ``heal_partition`` — cut every link crossing a site
  group's boundary, isolating those sites (and their attached hosts)
  from the rest of the PRP.
- ``make_straggler`` / ``restore_straggler`` — throttle a host's access
  link, modelling a node whose effective I/O rate has collapsed.

Every mutation pokes the flow engine so rates re-converge at the current
simulation instant.  All scheduling helpers run on the simulation clock
and all randomness (none internally — callers pass an ``rng``) stays
seeded, so fault schedules are byte-for-byte reproducible.
"""

from __future__ import annotations

import typing as _t

from repro.errors import NetworkError
from repro.netsim.flows import FlowSimulator
from repro.netsim.topology import Link, Topology

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.monitoring.metrics import MetricRegistry
    from repro.sim import Environment, Process

__all__ = ["NetworkFaultInjector"]


class NetworkFaultInjector:
    """Injects partial network failures into a topology.

    Parameters
    ----------
    topology:
        The graph to mutate.
    flowsim:
        Optional flow engine; poked after every mutation so in-flight
        transfers feel capacity changes immediately.
    env:
        Optional simulation environment, required only for the
        scheduling helpers (``flap_link``, ``schedule``).
    registry:
        Optional metric registry; fault counters
        (``link_degradations_total``, ``link_failures_total``,
        ``network_partitions_total``) are exported when present.
    """

    def __init__(
        self,
        topology: Topology,
        flowsim: FlowSimulator | None = None,
        env: "Environment | None" = None,
        registry: "MetricRegistry | None" = None,
    ):
        self.topology = topology
        self.flowsim = flowsim
        self.env = env
        self.registry = registry
        #: link key -> original gbps, for exact restore of degrades.
        self._degraded: dict[frozenset, float] = {}
        #: stack of cut-link lists, one per active partition.
        self._partitions: list[list[tuple[str, str]]] = []
        #: host -> original access-link gbps.
        self._stragglers: dict[str, float] = {}

    # -- plumbing -------------------------------------------------------------

    def _poke(self) -> None:
        if self.flowsim is not None:
            self.flowsim.recompute()

    def _count(self, metric: str, **labels: str) -> None:
        if self.registry is not None:
            self.registry.inc_counter(metric, 1.0, labels or None)

    def _require_env(self) -> "Environment":
        if self.env is None:
            raise NetworkError(
                "this fault injector was built without an environment; "
                "pass env= to schedule faults on the simulation clock"
            )
        return self.env

    # -- link degradation -----------------------------------------------------

    def degrade_link(self, a: str, b: str, factor: float) -> Link:
        """Scale a link to ``factor`` of its *original* capacity.

        Repeated degrades don't compound: the factor is always relative
        to the rating the link had before the first degrade.
        """
        if not 0.0 < factor <= 1.0:
            raise NetworkError(f"degrade factor must be in (0, 1], got {factor}")
        link = self.topology.get_link(a, b)
        original = self._degraded.setdefault(link.key, link.gbps)
        link.set_capacity(original * factor)
        self._poke()
        self._count("link_degradations_total", link=f"{link.a}-{link.b}")
        return link

    def restore_link(self, a: str, b: str) -> None:
        """Undo a degrade, returning the link to its original rating."""
        link = self.topology.get_link(a, b)
        original = self._degraded.pop(link.key, None)
        if original is None:
            return
        link.set_capacity(original)
        self._poke()

    # -- hard cuts ------------------------------------------------------------

    def fail_link(self, a: str, b: str) -> None:
        """Cut a link; in-flight flows across it stall at rate zero."""
        self.topology.fail_link(a, b)
        self._poke()
        self._count("link_failures_total", link=f"{a}-{b}")

    def heal_link(self, a: str, b: str) -> None:
        """Bring a cut link back; stalled flows resume immediately."""
        self.topology.restore_link(a, b)
        self._poke()

    def flap_link(
        self,
        a: str,
        b: str,
        down_s: float,
        up_s: float = 0.0,
        cycles: int = 1,
        initial_delay_s: float = 0.0,
    ) -> "Process":
        """Schedule ``cycles`` down/up cycles on the simulation clock."""
        env = self._require_env()

        def _flapper():
            if initial_delay_s > 0:
                yield env.timeout(initial_delay_s)
            for cycle in range(cycles):
                self.fail_link(a, b)
                yield env.timeout(down_s)
                self.heal_link(a, b)
                if up_s > 0 and cycle + 1 < cycles:
                    yield env.timeout(up_s)

        return env.process(_flapper(), name=f"fault:flap:{a}-{b}")

    # -- partitions -----------------------------------------------------------

    def _side_of(self, endpoint: str, group: frozenset) -> bool:
        """Whether an endpoint (site or host) falls inside the group."""
        site = self.topology.hosts.get(endpoint, endpoint)
        return site in group

    def partition(self, sites: _t.Iterable[str]) -> list[tuple[str, str]]:
        """Isolate a group of sites (hosts follow their site).

        Cuts every up link with exactly one endpoint inside the group
        and returns the cut set (most recent partition is healed first
        by :meth:`heal_partition`).
        """
        group = frozenset(sites)
        for site in group:
            if site not in self.topology.sites:
                raise NetworkError(f"unknown site {site!r}")
        cut: list[tuple[str, str]] = []
        for link in sorted(
            self.topology.links.values(), key=lambda l: sorted(l.key)
        ):
            if not link.up:
                continue
            if self._side_of(link.a, group) != self._side_of(link.b, group):
                self.topology.fail_link(link.a, link.b)
                cut.append((link.a, link.b))
        self._partitions.append(cut)
        self._poke()
        self._count(
            "network_partitions_total", sites=",".join(sorted(group))
        )
        return list(cut)

    def heal_partition(
        self, cut: _t.Sequence[tuple[str, str]] | None = None
    ) -> None:
        """Restore a partition's cut links (most recent when ``cut=None``)."""
        if cut is None:
            if not self._partitions:
                return
            cut = self._partitions.pop()
        else:
            cut = list(cut)
            if cut in self._partitions:
                self._partitions.remove(cut)
        for a, b in cut:
            self.topology.restore_link(a, b)
        self._poke()

    @property
    def active_partitions(self) -> int:
        return len(self._partitions)

    # -- stragglers -----------------------------------------------------------

    def make_straggler(self, host: str, factor: float) -> None:
        """Throttle a host's access link to ``factor`` of its NIC rating.

        This is an I/O-rate straggler: the host stays Ready and its pods
        keep running, but every byte it moves crawls — the failure mode
        liveness probes and step timeouts exist to catch.
        """
        site = self.topology.site_of(host)
        link = self.topology.get_link(host, site)
        if host not in self._stragglers:
            self._stragglers[host] = link.gbps
        self.degrade_link(host, site, factor)

    def restore_straggler(self, host: str) -> None:
        """Return a straggler's access link to full speed."""
        original = self._stragglers.pop(host, None)
        if original is None:
            return
        self.restore_link(host, self.topology.site_of(host))

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self,
        delay_s: float,
        action: _t.Callable[..., object],
        *args: object,
        **kwargs: object,
    ) -> "Process":
        """Run ``action(*args, **kwargs)`` after ``delay_s`` sim-seconds."""
        env = self._require_env()

        def _delayed():
            yield env.timeout(delay_s)
            action(*args, **kwargs)

        name = getattr(action, "__name__", "action")
        return env.process(_delayed(), name=f"fault:scheduled:{name}")

    def active_summary(self) -> dict[str, object]:
        """Current fault state, for logs and dashboards."""
        return {
            "degraded_links": sorted(
                "-".join(sorted(key)) for key in self._degraded
            ),
            "partitions": [list(cut) for cut in self._partitions],
            "stragglers": sorted(self._stragglers),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<NetworkFaultInjector degraded={len(self._degraded)} "
            f"partitions={len(self._partitions)} "
            f"stragglers={len(self._stragglers)}>"
        )
