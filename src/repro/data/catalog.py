"""The MERRA-2 archive catalog: every granule's name, timestamp and size.

Paper §III: "455GB of 3-hourly ... MERRA V2 dataset from January 1, 1980
to May 31, 2018", "246GB (112,249 NetCDF files)" after variable
subsetting.  The catalog reproduces exactly those aggregate numbers: the
granule count is the calendar-exact 3-hourly count for that date range,
and per-file sizes carry deterministic jitter around the mean such that
the totals match the paper to the byte.

This module is pure bookkeeping (no arrays); it drives the Step-1
transfer simulation at paper scale.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import typing as _t

from repro.sim.rng import derive_seed

import numpy as np

__all__ = ["GranuleInfo", "MerraArchive", "PAPER_FILE_COUNT"]

#: Aggregate numbers reported in §III-A.
PAPER_FULL_BYTES = 455e9
PAPER_SUBSET_BYTES = 246e9
PAPER_FILE_COUNT = 112_249

_EPOCH = _dt.datetime(1980, 1, 1)
# The paper reports 112,249 granules; 3-hourly stamps from 1980-01-01 00:00
# through 2018-06-01 00:00 inclusive give exactly that count.
_END = _dt.datetime(2018, 6, 1)


@dataclasses.dataclass(frozen=True)
class GranuleInfo:
    """One archive file."""

    index: int
    name: str
    timestamp: _dt.datetime
    full_bytes: float
    subset_bytes: float

    def url(self, server: str = "thredds") -> str:
        """The THREDDS fileServer URL of this granule."""
        stamp = self.timestamp.strftime("%Y%m%d_%H%M")
        return f"https://{server}/fileServer/MERRA2/M2I3NPASM/{stamp}/{self.name}"


class MerraArchive:
    """Deterministic catalog of the paper's 112,249-granule archive.

    Parameters
    ----------
    n_files:
        Number of granules (defaults to the calendar-exact paper count).
        Pass a small number for laptop-scale runs: aggregate sizes scale
        proportionally so ratios stay paper-faithful.
    seed:
        Controls the per-file size jitter.
    """

    def __init__(self, n_files: int | None = None, seed: int = 0):
        calendar_count = int((_END - _EPOCH).total_seconds() // (3 * 3600)) + 1
        self.n_files = n_files if n_files is not None else calendar_count
        if self.n_files < 1:
            raise ValueError("archive needs at least one file")
        self.seed = seed
        scale = self.n_files / calendar_count
        self.total_full_bytes = PAPER_FULL_BYTES * scale
        self.total_subset_bytes = PAPER_SUBSET_BYTES * scale

        rng = np.random.default_rng(derive_seed(seed, "archive-sizes"))
        jitter = rng.uniform(0.9, 1.1, size=self.n_files)
        jitter *= self.n_files / jitter.sum()  # renormalize so totals are exact
        self._full_sizes = jitter * (self.total_full_bytes / self.n_files)
        self._subset_sizes = jitter * (self.total_subset_bytes / self.n_files)

    @property
    def calendar_exact(self) -> bool:
        """True when this catalog matches the paper's granule count."""
        return self.n_files == PAPER_FILE_COUNT

    def __len__(self) -> int:
        return self.n_files

    def granule(self, index: int) -> GranuleInfo:
        """The ``index``-th granule (0-based, time-ordered)."""
        if not 0 <= index < self.n_files:
            raise IndexError(f"granule index {index} out of range")
        ts = _EPOCH + _dt.timedelta(hours=3 * index)
        name = f"MERRA2.inst3_3d_asm_Np.{ts.strftime('%Y%m%d_%H%M')}.nc4"
        return GranuleInfo(
            index=index,
            name=name,
            timestamp=ts,
            full_bytes=float(self._full_sizes[index]),
            subset_bytes=float(self._subset_sizes[index]),
        )

    def granules(self) -> _t.Iterator[GranuleInfo]:
        """Iterate all granules in time order."""
        for i in range(self.n_files):
            yield self.granule(i)

    def subset_ratio(self) -> float:
        """Bytes saved by variable subsetting (paper: 246/455 ≈ 0.54)."""
        return self.total_subset_bytes / self.total_full_bytes

    def manifest_chunks(self, n_chunks: int) -> list[list[int]]:
        """Split granule indices into ``n_chunks`` contiguous work lists.

        These are the "files that contain urls to download" the paper's
        Redis queue distributes to workers (§III-A).
        """
        if n_chunks < 1:
            raise ValueError("n_chunks must be >= 1")
        bounds = np.linspace(0, self.n_files, n_chunks + 1).astype(int)
        return [
            list(range(bounds[i], bounds[i + 1])) for i in range(n_chunks)
        ]

    def __repr__(self) -> str:
        return (
            f"<MerraArchive {self.n_files} granules, "
            f"{self.total_full_bytes / 1e9:.0f} GB full / "
            f"{self.total_subset_bytes / 1e9:.0f} GB subset>"
        )
