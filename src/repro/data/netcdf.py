"""A lightweight in-memory NetCDF-like container.

Models exactly what the workflow needs from NetCDF: named variables with
dimensions and attributes, per-variable byte sizes, and **variable
subsetting** — the THREDDS capability that let the paper shrink its
archive from 455 GB to 246 GB by transferring only IVT-relevant fields.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.errors import ShapeError

__all__ = ["NetCDFVariable", "NetCDFFile"]


@dataclasses.dataclass
class NetCDFVariable:
    """One variable: dims + (optionally lazy) data.

    ``data`` may be a real :class:`numpy.ndarray` (laptop-scale runs) or
    ``None`` with an explicit ``shape`` (paper-scale runs where only byte
    accounting matters).
    """

    name: str
    dims: tuple[str, ...]
    data: np.ndarray | None = None
    shape: tuple[int, ...] | None = None
    dtype: str = "float32"
    attrs: dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.data is not None:
            self.data = np.asarray(self.data)
            if self.shape is None:
                self.shape = self.data.shape
            elif tuple(self.shape) != self.data.shape:
                raise ShapeError(
                    f"variable {self.name!r}: shape {self.shape} != data "
                    f"{self.data.shape}"
                )
            self.dtype = str(self.data.dtype)
        if self.shape is None:
            raise ShapeError(f"variable {self.name!r} needs data or shape")
        if len(self.dims) != len(self.shape):
            raise ShapeError(
                f"variable {self.name!r}: {len(self.dims)} dims for "
                f"{len(self.shape)}-d shape"
            )

    @property
    def nbytes(self) -> int:
        """Size of the variable's payload in bytes."""
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize

    def __repr__(self) -> str:
        lazy = "" if self.data is not None else " (lazy)"
        return f"<NetCDFVariable {self.name}{self.dims}={self.shape}{lazy}>"


class NetCDFFile:
    """A granule: named variables + global attributes.

    >>> import numpy as np
    >>> f = NetCDFFile("demo.nc4")
    >>> _ = f.add_variable("T", ("lat", "lon"), data=np.zeros((4, 8)))
    >>> f.subset(["T"]).nbytes == f.variables["T"].nbytes + NetCDFFile.HEADER_BYTES
    True
    """

    #: Fixed metadata overhead per file (headers, dimension tables).
    HEADER_BYTES = 16_384

    def __init__(self, name: str, attrs: dict[str, object] | None = None):
        self.name = name
        self.attrs = dict(attrs or {})
        self.variables: dict[str, NetCDFVariable] = {}

    def add_variable(
        self,
        name: str,
        dims: tuple[str, ...],
        data: np.ndarray | None = None,
        shape: tuple[int, ...] | None = None,
        dtype: str = "float32",
        attrs: dict[str, object] | None = None,
    ) -> NetCDFVariable:
        """Create and attach a variable."""
        if name in self.variables:
            raise ShapeError(f"duplicate variable {name!r} in {self.name}")
        var = NetCDFVariable(
            name=name,
            dims=dims,
            data=data,
            shape=shape,
            dtype=dtype,
            attrs=dict(attrs or {}),
        )
        self.variables[name] = var
        return var

    @property
    def nbytes(self) -> int:
        """Total file size (payloads + header overhead)."""
        return self.HEADER_BYTES + sum(v.nbytes for v in self.variables.values())

    def subset(self, variable_names: _t.Sequence[str]) -> "NetCDFFile":
        """A new file containing only the named variables.

        This is the server-side subsetting the paper uses: "THREDDS
        provides a data subset tool that allows for selection of a
        variable within files ... instead of the entire file" (§III-A).
        """
        missing = [n for n in variable_names if n not in self.variables]
        if missing:
            raise KeyError(f"no such variables in {self.name}: {missing}")
        out = NetCDFFile(self.name, attrs=dict(self.attrs))
        for name in variable_names:
            out.variables[name] = self.variables[name]
        return out

    def __contains__(self, name: str) -> bool:
        return name in self.variables

    def __repr__(self) -> str:
        return (
            f"<NetCDFFile {self.name}: {sorted(self.variables)} "
            f"{self.nbytes / 1e6:.2f} MB>"
        )
