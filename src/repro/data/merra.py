"""Seeded synthetic MERRA-2-like atmospheric fields.

The generator produces the three fields IVT needs — eastward wind ``U``,
northward wind ``V`` and specific humidity ``QV`` on pressure levels —
plus decoy variables (``T``, ``H``, ``PS``, ``SLP``) so granules carry the
full-file-vs-subset size structure that makes THREDDS subsetting matter.

Design goals (what the substitution must preserve, per DESIGN.md):

- **Spatial smoothness**: fields are superpositions of low-wavenumber
  spherical Fourier modes, so gradients look meteorological rather than
  white.
- **Temporal coherence**: mode phases advance linearly in time and
  moisture filaments advect eastward, so objects persist across the
  3-hourly steps — the property the CONNECT algorithm exploits.
- **Atmospheric-river analogs**: elongated high-IVT filaments with known
  ground truth, giving the FFN/CONNECT pipelines labelled objects whose
  life cycles span time and space.
- **Determinism**: everything derives from a root seed.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sim.rng import derive_seed

__all__ = ["GridSpec", "PAPER_GRID", "MerraGenerator"]

#: Gravitational acceleration, m/s^2 (used by the IVT integral).
GRAVITY = 9.80665


@dataclasses.dataclass(frozen=True)
class GridSpec:
    """The lat/lon/pressure grid of a granule.

    The paper's grid is 576x361 pixels at 0.5 x 0.625 degrees with 42
    vertical levels (§III); :data:`PAPER_GRID` encodes exactly that.
    """

    nlat: int = 361
    nlon: int = 576
    nlev: int = 42

    @property
    def lats(self) -> np.ndarray:
        return np.linspace(-90.0, 90.0, self.nlat)

    @property
    def lons(self) -> np.ndarray:
        return np.linspace(-180.0, 180.0, self.nlon, endpoint=False)

    @property
    def levels_hpa(self) -> np.ndarray:
        """Pressure levels from 1000 hPa down to ~0.1 hPa (log-spaced)."""
        return np.geomspace(1000.0, 0.1, self.nlev)

    @property
    def shape2d(self) -> tuple[int, int]:
        return (self.nlat, self.nlon)

    @property
    def shape3d(self) -> tuple[int, int, int]:
        return (self.nlev, self.nlat, self.nlon)


PAPER_GRID = GridSpec(nlat=361, nlon=576, nlev=42)

#: Scale height (hPa) of the moisture profile: humidity concentrates in
#: the lowest ~3 km of the atmosphere.
_MOISTURE_SCALE_HPA = 250.0


class MerraGenerator:
    """Generates temporally coherent synthetic granules.

    Parameters
    ----------
    grid:
        Resolution (use small grids for tests, :data:`PAPER_GRID` for
        shape-accurate runs).
    seed:
        Root seed; two generators with equal seeds emit identical data.
    n_modes:
        Background Fourier modes per field.
    n_rivers:
        Number of atmospheric-river-like filaments alive at any time.
    hours_per_step:
        Temporal spacing (the paper's archive is 3-hourly).
    """

    def __init__(
        self,
        grid: GridSpec | None = None,
        seed: int = 0,
        n_modes: int = 16,
        n_rivers: int = 3,
        hours_per_step: float = 3.0,
    ):
        self.grid = grid or GridSpec(nlat=45, nlon=72, nlev=8)
        self.seed = seed
        self.n_modes = n_modes
        self.n_rivers = n_rivers
        self.hours_per_step = hours_per_step
        rng = np.random.default_rng(derive_seed(seed, "merra"))

        # Background spectral modes: amplitude decays with wavenumber.
        def draw_modes(count):
            kx = rng.integers(1, 6, size=count).astype(float)
            ky = rng.integers(1, 5, size=count).astype(float)
            phase = rng.uniform(0, 2 * np.pi, size=count)
            omega = rng.normal(0.0, 0.05, size=count)  # rad per step
            amp = rng.uniform(0.4, 1.0, size=count) / np.sqrt(kx**2 + ky**2)
            return kx, ky, phase, omega, amp

        self._modes = {name: draw_modes(n_modes) for name in ("U", "V", "QV", "T")}

        # Atmospheric-river filaments.
        self._rivers = []
        for j in range(n_rivers):
            r = np.random.default_rng(derive_seed(seed, "river", j))
            self._rivers.append(
                {
                    "base_lat": float(r.uniform(-55.0, 55.0)),
                    "meander_amp": float(r.uniform(5.0, 15.0)),
                    "meander_k": float(r.integers(2, 5)),
                    "width_deg": float(r.uniform(3.0, 6.0)),
                    "length_deg": float(r.uniform(25.0, 60.0)),
                    "speed_deg_per_step": float(r.uniform(1.0, 3.0)),
                    "lon0": float(r.uniform(-180.0, 180.0)),
                    "intensity": float(r.uniform(2.5, 4.0)),
                    "period_steps": int(r.integers(80, 160)),
                    "duty": float(r.uniform(0.5, 0.8)),
                }
            )

        lats, lons = self.grid.lats, self.grid.lons
        self._lat2d, self._lon2d = np.meshgrid(lats, lons, indexing="ij")
        self._x = np.deg2rad(self._lon2d)  # 0..2pi-ish
        self._y = np.deg2rad(self._lat2d + 90.0)  # 0..pi

    # -- background fields -------------------------------------------------------

    def _background(self, name: str, t: int) -> np.ndarray:
        """Smooth 2-D field from the mode bank at time step ``t``."""
        kx, ky, phase, omega, amp = self._modes[name]
        # (modes, 1, 1) phases against (lat, lon) grids — fully vectorized.
        arg = (
            kx[:, None, None] * self._x[None]
            + ky[:, None, None] * self._y[None]
            + (phase + omega * t)[:, None, None]
        )
        return np.tensordot(amp, np.cos(arg), axes=(0, 0))

    def _river_mask_2d(self, t: int) -> np.ndarray:
        """Sum of filament moisture enhancements at step ``t`` (>= 0)."""
        total = np.zeros(self.grid.shape2d, dtype=np.float64)
        for river in self._rivers:
            age = t % river["period_steps"]
            if age > river["duty"] * river["period_steps"]:
                continue  # river is between life cycles
            center_lon = (river["lon0"] + river["speed_deg_per_step"] * t + 180.0) % 360.0 - 180.0
            dlon = (self._lon2d - center_lon + 180.0) % 360.0 - 180.0
            path_lat = river["base_lat"] + river["meander_amp"] * np.sin(
                np.deg2rad(river["meander_k"] * self._lon2d) + 0.05 * t
            )
            dlat = self._lat2d - path_lat
            ridge = np.exp(
                -(dlat**2) / (2 * river["width_deg"] ** 2)
                - (dlon**2) / (2 * river["length_deg"] ** 2)
            )
            total += river["intensity"] * ridge
        return total

    # -- public API ---------------------------------------------------------------

    def fields(self, t: int) -> dict[str, np.ndarray]:
        """All granule variables at time step ``t``.

        Returns 3-D ``(nlev, nlat, nlon)`` arrays for U/V/QV/T/H and 2-D
        arrays for PS/SLP, all ``float32``.
        """
        g = self.grid
        levels = g.levels_hpa
        # Vertical structure: winds strengthen aloft; moisture decays.
        wind_profile = (1.0 + 1.5 * (1.0 - levels / 1000.0))[:, None, None]
        qv_profile = np.exp(-(1000.0 - levels) / _MOISTURE_SCALE_HPA)[:, None, None]

        u2 = 8.0 + 6.0 * self._background("U", t)
        v2 = 4.0 * self._background("V", t)
        rivers = self._river_mask_2d(t)
        # Filaments carry enhanced moisture and along-filament wind.
        qv2 = np.clip(0.004 + 0.003 * self._background("QV", t), 0.0, None) + 0.004 * rivers
        u2 = u2 + 4.0 * rivers
        t2 = 288.0 + 25.0 * np.cos(np.deg2rad(self._lat2d)) + 3.0 * self._background("T", t)

        out = {
            "U": (u2[None] * wind_profile).astype(np.float32),
            "V": (v2[None] * wind_profile).astype(np.float32),
            "QV": (qv2[None] * qv_profile).astype(np.float32),
            "T": (t2[None] * np.ones((g.nlev, 1, 1))).astype(np.float32),
            "H": (7000.0 * np.log(1000.0 / levels)[:, None, None]
                  * np.ones(g.shape2d)[None]).astype(np.float32),
            "PS": (101325.0 - 12.0 * self._lat2d**2 / 90.0).astype(np.float32),
            "SLP": (101325.0 + 200.0 * self._background("T", t)).astype(np.float32),
        }
        return out

    #: Variables the IVT computation needs (the THREDDS subset).
    IVT_VARIABLES = ("U", "V", "QV")

    def granule(self, t: int, name: str | None = None):
        """Build a full NetCDF-like granule for time step ``t``."""
        from repro.data.netcdf import NetCDFFile

        fields = self.fields(t)
        f = NetCDFFile(
            name or f"MERRA2.inst3_3d_asm_Np.t{t:06d}.nc4",
            attrs={"collection": "M2I3NPASM", "t_index": t},
        )
        for var, data in fields.items():
            dims = (
                ("lev", "lat", "lon") if data.ndim == 3 else ("lat", "lon")
            )
            f.add_variable(var, dims, data=data)
        return f

    def ground_truth_mask(self, t: int, threshold: float = 0.8) -> np.ndarray:
        """Binary atmospheric-river mask at step ``t``.

        This is the analog of the CONNECT training dataset: "segmented IVT
        objects in binary label representation" (§III-B) — here derived
        from the generator's own filament geometry, so labels are exact.
        """
        return (self._river_mask_2d(t) >= threshold).astype(np.uint8)

    def ivt_field(self, t: int) -> np.ndarray:
        """IVT magnitude (kg m^-1 s^-1) at step ``t`` (2-D)."""
        from repro.data.ivt import ivt_magnitude

        f = self.fields(t)
        return ivt_magnitude(
            f["U"], f["V"], f["QV"], self.grid.levels_hpa
        )

    def ivt_volume(self, t0: int, nt: int) -> np.ndarray:
        """Stacked IVT magnitude over ``nt`` consecutive steps:
        shape ``(nt, nlat, nlon)`` — the FFN's input volume."""
        return np.stack([self.ivt_field(t0 + k) for k in range(nt)])

    def label_volume(self, t0: int, nt: int, threshold: float = 0.8) -> np.ndarray:
        """Stacked ground-truth masks over ``nt`` steps."""
        return np.stack(
            [self.ground_truth_mask(t0 + k, threshold) for k in range(nt)]
        )
