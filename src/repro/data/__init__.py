"""Synthetic NASA MERRA-2-like data and the IVT pipeline.

The paper's case study (§III) consumes "455GB of 3-hourly, NASA
Modern-Era Retrospective Analysis for Research and Applications, Version 2
(MERRA V2) dataset from January 1, 1980 to May 31, 2018 ... a 3-D spatial
grid at full horizontal resolution ... 0.5 x 0.625 in latitude and
longitude (i.e., global resolution of 576x361 pixels), and 42 vertical
levels", from which Integrated Water Vapor Transport (IVT) is computed
(collection M2I3NPASM).

We cannot ship NASA's archive, so this package provides:

- :mod:`repro.data.netcdf` — an in-memory NetCDF-like container with
  variable subsetting (what THREDDS's subset tool operates on).
- :mod:`repro.data.merra` — a seeded synthetic generator producing
  spatially smooth, temporally coherent wind/humidity fields with
  atmospheric-river-like moisture filaments, at paper scale or any
  laptop-scale fraction.
- :mod:`repro.data.ivt` — vectorized IVT computation (pressure-integrated
  moisture flux) used both to build inputs and as segmentation signal.
- :mod:`repro.data.catalog` — the archive catalog: 112,249 3-hourly
  granules totalling 455 GB (246 GB for the IVT-relevant subset), which
  drives the transfer simulation at paper scale.
- :mod:`repro.data.tfrecord` — the protobuf/TFRecord-like serializer the
  training step feeds (§III-E.1), with real byte-level round-tripping.
"""

from repro.data.netcdf import NetCDFFile, NetCDFVariable
from repro.data.merra import MerraGenerator, GridSpec, PAPER_GRID
from repro.data.ivt import integrated_vapor_transport, ivt_magnitude
from repro.data.catalog import MerraArchive, GranuleInfo
from repro.data.tfrecord import TFRecordWriter, TFRecordReader, VolumeExample

__all__ = [
    "NetCDFFile",
    "NetCDFVariable",
    "MerraGenerator",
    "GridSpec",
    "PAPER_GRID",
    "integrated_vapor_transport",
    "ivt_magnitude",
    "MerraArchive",
    "GranuleInfo",
    "TFRecordWriter",
    "TFRecordReader",
    "VolumeExample",
]
