"""Integrated Water Vapor Transport (IVT).

IVT is the vertically integrated horizontal moisture flux:

.. math::

    \\mathrm{IVT} = \\frac{1}{g}\\sqrt{
        \\Big(\\int q\\,u\\,dp\\Big)^2 + \\Big(\\int q\\,v\\,dp\\Big)^2 }

with :math:`q` specific humidity (kg/kg), :math:`u, v` winds (m/s), and
the integral over pressure (Pa).  The case study "is used ... for
calculating Integrated Water Vapor Transport (IVT) from the assimilated
meteorological field data archive (M2I3NPASM)" (§III).

Everything here is vectorized over the horizontal grid; the integrals are
trapezoidal over the (irregular, log-spaced) pressure levels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["integrated_vapor_transport", "ivt_magnitude"]

_GRAVITY = 9.80665  # m s^-2


def _validate(u: np.ndarray, v: np.ndarray, qv: np.ndarray, levels_hpa: np.ndarray):
    u, v, qv = np.asarray(u), np.asarray(v), np.asarray(qv)
    levels = np.asarray(levels_hpa, dtype=np.float64)
    if not (u.shape == v.shape == qv.shape):
        raise ShapeError(f"u/v/qv shapes differ: {u.shape}, {v.shape}, {qv.shape}")
    if u.ndim != 3:
        raise ShapeError(f"expected (nlev, nlat, nlon) arrays, got {u.shape}")
    if levels.ndim != 1 or levels.shape[0] != u.shape[0]:
        raise ShapeError(
            f"levels has {levels.shape} but fields have {u.shape[0]} levels"
        )
    return u, v, qv, levels


def integrated_vapor_transport(
    u: np.ndarray,
    v: np.ndarray,
    qv: np.ndarray,
    levels_hpa: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Zonal and meridional IVT components (kg m^-1 s^-1).

    Parameters
    ----------
    u, v:
        Winds on pressure levels, shape ``(nlev, nlat, nlon)``.
    qv:
        Specific humidity on the same grid.
    levels_hpa:
        Pressure levels in hPa (any monotonic order).

    Returns
    -------
    (ivt_u, ivt_v):
        2-D component fields of shape ``(nlat, nlon)``.
    """
    u, v, qv, levels = _validate(u, v, qv, levels_hpa)
    pressure_pa = levels * 100.0
    order = np.argsort(pressure_pa)  # integrate from low to high pressure
    p = pressure_pa[order]
    qu = qv[order] * u[order]
    qiv = qv[order] * v[order]
    # np.trapezoid integrates along axis 0 with the irregular spacing of p.
    ivt_u = np.trapezoid(qu, x=p, axis=0) / _GRAVITY
    ivt_v = np.trapezoid(qiv, x=p, axis=0) / _GRAVITY
    return ivt_u, ivt_v


def ivt_magnitude(
    u: np.ndarray,
    v: np.ndarray,
    qv: np.ndarray,
    levels_hpa: np.ndarray,
) -> np.ndarray:
    """IVT magnitude field, shape ``(nlat, nlon)``, in kg m^-1 s^-1."""
    ivt_u, ivt_v = integrated_vapor_transport(u, v, qv, levels_hpa)
    # hypot avoids overflow and an intermediate square allocation.
    return np.hypot(ivt_u, ivt_v).astype(np.float32)
