"""Protobuf/TFRecord-like serialization for training volumes.

Paper §III-E.1: "the input to this system is translated from NetCDF files
to a binary representation in a protocol buffer file (protobuf) format.
This file representation is used to structure the data and quickly access
it in a serialized form."

We implement a real binary record format (not a mock): length-prefixed
records with a CRC-style checksum, each record a typed header plus raw
little-endian array bytes.  Round-tripping is exact, and the writer is
the unit of work the distributed-preprocessing extension parallelizes.
"""

from __future__ import annotations

import dataclasses
import io
import struct
import typing as _t
import zlib

import numpy as np

from repro.errors import MLError

__all__ = ["VolumeExample", "TFRecordWriter", "TFRecordReader"]

_MAGIC = b"RPRT"  # repro-record
_HEADER = struct.Struct("<4sI")  # magic, payload length
_CRC = struct.Struct("<I")


@dataclasses.dataclass
class VolumeExample:
    """One serialized training example: a volume + its label mask."""

    volume: np.ndarray
    label: np.ndarray
    meta: dict[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        self.volume = np.ascontiguousarray(self.volume)
        self.label = np.ascontiguousarray(self.label)
        if self.volume.shape != self.label.shape:
            raise MLError(
                f"volume {self.volume.shape} and label {self.label.shape} differ"
            )


def _pack_array(arr: np.ndarray) -> bytes:
    dtype = arr.dtype.str.encode()
    shape = arr.shape
    head = struct.pack("<B", len(dtype)) + dtype
    head += struct.pack("<B", len(shape)) + struct.pack(f"<{len(shape)}q", *shape)
    return head + arr.tobytes()


def _unpack_array(buf: memoryview, offset: int) -> tuple[np.ndarray, int]:
    (dlen,) = struct.unpack_from("<B", buf, offset)
    offset += 1
    dtype = bytes(buf[offset : offset + dlen]).decode()
    offset += dlen
    (ndim,) = struct.unpack_from("<B", buf, offset)
    offset += 1
    shape = struct.unpack_from(f"<{ndim}q", buf, offset)
    offset += 8 * ndim
    count = int(np.prod(shape)) if ndim else 1
    arr = np.frombuffer(buf, dtype=dtype, count=count, offset=offset).reshape(shape)
    offset += arr.nbytes
    return arr.copy(), offset


def _pack_meta(meta: dict[str, object]) -> bytes:
    items = []
    for key, value in sorted(meta.items()):
        k = str(key).encode()
        v = repr(value).encode()
        items.append(struct.pack("<HH", len(k), len(v)) + k + v)
    return struct.pack("<H", len(items)) + b"".join(items)


def _unpack_meta(buf: memoryview, offset: int) -> tuple[dict[str, object], int]:
    import ast

    (count,) = struct.unpack_from("<H", buf, offset)
    offset += 2
    meta: dict[str, object] = {}
    for _ in range(count):
        klen, vlen = struct.unpack_from("<HH", buf, offset)
        offset += 4
        key = bytes(buf[offset : offset + klen]).decode()
        offset += klen
        raw = bytes(buf[offset : offset + vlen]).decode()
        offset += vlen
        meta[key] = ast.literal_eval(raw)
    return meta, offset


class TFRecordWriter:
    """Write :class:`VolumeExample` records to a byte stream."""

    def __init__(self, stream: io.BytesIO | None = None):
        self.stream = stream if stream is not None else io.BytesIO()
        self.records_written = 0
        self.bytes_written = 0

    def write(self, example: VolumeExample) -> int:
        """Append one record; returns its on-wire size in bytes."""
        payload = (
            _pack_array(example.volume)
            + _pack_array(example.label)
            + _pack_meta(example.meta)
        )
        record = _HEADER.pack(_MAGIC, len(payload)) + payload
        record += _CRC.pack(zlib.crc32(payload))
        self.stream.write(record)
        self.records_written += 1
        self.bytes_written += len(record)
        return len(record)

    def getvalue(self) -> bytes:
        """All bytes written so far (only for BytesIO-backed writers)."""
        return self.stream.getvalue()


class TFRecordReader:
    """Read records back, verifying checksums."""

    def __init__(self, data: bytes):
        self.data = memoryview(data)

    def __iter__(self) -> _t.Iterator[VolumeExample]:
        offset = 0
        n = len(self.data)
        while offset < n:
            magic, length = _HEADER.unpack_from(self.data, offset)
            if magic != _MAGIC:
                raise MLError(f"bad record magic at offset {offset}")
            offset += _HEADER.size
            payload = self.data[offset : offset + length]
            offset += length
            (crc,) = _CRC.unpack_from(self.data, offset)
            offset += _CRC.size
            if zlib.crc32(payload) != crc:
                raise MLError(f"checksum mismatch at offset {offset}")
            pos = 0
            volume, pos = _unpack_array(payload, pos)
            label, pos = _unpack_array(payload, pos)
            meta, pos = _unpack_meta(payload, pos)
            yield VolumeExample(volume=volume, label=label, meta=meta)

    def read_all(self) -> list[VolumeExample]:
        return list(self)
