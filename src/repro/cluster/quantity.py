"""Kubernetes-style resource quantities.

Kubernetes expresses CPU as cores with a milli-suffix (``"500m"`` = half a
core) and memory as bytes with binary or decimal suffixes (``"96Gi"``,
``"1.5G"``).  This module parses and formats those forms so node specs and
pod requests read exactly like the manifests the paper's workflow used.
"""

from __future__ import annotations

import re

from repro.errors import InvalidQuantityError

__all__ = [
    "parse_cpu",
    "parse_memory",
    "format_cpu",
    "format_memory",
    "Quantity",
    "GiB",
    "MiB",
    "KiB",
    "TiB",
]

KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4

_BINARY_SUFFIXES = {
    "Ki": 1024,
    "Mi": 1024**2,
    "Gi": 1024**3,
    "Ti": 1024**4,
    "Pi": 1024**5,
}
_DECIMAL_SUFFIXES = {
    "k": 10**3,
    "K": 10**3,
    "M": 10**6,
    "G": 10**9,
    "T": 10**12,
    "P": 10**15,
}

_QTY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([A-Za-z]{0,2})\s*$")


def parse_cpu(value: "float | int | str") -> float:
    """Parse a CPU quantity into cores.

    >>> parse_cpu("500m")
    0.5
    >>> parse_cpu(2)
    2.0
    >>> parse_cpu("1.5")
    1.5
    """
    if isinstance(value, (int, float)):
        cores = float(value)
    else:
        match = _QTY_RE.match(value)
        if not match:
            raise InvalidQuantityError(f"bad CPU quantity: {value!r}")
        number, suffix = match.groups()
        if suffix == "m":
            cores = float(number) / 1000.0
        elif suffix == "":
            cores = float(number)
        else:
            raise InvalidQuantityError(f"bad CPU suffix in {value!r}")
    if cores < 0:
        raise InvalidQuantityError(f"negative CPU quantity: {value!r}")
    return cores


def parse_memory(value: "float | int | str") -> int:
    """Parse a memory quantity into bytes.

    >>> parse_memory("96Gi") == 96 * 1024**3
    True
    >>> parse_memory("1.5G")
    1500000000
    >>> parse_memory(1024)
    1024
    """
    if isinstance(value, (int, float)):
        nbytes = float(value)
    else:
        match = _QTY_RE.match(value)
        if not match:
            raise InvalidQuantityError(f"bad memory quantity: {value!r}")
        number, suffix = match.groups()
        if suffix == "":
            nbytes = float(number)
        elif suffix in _BINARY_SUFFIXES:
            nbytes = float(number) * _BINARY_SUFFIXES[suffix]
        elif suffix in _DECIMAL_SUFFIXES:
            nbytes = float(number) * _DECIMAL_SUFFIXES[suffix]
        else:
            raise InvalidQuantityError(f"bad memory suffix in {value!r}")
    if nbytes < 0:
        raise InvalidQuantityError(f"negative memory quantity: {value!r}")
    return int(nbytes)


def format_cpu(cores: float) -> str:
    """Render cores in the compact Kubernetes form.

    >>> format_cpu(0.5)
    '500m'
    >>> format_cpu(4.0)
    '4'
    """
    if cores == int(cores):
        return str(int(cores))
    return f"{int(round(cores * 1000))}m"


def format_memory(nbytes: "int | float") -> str:
    """Render bytes with the largest exact-enough binary suffix.

    >>> format_memory(96 * 1024**3)
    '96.0Gi'
    """
    nbytes = float(nbytes)
    for suffix in ("Pi", "Ti", "Gi", "Mi", "Ki"):
        unit = _BINARY_SUFFIXES[suffix]
        if nbytes >= unit:
            return f"{nbytes / unit:.1f}{suffix}"
    return f"{int(nbytes)}"


class Quantity:
    """A typed (cpu | memory | count) resource amount.

    Mostly a convenience for tests and pretty-printing; the hot paths use
    plain floats/ints produced by :func:`parse_cpu` / :func:`parse_memory`.
    """

    __slots__ = ("kind", "amount")

    def __init__(self, kind: str, amount: float):
        if kind not in ("cpu", "memory", "count"):
            raise InvalidQuantityError(f"unknown quantity kind {kind!r}")
        self.kind = kind
        self.amount = float(amount)

    @classmethod
    def cpu(cls, value: "float | str") -> "Quantity":
        return cls("cpu", parse_cpu(value))

    @classmethod
    def memory(cls, value: "float | str") -> "Quantity":
        return cls("memory", parse_memory(value))

    @classmethod
    def count(cls, value: int) -> "Quantity":
        if value < 0 or value != int(value):
            raise InvalidQuantityError(f"bad count: {value!r}")
        return cls("count", int(value))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Quantity)
            and self.kind == other.kind
            and self.amount == other.amount
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.amount))

    def __add__(self, other: "Quantity") -> "Quantity":
        if not isinstance(other, Quantity) or other.kind != self.kind:
            raise InvalidQuantityError("cannot add quantities of mixed kinds")
        return Quantity(self.kind, self.amount + other.amount)

    def __repr__(self) -> str:
        if self.kind == "cpu":
            return f"Quantity(cpu={format_cpu(self.amount)})"
        if self.kind == "memory":
            return f"Quantity(memory={format_memory(self.amount)})"
        return f"Quantity(count={int(self.amount)})"
