"""Workload controllers: Job (run-to-completion) and ReplicaSet.

The paper's workflow steps run as Kubernetes **Jobs** ("for a workflow it
is usually the Job resource that is most prevalent because it can execute
batch process at scale", §V) and the distributed-training extension uses a
**ReplicaSet** (§III-E.2).  Controllers here are reconciled by the
cluster's control loop: whenever a pod terminates or a node fails, the
cluster calls :meth:`reconcile` and the controller creates replacement or
successor pods to drive actual state toward desired state — the
"declare what, not how" behaviour §V highlights.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from repro.cluster.objects import ObjectMeta
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.errors import ValidationError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.sim import Event

__all__ = [
    "JobSpec",
    "JobStatus",
    "Job",
    "ReplicaSetSpec",
    "ReplicaSet",
    "DaemonSetSpec",
    "DaemonSet",
]


class JobStatus(enum.Enum):
    ACTIVE = "Active"
    COMPLETE = "Complete"
    FAILED = "Failed"


@dataclasses.dataclass
class JobSpec:
    """Desired behaviour of a batch job.

    Parameters
    ----------
    template:
        ``template(index) -> PodSpec`` — builds the pod for completion
        index ``index`` (0-based).  Indexed semantics: each index must
        succeed exactly once.
    completions:
        Number of indices that must succeed.
    parallelism:
        Maximum concurrently-running pods.
    backoff_limit:
        Pod failures tolerated before the whole job is marked Failed.
    """

    template: _t.Callable[[int], PodSpec]
    completions: int = 1
    parallelism: int = 1
    backoff_limit: int = 6

    def __post_init__(self) -> None:
        if self.completions < 1:
            raise ValidationError("completions must be >= 1")
        if self.parallelism < 1:
            raise ValidationError("parallelism must be >= 1")
        if self.backoff_limit < 0:
            raise ValidationError("backoff_limit must be >= 0")


class Job:
    """A run-to-completion batch controller.

    Create through :meth:`repro.cluster.Cluster.create_job`.  Wait for it
    inside a simulated process with ``yield job.completion_event``.
    """

    def __init__(self, meta: ObjectMeta, spec: JobSpec, cluster: "Cluster"):
        self.meta = meta
        self.spec = spec
        self._cluster = cluster
        self.status = JobStatus.ACTIVE
        self.succeeded_indices: set[int] = set()
        self.failed_count = 0
        #: live pods by completion index
        self.active: dict[int, Pod] = {}
        self.start_time: float = cluster.env.now
        self.finish_time: float | None = None
        #: results returned by each index's successful pod
        self.results: dict[int, object] = {}
        self.completion_event: "Event" = cluster.env.event()
        self._pod_serial = 0

    # -- status ----------------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        return self.status is JobStatus.COMPLETE

    @property
    def is_failed(self) -> bool:
        return self.status is JobStatus.FAILED

    @property
    def active_count(self) -> int:
        return len(self.active)

    # -- reconciliation ----------------------------------------------------------

    def reconcile(self) -> None:
        """Drive actual state toward the spec (called by the control loop)."""
        if self.status is not JobStatus.ACTIVE:
            return
        # Absorb terminated pods.
        for index, pod in list(self.active.items()):
            if pod.phase is PodPhase.SUCCEEDED:
                del self.active[index]
                self.succeeded_indices.add(index)
                self.results[index] = pod.result
            elif pod.phase is PodPhase.FAILED:
                del self.active[index]
                self.failed_count += 1

        if self.failed_count > self.spec.backoff_limit:
            self._finish(JobStatus.FAILED)
            return
        if len(self.succeeded_indices) >= self.spec.completions:
            self._finish(JobStatus.COMPLETE)
            return

        # Launch pods for incomplete indices up to the parallelism cap.
        for index in range(self.spec.completions):
            if len(self.active) >= self.spec.parallelism:
                break
            if index in self.succeeded_indices or index in self.active:
                continue
            self._pod_serial += 1
            pod_spec = self.spec.template(index)
            name = f"{self.meta.name}-{index}-{self._pod_serial}"
            pod = self._cluster.create_pod(
                name=name,
                spec=pod_spec,
                namespace=self.meta.namespace,
                labels={"job-name": self.meta.name, **self.meta.labels},
            )
            pod.owner_uid = self.meta.uid
            self.active[index] = pod

    def _finish(self, status: JobStatus) -> None:
        self.status = status
        self.finish_time = self._cluster.env.now
        # Tear down any stragglers (relevant on failure).
        for pod in self.active.values():
            self._cluster.delete_pod(pod)
        self.active.clear()
        self._cluster.record_event(
            kind="Job",
            name=self.meta.name,
            namespace=self.meta.namespace,
            reason=status.value,
            message=(
                f"{len(self.succeeded_indices)}/{self.spec.completions} "
                f"succeeded, {self.failed_count} pod failures"
            ),
        )
        if status is JobStatus.COMPLETE:
            self.completion_event.succeed(self.results)
        else:
            from repro.errors import StepFailedError

            self.completion_event.fail(
                StepFailedError(self.meta.name, "backoff limit exceeded")
            )

    @property
    def duration(self) -> float | None:
        """Wall-clock (virtual) duration, once finished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def __repr__(self) -> str:
        return (
            f"<Job {self.meta.namespace}/{self.meta.name} {self.status.value} "
            f"{len(self.succeeded_indices)}/{self.spec.completions}>"
        )


@dataclasses.dataclass
class ReplicaSetSpec:
    """Desired state: ``replicas`` copies of the template pod running."""

    template: _t.Callable[[int], PodSpec]
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.replicas < 0:
            raise ValidationError("replicas must be >= 0")


class ReplicaSet:
    """Keeps ``replicas`` pods alive; replaces any that terminate.

    Used for long-running services and for the distributed-TensorFlow
    training clients of §III-E.2 ("A ReplicaSet would be used because we
    would have a single client image that would need to be scaled").
    """

    def __init__(self, meta: ObjectMeta, spec: ReplicaSetSpec, cluster: "Cluster"):
        self.meta = meta
        self.spec = spec
        self._cluster = cluster
        self.replicas: dict[int, Pod] = {}
        self.generation = 0
        self._deleted = False

    def scale(self, replicas: int) -> None:
        """Change the desired replica count ("scaling it up and down
        depending on our needs", §III-E.2)."""
        if replicas < 0:
            raise ValidationError("replicas must be >= 0")
        self.spec.replicas = replicas
        self.reconcile()

    def delete(self) -> None:
        """Tear down the replica set and all its pods."""
        self._deleted = True
        for pod in self.replicas.values():
            if not pod.is_terminal:
                self._cluster.delete_pod(pod)
        self.replicas.clear()

    def reconcile(self) -> None:
        if self._deleted:
            return
        # Drop terminated pods so they are replaced.
        for slot, pod in list(self.replicas.items()):
            if pod.is_terminal:
                del self.replicas[slot]
        # Scale down.
        while len(self.replicas) > self.spec.replicas:
            slot = max(self.replicas)
            pod = self.replicas.pop(slot)
            if not pod.is_terminal:
                self._cluster.delete_pod(pod)
        # Scale up.
        for slot in range(self.spec.replicas):
            if slot in self.replicas:
                continue
            self.generation += 1
            pod = self._cluster.create_pod(
                name=f"{self.meta.name}-{slot}-{self.generation}",
                spec=self.spec.template(slot),
                namespace=self.meta.namespace,
                labels={"replicaset": self.meta.name, **self.meta.labels},
            )
            pod.owner_uid = self.meta.uid
            self.replicas[slot] = pod

    @property
    def ready_count(self) -> int:
        """Replicas currently in the Running phase."""
        return sum(1 for p in self.replicas.values() if p.phase is PodPhase.RUNNING)

    def __repr__(self) -> str:
        return (
            f"<ReplicaSet {self.meta.namespace}/{self.meta.name} "
            f"{self.ready_count}/{self.spec.replicas} ready>"
        )


@dataclasses.dataclass
class DaemonSetSpec:
    """One pod on every (matching) ready node.

    The pattern behind per-node agents: Prometheus node exporters, the
    GPU device plugin itself, log shippers.  ``template(node_name)``
    builds the pod for a node; ``node_selector`` restricts which nodes
    get one (e.g. only GPU nodes).
    """

    template: _t.Callable[[str], PodSpec]
    node_selector: dict[str, str] = dataclasses.field(default_factory=dict)


class DaemonSet:
    """Keeps exactly one pod per matching ready node.

    Nodes joining the cluster receive a pod on the next reconcile; a
    failed node's pod is simply dropped (nothing to reschedule — the
    daemon is node-bound by definition).
    """

    def __init__(self, meta: ObjectMeta, spec: DaemonSetSpec, cluster: "Cluster"):
        self.meta = meta
        self.spec = spec
        self._cluster = cluster
        #: node name -> pod
        self.pods: dict[str, Pod] = {}
        self.generation = 0
        self._deleted = False

    def _matching_nodes(self) -> list[str]:
        out = []
        for node in self._cluster.ready_nodes():
            if node.unschedulable:
                continue
            if all(
                node.meta.labels.get(k) == v
                for k, v in self.spec.node_selector.items()
            ):
                out.append(node.spec.name)
        return out

    def delete(self) -> None:
        self._deleted = True
        for pod in self.pods.values():
            if not pod.is_terminal:
                self._cluster.delete_pod(pod)
        self.pods.clear()

    def reconcile(self) -> None:
        if self._deleted:
            return
        wanted = set(self._matching_nodes())
        # Drop pods for departed nodes / terminated daemons.
        for node_name, pod in list(self.pods.items()):
            if pod.is_terminal:
                del self.pods[node_name]
            elif node_name not in wanted:
                self._cluster.delete_pod(pod)
                del self.pods[node_name]
        # Add pods for new nodes, pinned via the hostname label.
        for node_name in sorted(wanted - set(self.pods)):
            self.generation += 1
            template = self.spec.template(node_name)
            spec = dataclasses.replace(
                template,
                node_selector={
                    **template.node_selector,
                    "kubernetes.io/hostname": node_name,
                },
            )
            pod = self._cluster.create_pod(
                f"{self.meta.name}-{node_name}-{self.generation}",
                spec,
                namespace=self.meta.namespace,
                labels={"daemonset": self.meta.name, **self.meta.labels},
            )
            pod.owner_uid = self.meta.uid
            self.pods[node_name] = pod

    @property
    def ready_count(self) -> int:
        return sum(
            1 for p in self.pods.values() if p.phase is PodPhase.RUNNING
        )

    def __repr__(self) -> str:
        return (
            f"<DaemonSet {self.meta.namespace}/{self.meta.name} "
            f"{self.ready_count}/{len(self._matching_nodes())} ready>"
        )
