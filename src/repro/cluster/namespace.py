"""Namespaces: virtual clusters inside the physical cluster (paper §IV).

Namespaces "divide the cluster resources between the set of users,
providing the capability to organize and segment the needs for each
project into its own virtual subsection of the cluster."  Each namespace
may carry a :class:`ResourceQuota` that caps the aggregate requests of
its admitted pods, and an administrator/user list that models the paper's
CILogon-backed "namespace administrator" role.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.objects import ResourceRequirements
from repro.errors import QuotaExceededError

__all__ = ["ResourceQuota", "Namespace"]


@dataclasses.dataclass
class ResourceQuota:
    """Aggregate caps on what a namespace's pods may request."""

    cpu: float = float("inf")
    memory: float = float("inf")
    gpu: float = float("inf")
    max_pods: float = float("inf")

    def admits(self, used: ResourceRequirements, pods: int, request: ResourceRequirements) -> bool:
        """Would admitting ``request`` keep the namespace within quota?"""
        return (
            used.cpu + request.cpu <= self.cpu + 1e-9
            and used.memory + request.memory <= self.memory
            and used.gpu + request.gpu <= self.gpu
            and pods + 1 <= self.max_pods
        )


class Namespace:
    """A virtual cluster: isolation scope for names, users and quota."""

    def __init__(
        self,
        name: str,
        quota: ResourceQuota | None = None,
        administrator: str = "",
        weight: float = 1.0,
    ):
        if weight <= 0:
            raise ValueError(f"namespace weight must be positive, got {weight}")
        self.name = name
        self.quota = quota or ResourceQuota()
        #: Fair-share weight: the scheduler orders pending pods so each
        #: namespace's dominant-resource share converges toward its
        #: weight's fraction of the contended pool (weight 2 earns twice
        #: the share of weight 1 before waiting behind it).
        self.weight = weight
        #: The PI granted the "namespace administrator" role (§IV).
        self.administrator = administrator
        #: CILogon-authenticated identities admitted by the administrator.
        self.users: set[str] = {administrator} if administrator else set()
        self.used = ResourceRequirements()
        self.pod_count = 0

    def add_user(self, identity: str, added_by: str) -> None:
        """Admit a federated identity; only the administrator may do so."""
        if added_by != self.administrator:
            raise PermissionError(
                f"{added_by!r} is not the administrator of namespace {self.name!r}"
            )
        self.users.add(identity)

    def admit(self, request: ResourceRequirements) -> None:
        """Charge a pod's request against the quota (raises if exceeded)."""
        if not self.quota.admits(self.used, self.pod_count, request):
            raise QuotaExceededError(
                f"namespace {self.name!r} quota exceeded by request {request!r} "
                f"(used cpu={self.used.cpu}, mem={self.used.memory}, "
                f"gpu={self.used.gpu}, pods={self.pod_count})"
            )
        self.used = self.used + request
        self.pod_count += 1

    def release(self, request: ResourceRequirements) -> None:
        """Return a terminated pod's charge."""
        self.used = ResourceRequirements(
            cpu=max(0.0, self.used.cpu - request.cpu),
            memory=max(0, self.used.memory - request.memory),
            gpu=max(0, self.used.gpu - request.gpu),
            ephemeral_storage=max(
                0, self.used.ephemeral_storage - request.ephemeral_storage
            ),
        )
        self.pod_count = max(0, self.pod_count - 1)

    def __repr__(self) -> str:
        return f"<Namespace {self.name} pods={self.pod_count}>"
