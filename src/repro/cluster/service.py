"""Services: stable names for dynamic pod groups.

Paper §III-E.2: "Hostnames will be used instead of IP addresses by
creating a service and providing a much more dynamic way of communicating
to a pod even if its IP address changes."  A :class:`Service` resolves a
label selector to the current set of running pods; endpoints update as
pods come and go, so callers never hold a stale address.

Cross-namespace access requires the fully-qualified form
``<service>.<namespace>.svc.cluster.local`` (§IV).
"""

from __future__ import annotations

import typing as _t

from repro.cluster.objects import ObjectMeta
from repro.cluster.pod import Pod, PodPhase

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster

__all__ = ["Service"]


class Service:
    """A named, selector-based endpoint set."""

    def __init__(self, meta: ObjectMeta, selector: dict[str, str], cluster: "Cluster"):
        self.meta = meta
        self.selector = dict(selector)
        self._cluster = cluster

    @property
    def hostname(self) -> str:
        """Cluster-internal DNS name."""
        return f"{self.meta.name}.{self.meta.namespace}.svc.cluster.local"

    def endpoints(self) -> list[Pod]:
        """Running pods currently matching the selector (sorted by name)."""
        pods = [
            pod
            for pod in self._cluster.list_pods(namespace=self.meta.namespace)
            if pod.phase is PodPhase.RUNNING and pod.meta.matches(self.selector)
        ]
        return sorted(pods, key=lambda p: p.meta.name)

    def resolve(self) -> Pod | None:
        """Pick one ready endpoint (round-robin by call count)."""
        eps = self.endpoints()
        if not eps:
            return None
        self._rr = getattr(self, "_rr", -1) + 1
        return eps[self._rr % len(eps)]

    def __repr__(self) -> str:
        return f"<Service {self.hostname} -> {len(self.endpoints())} endpoints>"
