"""Cluster nodes: FIONA appliances and their resource accounting.

The PRP's Data Transfer Nodes are "FIONAs" (Flash I/O Network Appliances);
CHASE-CI adds multi-tenant "FIONA8" machines with eight game GPUs each
(paper §II).  :func:`fiona_node_spec` and :func:`fiona8_node_spec` build
the specs the paper describes: dual 12-core CPUs, 96 GB RAM, 1 TB SSD and
two 10 GbE interfaces for the basic Calit2 FIONA.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.objects import GPU_RESOURCE, ObjectMeta, ResourceRequirements
from repro.cluster.quantity import GiB, TiB, parse_cpu, parse_memory
from repro.errors import ClusterError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.pod import Pod

__all__ = ["NodeSpec", "Node", "GPUDevice", "fiona_node_spec", "fiona8_node_spec"]


@dataclasses.dataclass
class NodeSpec:
    """Static description of a machine joining the cluster."""

    name: str
    cpu: float  # cores
    memory: int  # bytes
    gpus: int = 0
    gpu_model: str = ""
    local_storage: int = 0  # bytes of local SSD/NVMe
    nics_gbps: tuple[float, ...] = (10.0,)
    site: str = "UCSD"
    labels: dict[str, str] = dataclasses.field(default_factory=dict)
    taints: dict[str, str] = dataclasses.field(default_factory=dict)
    image_pull_seconds: float = 15.0  # cold-pull time for an uncached image


@dataclasses.dataclass
class GPUDevice:
    """One physical GPU exposed by the device plugin (§II-A)."""

    index: int
    model: str
    node_name: str
    allocated_to: str | None = None  # pod uid, when in use

    @property
    def device_id(self) -> str:
        return f"{self.node_name}/gpu{self.index}"


class Node:
    """A schedulable machine with resource accounting and a device plugin.

    Tracks allocatable capacity, the pods bound to it, the set of container
    images already pulled (for image-locality scoring and pull-time
    simulation), and per-GPU allocation.
    """

    def __init__(self, spec: NodeSpec):
        self.spec = spec
        self.meta = ObjectMeta(
            name=spec.name,
            namespace="",  # nodes are cluster-scoped
            labels=dict(spec.labels),
        )
        self.meta.labels.setdefault("kubernetes.io/hostname", spec.name)
        self.meta.labels.setdefault("site", spec.site)
        if spec.gpus:
            self.meta.labels.setdefault("gpu-model", spec.gpu_model or "generic")
        self.capacity = ResourceRequirements(
            cpu=spec.cpu,
            memory=spec.memory,
            gpu=spec.gpus,
            ephemeral_storage=spec.local_storage,
        )
        self.allocated = ResourceRequirements()
        self.pods: dict[str, "Pod"] = {}  # pod uid -> pod
        self.ready: bool = True
        #: Cordoned nodes stay Ready (their pods keep running) but accept
        #: no new pods — the `kubectl cordon` semantics.
        self.unschedulable: bool = False
        self.image_cache: set[str] = set()
        self.devices: list[GPUDevice] = [
            GPUDevice(index=i, model=spec.gpu_model or "generic", node_name=spec.name)
            for i in range(spec.gpus)
        ]

    # -- capacity ------------------------------------------------------------

    @property
    def free(self) -> ResourceRequirements:
        """Unallocated capacity."""
        return ResourceRequirements(
            cpu=self.capacity.cpu - self.allocated.cpu,
            memory=self.capacity.memory - self.allocated.memory,
            gpu=self.capacity.gpu - self.allocated.gpu,
            ephemeral_storage=(
                self.capacity.ephemeral_storage - self.allocated.ephemeral_storage
            ),
        )

    def can_fit(self, request: ResourceRequirements) -> bool:
        """Would ``request`` fit in the remaining capacity?"""
        return request.fits_within(self.free)

    def allocate(self, pod: "Pod") -> None:
        """Reserve a pod's total request on this node and assign GPUs."""
        request = pod.spec.total_request()
        if not self.can_fit(request):
            raise ClusterError(
                f"node {self.spec.name} cannot fit pod {pod.meta.name}: "
                f"request {request!r}, free {self.free!r}"
            )
        self.allocated = self.allocated + request
        self.pods[pod.meta.uid] = pod
        if request.gpu:
            assigned: list[GPUDevice] = []
            for device in self.devices:
                if device.allocated_to is None:
                    device.allocated_to = pod.meta.uid
                    assigned.append(device)
                    if len(assigned) == request.gpu:
                        break
            if len(assigned) != request.gpu:  # pragma: no cover - guarded above
                raise ClusterError("GPU accounting out of sync")
            pod.assigned_gpus = tuple(d.device_id for d in assigned)

    def release(self, pod: "Pod") -> None:
        """Free a pod's reservation (idempotent)."""
        if pod.meta.uid not in self.pods:
            return
        del self.pods[pod.meta.uid]
        request = pod.spec.total_request()
        self.allocated = ResourceRequirements(
            cpu=max(0.0, self.allocated.cpu - request.cpu),
            memory=max(0, self.allocated.memory - request.memory),
            gpu=max(0, self.allocated.gpu - request.gpu),
            ephemeral_storage=max(
                0, self.allocated.ephemeral_storage - request.ephemeral_storage
            ),
        )
        for device in self.devices:
            if device.allocated_to == pod.meta.uid:
                device.allocated_to = None

    # -- conditions -----------------------------------------------------------

    def gpu_in_use(self) -> int:
        """Number of GPUs currently allocated to pods."""
        return sum(1 for d in self.devices if d.allocated_to is not None)

    def extended_resources(self) -> dict[str, int]:
        """Extended resources advertised by device plugins."""
        return {GPU_RESOURCE: self.spec.gpus} if self.spec.gpus else {}

    def __repr__(self) -> str:
        state = "Ready" if self.ready else "NotReady"
        return (
            f"<Node {self.spec.name} [{state}] cpu={self.allocated.cpu:.1f}/"
            f"{self.capacity.cpu:.0f} gpu={self.allocated.gpu}/{self.capacity.gpu}>"
        )


def fiona_node_spec(
    name: str,
    site: str = "UCSD",
    *,
    nics_gbps: tuple[float, ...] = (10.0, 10.0),
    labels: dict[str, str] | None = None,
) -> NodeSpec:
    """The basic Calit2 FIONA (paper §II): dual 12-core CPUs, 96 GB RAM,
    1 TB SSD, two 10 GbE interfaces, no GPUs."""
    return NodeSpec(
        name=name,
        cpu=parse_cpu(24),
        memory=parse_memory(96 * GiB),
        gpus=0,
        local_storage=1 * TiB,
        nics_gbps=nics_gbps,
        site=site,
        labels={"fiona": "dtn", **(labels or {})},
    )


def fiona8_node_spec(
    name: str,
    site: str = "UCSD",
    *,
    gpu_model: str = "nvidia-1080ti",
    nics_gbps: tuple[float, ...] = (10.0,),
    labels: dict[str, str] | None = None,
) -> NodeSpec:
    """A multi-tenant FIONA8 (paper §II): eight game GPUs per machine.

    CPU/RAM follow the FIONA baseline; storage is NVMe-class.
    """
    return NodeSpec(
        name=name,
        cpu=parse_cpu(24),
        memory=parse_memory(96 * GiB),
        gpus=8,
        gpu_model=gpu_model,
        local_storage=2 * TiB,
        nics_gbps=nics_gbps,
        site=site,
        labels={"fiona": "fiona8", **(labels or {})},
    )
