"""The cluster: API-server facade, scheduling loop, kubelets, self-healing.

One :class:`Cluster` owns the registries of nodes, namespaces, pods, jobs,
replica sets and services, and drives three behaviours on the simulation
kernel:

- **Scheduling**: pending pods are bound to nodes via the two-phase
  :class:`~repro.cluster.scheduler.Scheduler` whenever cluster state
  changes (pod created, pod finished, node joined/recovered).
- **Kubelet execution**: a bound pod pulls cold images (simulated delay),
  runs its container generators as kernel processes, and reports a
  terminal phase.
- **Self-healing** (§V): nodes "can join and leave the cluster at any
  time"; on node failure every pod on it is marked failed with reason
  ``NodeLost`` and the owning controllers immediately create replacements
  on surviving nodes.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.controllers import (
    DaemonSet,
    DaemonSetSpec,
    Job,
    JobSpec,
    ReplicaSet,
    ReplicaSetSpec,
)
from repro.cluster.namespace import Namespace, ResourceQuota
from repro.cluster.node import Node, NodeSpec
from repro.cluster.objects import ClusterEvent, ObjectMeta
from repro.cluster.pod import Pod, PodContext, PodPhase, PodSpec, RestartPolicy
from repro.cluster.scheduler import Scheduler, SchedulingStrategy
from repro.cluster.service import Service
from repro.errors import (
    AdmissionError,
    ConflictError,
    NotFoundError,
    ProcessKilled,
    QuotaExceededError,
)
from repro.sim import Environment

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.monitoring.metrics import MetricRegistry
    from repro.tracing.span import Span, Tracer

__all__ = ["Cluster"]

#: Simulated latency between a pod binding and its containers starting
#: (API round-trips, cgroup setup, volume mounts).
POD_STARTUP_SECONDS = 2.0


class Cluster:
    """A Kubernetes-like cluster running on a simulation environment.

    Parameters
    ----------
    env:
        The discrete-event environment.
    name:
        Cluster name (the paper's is "Nautilus").
    scheduler:
        Placement policy; defaults to spread scheduling.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "nautilus",
        scheduler: Scheduler | None = None,
    ):
        self.env = env
        self.name = name
        self.scheduler = scheduler or Scheduler(SchedulingStrategy.SPREAD)
        self.nodes: dict[str, Node] = {}
        self.namespaces: dict[str, Namespace] = {"default": Namespace("default")}
        self.pods: dict[tuple[str, str], Pod] = {}
        self.jobs: dict[tuple[str, str], Job] = {}
        self.replicasets: dict[tuple[str, str], ReplicaSet] = {}
        self.daemonsets: dict[tuple[str, str], DaemonSet] = {}
        self.services: dict[tuple[str, str], Service] = {}
        self.events: list[ClusterEvent] = []
        # Incremental scheduling queue: pods land in the *active* list
        # and are tried once; failures park in the *unschedulable* list,
        # which is only re-activated when cluster state changes (node
        # joined/recovered/uncordoned, capacity freed) — so creating pod
        # N+1 doesn't rescan N parked pods.
        self._pending: list[Pod] = []
        self._unschedulable: list[Pod] = []
        self._requeue_pending = False
        self._kick_scheduled = False
        #: hooks called as (pod, old_phase, new_phase) on every transition
        self.phase_hooks: list[_t.Callable[[Pod, PodPhase, PodPhase], None]] = []
        #: optional registry for control-plane counters (liveness kills,
        #: lease expirations); the testbed wires this up.
        self.metrics: "MetricRegistry | None" = None
        #: optional span tracer (the testbed wires this up): each pod's
        #: lifecycle emits queueing → scheduling → running spans, so
        #: queueing and binpack latency are first-class trace data.
        self.tracer: "Tracer | None" = None
        self._pod_trace: dict[str, "Span"] = {}
        # Node-lease controller state (enable_node_leases).
        self._lease_missed: dict[str, int] = {}
        self._lease_failed: set[str] = set()
        self._lease_proc = None
        # Admission-lint state (enable_admission_lint): rule codes from
        # the static-analysis ``spec`` pack run against every incoming
        # pod/job spec, or None when the hook is off.
        self._admission_lint_codes: tuple[str, ...] | None = None

    def _count(self, metric: str, labels: dict[str, str] | None = None) -> None:
        if self.metrics is not None:
            self.metrics.inc_counter(metric, 1.0, labels)

    # ----------------------------------------------------------------- tracing

    def _pod_span_open(self, pod: Pod, category: str, **attributes) -> None:
        """Open this pod's next lifecycle span (closing the previous one).

        Parented under the span bound to the pod's namespace (the
        workflow driver binds each step's namespace to its step span), or
        the tracer's root when the namespace has no bound scope.
        """
        if self.tracer is None:
            return
        self._pod_span_close(pod)
        parent = self.tracer.scope_parent(pod.meta.namespace)
        self._pod_trace[pod.meta.uid] = self.tracer.start(
            pod.meta.name,
            category,
            parent=parent,
            attributes={
                "pod": pod.meta.name,
                "namespace": pod.meta.namespace,
                **attributes,
            },
        )

    def _pod_span_close(self, pod: Pod, status: str = "ok") -> None:
        if self.tracer is None:
            return
        span = self._pod_trace.pop(pod.meta.uid, None)
        if span is not None:
            self.tracer.finish(span, status=status)

    # ------------------------------------------------------------------ events

    def record_event(
        self,
        kind: str,
        name: str,
        reason: str,
        message: str = "",
        namespace: str = "default",
    ) -> None:
        """Append to the control-plane event log."""
        self.events.append(
            ClusterEvent(
                time=self.env.now,
                kind=kind,
                name=name,
                reason=reason,
                message=message,
                namespace=namespace,
            )
        )

    def events_for(self, kind: str, name: str | None = None) -> list[ClusterEvent]:
        """Filter the event log by object kind (and optionally name)."""
        return [
            e
            for e in self.events
            if e.kind == kind and (name is None or e.name == name)
        ]

    # ------------------------------------------------------------------- nodes

    def add_node(self, spec: NodeSpec) -> Node:
        """Join a machine to the cluster."""
        if spec.name in self.nodes:
            raise ConflictError(f"node {spec.name!r} already exists")
        node = Node(spec)
        self.nodes[spec.name] = node
        self.record_event("Node", spec.name, "NodeJoined", f"site={spec.site}")
        self._reconcile_all()  # daemonsets cover the new node immediately
        self._kick_scheduler(state_changed=True)
        return node

    def get_node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NotFoundError(f"no node {name!r}") from None

    def ready_nodes(self) -> list[Node]:
        """Nodes currently accepting pods, in deterministic name order."""
        return [self.nodes[k] for k in sorted(self.nodes) if self.nodes[k].ready]

    def fail_node(self, name: str) -> None:
        """Take a node offline; its pods fail and get rescheduled (§V)."""
        node = self.get_node(name)
        if not node.ready:
            return
        node.ready = False
        self.record_event("Node", name, "NodeLost", "node left the cluster")
        for pod in list(node.pods.values()):
            self._terminate_pod(pod, PodPhase.FAILED, reason="NodeLost")
        self._reconcile_all()
        self._kick_scheduler(state_changed=True)

    def cordon(self, name: str) -> None:
        """Mark a node unschedulable; running pods are untouched."""
        node = self.get_node(name)
        if node.unschedulable:
            return
        node.unschedulable = True
        self.record_event("Node", name, "Cordoned", "marked unschedulable")

    def uncordon(self, name: str) -> None:
        """Allow scheduling on a cordoned node again."""
        node = self.get_node(name)
        if not node.unschedulable:
            return
        node.unschedulable = False
        self.record_event("Node", name, "Uncordoned", "")
        self._kick_scheduler(state_changed=True)

    def drain(self, name: str) -> None:
        """Cordon a node and evict its pods for maintenance.

        Controllers immediately recreate the evicted pods on other nodes —
        the graceful variant of the §V node-departure story.
        """
        self.cordon(name)
        node = self.get_node(name)
        self.record_event("Node", name, "Draining", f"{len(node.pods)} pods")
        for pod in list(node.pods.values()):
            self._terminate_pod(pod, PodPhase.FAILED, reason="Drained")
        self._reconcile_all()
        self._kick_scheduler(state_changed=True)

    def recover_node(self, name: str) -> None:
        """Bring a failed node back."""
        node = self.get_node(name)
        if node.ready:
            return
        node.ready = True
        self.record_event("Node", name, "NodeReady", "node rejoined the cluster")
        self._reconcile_all()
        self._kick_scheduler(state_changed=True)

    def enable_node_leases(
        self,
        reachable: _t.Callable[[str], bool],
        interval_s: float = 15.0,
        grace_periods: int = 3,
    ) -> None:
        """Start the node heartbeat/lease controller.

        Every ``interval_s`` the control plane checks each node's
        heartbeat via ``reachable(node_name)`` (on the testbed this is a
        live topology-route check, so a network partition silences the
        node exactly like a crash).  After ``grace_periods`` consecutive
        missed heartbeats the node's lease expires: it transitions to
        NotReady through :meth:`fail_node` — the same code path as hard
        failure — and its pods are rescheduled.  A node whose heartbeats
        resume is automatically recovered, but only if the lease
        controller was what failed it.
        """
        if self._lease_proc is not None:
            raise ConflictError("node-lease controller already enabled")
        if interval_s <= 0 or grace_periods < 1:
            raise ValueError("need interval_s > 0 and grace_periods >= 1")
        self._lease_proc = self.env.process(
            self._lease_loop(reachable, interval_s, grace_periods),
            name="node-lease-controller",
        )

    def _lease_loop(
        self,
        reachable: _t.Callable[[str], bool],
        interval_s: float,
        grace_periods: int,
    ):
        while True:
            yield self.env.timeout(interval_s)
            for name in sorted(self.nodes):
                node = self.nodes[name]
                if bool(reachable(name)):
                    self._lease_missed[name] = 0
                    if name in self._lease_failed:
                        self._lease_failed.discard(name)
                        self.record_event(
                            "Node", name, "LeaseRenewed", "heartbeats resumed"
                        )
                        self.recover_node(name)
                    continue
                missed = self._lease_missed.get(name, 0) + 1
                self._lease_missed[name] = missed
                if missed >= grace_periods and node.ready:
                    self.record_event(
                        "Node",
                        name,
                        "LeaseExpired",
                        f"missed {missed} heartbeats "
                        f"({missed * interval_s:.0f}s silent)",
                    )
                    self._count("node_lease_expirations_total", {"node": name})
                    self._lease_failed.add(name)
                    self.fail_node(name)

    # --------------------------------------------------------- admission lint

    def enable_admission_lint(
        self,
        codes: _t.Sequence[str] = ("SPEC001", "SPEC002", "SPEC004"),
    ) -> None:
        """Turn on the static-analysis admission hook.

        From now on every :meth:`create_pod` / :meth:`create_job` spec is
        run through the given ``spec``-pack rules (see
        :mod:`repro.analysis.cluster_rules`) *before* it is admitted:
        error-severity findings raise :class:`~repro.errors.
        AdmissionError` and the object is never created; warnings are
        recorded as ``AdmissionLintWarning`` control-plane events.  This
        is the reproduction of Nautilus's pre-scheduler manifest vetting
        — a pod no FIONA can ever fit is rejected at the API server
        instead of Pending forever.
        """
        from repro.analysis import registry

        for code in codes:
            registry.get(code)  # typos fail loudly
        self._admission_lint_codes = tuple(codes)

    def disable_admission_lint(self) -> None:
        """Turn the admission hook back off."""
        self._admission_lint_codes = None

    def _admission_check(self, subject: str, view: _t.Any) -> None:
        """Run the configured spec rules over a candidate view; raise
        :class:`AdmissionError` on errors, log events for warnings."""
        from repro.analysis import Severity, registry
        from repro.analysis.cluster_rules import run_spec_rules

        assert self._admission_lint_codes is not None
        rules = [
            r
            for r in registry.rules(pack="spec")
            if r.code in self._admission_lint_codes
        ]
        findings = run_spec_rules(view, rules=rules)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        for f in findings:
            if f.severity is not Severity.ERROR:
                self.record_event(
                    f.location.kind or "Pod",
                    f.location.name,
                    "AdmissionLintWarning",
                    f"{f.code}: {f.message}",
                    namespace=f.location.namespace or "default",
                )
        if errors:
            self._count("admission_lint_rejections_total")
            self.record_event(
                "Cluster",
                self.name,
                "AdmissionRejected",
                f"{subject}: " + "; ".join(f.code for f in errors),
            )
            raise AdmissionError(subject, errors)

    def _admission_node_views(self):
        from repro.analysis import NodeView

        return tuple(
            NodeView(
                name=node.spec.name,
                cpu=node.capacity.cpu,
                memory=float(node.capacity.memory),
                gpu=node.capacity.gpu,
            )
            for _name, node in sorted(self.nodes.items())
        )

    def total_capacity(self) -> dict[str, float]:
        """Aggregate CPU/memory/GPU across ready nodes."""
        cpu = mem = gpu = 0.0
        for node in self.ready_nodes():
            cpu += node.capacity.cpu
            mem += node.capacity.memory
            gpu += node.capacity.gpu
        return {"cpu": cpu, "memory": mem, "gpu": gpu}

    def utilization(self) -> dict[str, float]:
        """Fraction of each resource dimension currently allocated."""
        cap = self.total_capacity()
        used = {"cpu": 0.0, "memory": 0.0, "gpu": 0.0}
        for node in self.ready_nodes():
            used["cpu"] += node.allocated.cpu
            used["memory"] += node.allocated.memory
            used["gpu"] += node.allocated.gpu
        return {
            k: (used[k] / cap[k] if cap[k] else 0.0) for k in used
        }

    # -------------------------------------------------------------- namespaces

    def create_namespace(
        self,
        name: str,
        quota: ResourceQuota | None = None,
        administrator: str = "",
        weight: float = 1.0,
    ) -> Namespace:
        """Create a virtual cluster (§IV).  ``weight`` is the namespace's
        fair-share weight in the scheduler's queue ordering."""
        if name in self.namespaces:
            raise ConflictError(f"namespace {name!r} already exists")
        ns = Namespace(name, quota=quota, administrator=administrator, weight=weight)
        self.namespaces[name] = ns
        self.record_event("Namespace", name, "Created", f"admin={administrator}")
        return ns

    def get_namespace(self, name: str) -> Namespace:
        try:
            return self.namespaces[name]
        except KeyError:
            raise NotFoundError(f"no namespace {name!r}") from None

    # -------------------------------------------------------------------- pods

    def create_pod(
        self,
        name: str,
        spec: PodSpec,
        namespace: str = "default",
        labels: dict[str, str] | None = None,
    ) -> Pod:
        """Admit a pod (charging namespace quota) and queue it for
        scheduling.  Raises :class:`QuotaExceededError` on quota breach,
        or :class:`AdmissionError` when the admission lint hook (see
        :meth:`enable_admission_lint`) rejects the spec."""
        ns = self.get_namespace(namespace)
        key = (namespace, name)
        if key in self.pods and not self.pods[key].is_terminal:
            raise ConflictError(f"pod {namespace}/{name} already exists")
        if self._admission_lint_codes is not None:
            from repro.analysis import ClusterSpecView, pod_view_from_spec

            self._admission_check(
                f"pod {namespace}/{name}",
                ClusterSpecView(
                    nodes=self._admission_node_views(),
                    pods=(pod_view_from_spec(name, spec, namespace, labels),),
                    source=f"cluster:{self.name}",
                ),
            )
        meta = ObjectMeta(
            name=name,
            namespace=namespace,
            labels=dict(labels or {}),
            creation_time=self.env.now,
        )
        pod = Pod(meta, spec)
        ns.admit(spec.total_request())  # may raise QuotaExceededError
        self.pods[key] = pod
        self._pending.append(pod)
        self._pod_span_open(pod, "queueing")
        self.record_event("Pod", name, "Created", namespace=namespace)
        self._kick_scheduler()
        return pod

    def get_pod(self, name: str, namespace: str = "default") -> Pod:
        try:
            return self.pods[(namespace, name)]
        except KeyError:
            raise NotFoundError(f"no pod {namespace}/{name}") from None

    def list_pods(
        self,
        namespace: str | None = None,
        selector: dict[str, str] | None = None,
        phase: PodPhase | None = None,
    ) -> list[Pod]:
        """Pods filtered by namespace / label selector / phase."""
        out = []
        for (ns, _name), pod in sorted(self.pods.items()):
            if namespace is not None and ns != namespace:
                continue
            if selector is not None and not pod.meta.matches(selector):
                continue
            if phase is not None and pod.phase is not phase:
                continue
            out.append(pod)
        return out

    def delete_pod(self, pod: Pod) -> None:
        """Remove a pod: interrupts it if running, dequeues it if pending."""
        if pod.is_terminal:
            return
        if pod.node_name is None:
            # Not yet bound to a node: dequeue and fail in place.  (A bound
            # pod may still report phase Pending while its image pulls; that
            # case must go through the kubelet interrupt below so the node
            # allocation is released.)
            if pod in self._pending:
                self._pending.remove(pod)
            if pod in self._unschedulable:
                self._unschedulable.remove(pod)
            pod.termination_reason = "Deleted"
            self._set_phase(pod, PodPhase.FAILED)
            pod.finish_time = self.env.now
            self.get_namespace(pod.meta.namespace).release(pod.spec.total_request())
            self.record_event(
                "Pod", pod.meta.name, "Deleted", namespace=pod.meta.namespace
            )
            return
        self._terminate_pod(pod, PodPhase.FAILED, reason="Deleted")

    # --------------------------------------------------------------- controllers

    def create_job(
        self,
        name: str,
        spec: JobSpec,
        namespace: str = "default",
        labels: dict[str, str] | None = None,
    ) -> Job:
        """Create a batch Job and start reconciling it.  Raises
        :class:`AdmissionError` when the admission lint hook rejects the
        job's pod template."""
        key = (namespace, name)
        if key in self.jobs:
            raise ConflictError(f"job {namespace}/{name} already exists")
        if self._admission_lint_codes is not None:
            from repro.analysis import (
                ClusterSpecView,
                JobView,
                pod_view_from_spec,
            )

            try:
                template = pod_view_from_spec(
                    f"{name}-template", spec.template(0), namespace, kind="Job"
                )
            except Exception:  # template needs runtime context: skip it
                template = None
            self._admission_check(
                f"job {namespace}/{name}",
                ClusterSpecView(
                    nodes=self._admission_node_views(),
                    jobs=(
                        JobView(
                            name=name,
                            namespace=namespace,
                            backoff_limit=spec.backoff_limit,
                            completions=spec.completions,
                            parallelism=spec.parallelism,
                            template=template,
                        ),
                    ),
                    source=f"cluster:{self.name}",
                ),
            )
        meta = ObjectMeta(
            name=name,
            namespace=namespace,
            labels=dict(labels or {}),
            creation_time=self.env.now,
        )
        job = Job(meta, spec, self)
        self.jobs[key] = job
        self.record_event("Job", name, "Created", namespace=namespace)
        job.reconcile()
        return job

    def get_job(self, name: str, namespace: str = "default") -> Job:
        try:
            return self.jobs[(namespace, name)]
        except KeyError:
            raise NotFoundError(f"no job {namespace}/{name}") from None

    def create_replicaset(
        self,
        name: str,
        spec: ReplicaSetSpec,
        namespace: str = "default",
        labels: dict[str, str] | None = None,
    ) -> ReplicaSet:
        """Create a ReplicaSet and bring up its replicas."""
        key = (namespace, name)
        if key in self.replicasets:
            raise ConflictError(f"replicaset {namespace}/{name} already exists")
        meta = ObjectMeta(
            name=name,
            namespace=namespace,
            labels=dict(labels or {}),
            creation_time=self.env.now,
        )
        rs = ReplicaSet(meta, spec, self)
        self.replicasets[key] = rs
        self.record_event("ReplicaSet", name, "Created", namespace=namespace)
        rs.reconcile()
        return rs

    def create_daemonset(
        self,
        name: str,
        spec: DaemonSetSpec,
        namespace: str = "default",
        labels: dict[str, str] | None = None,
    ) -> DaemonSet:
        """Create a DaemonSet: one pod per matching ready node."""
        key = (namespace, name)
        if key in self.daemonsets:
            raise ConflictError(f"daemonset {namespace}/{name} already exists")
        meta = ObjectMeta(
            name=name,
            namespace=namespace,
            labels=dict(labels or {}),
            creation_time=self.env.now,
        )
        ds = DaemonSet(meta, spec, self)
        self.daemonsets[key] = ds
        self.record_event("DaemonSet", name, "Created", namespace=namespace)
        ds.reconcile()
        return ds

    def create_service(
        self,
        name: str,
        selector: dict[str, str],
        namespace: str = "default",
    ) -> Service:
        """Create a Service with a stable cluster DNS name (§III-E.2)."""
        key = (namespace, name)
        if key in self.services:
            raise ConflictError(f"service {namespace}/{name} already exists")
        meta = ObjectMeta(name=name, namespace=namespace, creation_time=self.env.now)
        svc = Service(meta, selector, self)
        self.services[key] = svc
        return svc

    def get_service(self, name: str, namespace: str = "default") -> Service:
        try:
            return self.services[(namespace, name)]
        except KeyError:
            raise NotFoundError(f"no service {namespace}/{name}") from None

    def resolve_hostname(self, hostname: str) -> Service:
        """Resolve a ``<svc>.<ns>.svc.cluster.local`` name (§IV: cross-
        namespace networking requires fully-qualified domain names)."""
        parts = hostname.split(".")
        if len(parts) >= 2:
            return self.get_service(parts[0], namespace=parts[1])
        raise NotFoundError(f"unresolvable hostname {hostname!r}")

    # ---------------------------------------------------------------- scheduling

    def _kick_scheduler(self, state_changed: bool = False) -> None:
        """Arrange for a scheduling pass at the current sim time (coalesced).

        ``state_changed`` marks kicks caused by capacity/topology changes
        (node joined/recovered/uncordoned, pod finished): those re-activate
        the parked unschedulable set.  Pod-creation kicks leave the parked
        set alone — only the new arrivals are tried.
        """
        if state_changed:
            self._requeue_pending = True
        if self._kick_scheduled:
            return
        self._kick_scheduled = True
        ev = self.env.event()
        ev.callbacks.append(self._scheduling_pass)
        ev.succeed()

    def _scheduling_pass(self, _event: object = None) -> None:
        self._kick_scheduled = False
        if self._requeue_pending and self._unschedulable:
            self._pending.extend(self._unschedulable)
            self._unschedulable.clear()
        self._requeue_pending = False
        if not self._pending:
            return
        # Priority tiers first (so freed/preempted capacity goes to the
        # pods preemption was performed for), weighted fair-share across
        # namespaces within a tier.
        queue = self.scheduler.order_queue(
            self._pending,
            usage={name: ns.used for name, ns in self.namespaces.items()},
            capacity=self.total_capacity(),
            weights={name: ns.weight for name, ns in self.namespaces.items()},
        )
        self._pending = []
        for pod in queue:
            if pod.is_terminal:  # deleted while queued
                continue
            node = self.scheduler.select(pod, self.ready_nodes())
            if node is None:
                if pod.spec.priority > 0:
                    plan = self.scheduler.preemption_plan(
                        pod, self.ready_nodes()
                    )
                    if plan is not None:
                        target, victims = plan
                        for victim in victims:
                            self.record_event(
                                "Pod",
                                victim.meta.name,
                                "Preempted",
                                f"by {pod.meta.name} on {target.spec.name}",
                                namespace=victim.meta.namespace,
                            )
                            self._count(
                                "scheduler_preemptions_total",
                                {"namespace": victim.meta.namespace},
                            )
                            self._terminate_pod(
                                victim, PodPhase.FAILED, reason="Preempted"
                            )
                        # The pod stays pending; victim teardown re-kicks
                        # the scheduler once their resources free up.
                self._unschedulable.append(pod)
                continue
            node.allocate(pod)
            pod.node_name = node.spec.name
            self._record_bind(pod)
            self._pod_span_open(pod, "scheduling", node=node.spec.name)
            self.record_event(
                "Pod",
                pod.meta.name,
                "Scheduled",
                f"bound to {node.spec.name}",
                namespace=pod.meta.namespace,
            )
            pod._process = self.env.process(
                self._run_pod(pod, node), name=f"kubelet:{pod.meta.name}"
            )
        if self.metrics is not None:
            self.metrics.set_gauge(
                "scheduler_pending_pods",
                len(self._pending) + len(self._unschedulable),
            )

    def _record_bind(self, pod: Pod) -> None:
        """Scheduler throughput/latency instrumentation for one bind."""
        if self.metrics is None:
            return
        label = {"class": pod.spec.priority_class_label()}
        self.metrics.inc_counter("scheduler_binds_total", 1.0, label)
        self.metrics.set_gauge(
            "scheduler_bind_latency_seconds",
            self.env.now - pod.meta.creation_time,
            label,
        )

    def pending_pods(self) -> list[Pod]:
        """Pods awaiting scheduling (the 'Pending, unschedulable' set)."""
        return list(self._pending) + list(self._unschedulable)

    # ------------------------------------------------------------------ kubelet

    def _set_phase(self, pod: Pod, phase: PodPhase) -> None:
        old = pod.phase
        pod.phase = phase
        if phase is PodPhase.RUNNING:
            self._pod_span_open(pod, "running", node=pod.node_name or "")
        elif phase.is_terminal():
            self._pod_span_close(
                pod, status="ok" if phase is PodPhase.SUCCEEDED else "error"
            )
        for hook in self.phase_hooks:
            hook(pod, old, phase)

    def _run_pod(self, pod: Pod, node: Node):
        """Kubelet process: image pull, container execution, phase report."""
        try:
            # Image pulls (cold only; the cache models layer reuse).
            for container in pod.spec.containers:
                if container.image not in node.image_cache:
                    yield self.env.timeout(node.spec.image_pull_seconds)
                    node.image_cache.add(container.image)
                    self.record_event(
                        "Pod",
                        pod.meta.name,
                        "Pulled",
                        f"image {container.image} on {node.spec.name}",
                        namespace=pod.meta.namespace,
                    )
            yield self.env.timeout(POD_STARTUP_SECONDS)
            self._set_phase(pod, PodPhase.RUNNING)
            pod.start_time = self.env.now
            self.record_event(
                "Pod", pod.meta.name, "Started", namespace=pod.meta.namespace
            )
            if pod.spec.liveness is not None:
                self.env.process(
                    self._liveness_watchdog(pod),
                    name=f"liveness:{pod.meta.name}",
                )

            ctx = PodContext(self.env, pod, node, self)
            while True:
                pod.last_heartbeat = self.env.now
                procs = [
                    self.env.process(
                        c.main(ctx), name=f"{pod.meta.name}/{c.name}"
                    )
                    for c in pod.spec.containers
                ]
                pod._containers = procs
                try:
                    results = yield self.env.all_of(procs)
                except ProcessKilled:
                    raise
                except Exception as exc:
                    # Container crashed.
                    for proc in procs:
                        if proc.is_alive:
                            proc.interrupt(cause="sibling container failed")
                    if pod.spec.restart_policy is RestartPolicy.ON_FAILURE:
                        pod.restart_count += 1
                        self.record_event(
                            "Pod",
                            pod.meta.name,
                            "BackOff",
                            f"restart #{pod.restart_count}: {exc!r}",
                            namespace=pod.meta.namespace,
                        )
                        yield self.env.timeout(
                            min(300.0, 10.0 * 2 ** (pod.restart_count - 1))
                        )
                        continue
                    pod.failure = exc
                    self._finish_pod(pod, node, PodPhase.FAILED, reason=repr(exc))
                    return
                values = list(results.values())
                pod.result = values[0] if len(values) == 1 else values
                self._finish_pod(pod, node, PodPhase.SUCCEEDED)
                return
        except ProcessKilled as kill:
            # Pod deleted or node lost: stop containers, report failure.
            for proc in getattr(pod, "_containers", ()):  # type: ignore[attr-defined]
                if proc.is_alive:
                    proc.interrupt(cause=kill.cause)
            if not pod.is_terminal:
                self._finish_pod(
                    pod, node, PodPhase.FAILED, reason=str(kill.cause)
                )
            return

    def _liveness_watchdog(self, pod: Pod):
        """Kill a pod whose containers stop heartbeating (hung, not dead).

        The probe is only armed while containers are actually running —
        crash-backoff gaps don't count against the timeout, matching the
        Kubernetes semantics of probes pausing between restarts.
        """
        probe = pod.spec.liveness
        assert probe is not None
        if probe.initial_delay_s > 0:
            yield self.env.timeout(probe.initial_delay_s)
        while not pod.is_terminal:
            yield self.env.timeout(probe.period_s)
            if pod.is_terminal:
                return
            containers = getattr(pod, "_containers", ())
            if not any(proc.is_alive for proc in containers):
                continue
            if self.env.now - pod.last_heartbeat > probe.timeout_s:
                self.record_event(
                    "Pod",
                    pod.meta.name,
                    "LivenessFailed",
                    f"no heartbeat for {self.env.now - pod.last_heartbeat:.0f}s "
                    f"(timeout {probe.timeout_s:.0f}s)",
                    namespace=pod.meta.namespace,
                )
                self._count(
                    "pod_liveness_restarts_total",
                    {"namespace": pod.meta.namespace},
                )
                self._terminate_pod(pod, PodPhase.FAILED, reason="LivenessFailed")
                return

    def _finish_pod(
        self, pod: Pod, node: Node, phase: PodPhase, reason: str = ""
    ) -> None:
        pod.termination_reason = reason
        self._set_phase(pod, phase)
        pod.finish_time = self.env.now
        node.release(pod)
        self.get_namespace(pod.meta.namespace).release(pod.spec.total_request())
        self.record_event(
            "Pod",
            pod.meta.name,
            phase.value,
            reason,
            namespace=pod.meta.namespace,
        )
        self._reconcile_all()
        self._kick_scheduler(state_changed=True)

    def _terminate_pod(self, pod: Pod, phase: PodPhase, reason: str) -> None:
        """Forcibly stop a scheduled/running pod (deletion, node loss)."""
        runner = pod._process
        if runner is not None and runner.is_alive:
            runner.interrupt(cause=reason)
        else:  # bound but runner finished — defensive
            if not pod.is_terminal:
                node = self.nodes.get(pod.node_name or "")
                if node is not None:
                    self._finish_pod(pod, node, phase, reason)

    def _reconcile_all(self) -> None:
        for job in self.jobs.values():
            job.reconcile()
        for rs in self.replicasets.values():
            rs.reconcile()
        for ds in self.daemonsets.values():
            ds.reconcile()

    def __repr__(self) -> str:  # pragma: no cover
        running = len(self.list_pods(phase=PodPhase.RUNNING))
        return (
            f"<Cluster {self.name}: {len(self.nodes)} nodes, "
            f"{running} running pods, "
            f"{len(self._pending) + len(self._unschedulable)} pending>"
        )
