"""Pods: the unit of scheduling and execution.

A pod's container carries a *generator function* as its entrypoint; when
the pod starts, the cluster spawns it as a process on the simulation
kernel.  The generator receives a :class:`PodContext` giving it access to
the virtual clock, its node, its assigned GPU devices, and any volumes
(e.g. the CephFS mount shared by every step of the paper's workflow).
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from repro.cluster.objects import ObjectMeta, ResourceRequirements
from repro.errors import ValidationError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node
    from repro.sim import Environment, Process

__all__ = [
    "PodPhase",
    "RestartPolicy",
    "ContainerSpec",
    "LivenessProbe",
    "PodSpec",
    "Pod",
    "PodContext",
    "PRIORITY_CLASSES",
    "priority_class_name",
]

#: Named priority classes, mirroring Kubernetes PriorityClass objects.
#: ``best-effort`` maps to 0, which by the preemption contract never
#: evicts anything; everything above it may preempt strictly-lower
#: priorities when unschedulable.
PRIORITY_CLASSES: dict[str, int] = {
    "best-effort": 0,
    "batch": 10,
    "normal": 100,
    "high": 1000,
    "system": 10000,
}

#: Reverse map for metric labels / reports (value -> first name).
_CLASS_BY_PRIORITY: dict[int, str] = {}
for _name, _value in PRIORITY_CLASSES.items():
    _CLASS_BY_PRIORITY.setdefault(_value, _name)


def priority_class_name(priority: int) -> str:
    """The class name for a numeric priority (``p<N>`` when unnamed)."""
    return _CLASS_BY_PRIORITY.get(priority, f"p{priority}")


class PodPhase(enum.Enum):
    """Lifecycle phases, matching the Kubernetes pod phase model."""

    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"

    def is_terminal(self) -> bool:
        return self in (PodPhase.SUCCEEDED, PodPhase.FAILED)


class RestartPolicy(enum.Enum):
    """What the kubelet does when the container exits."""

    NEVER = "Never"
    ON_FAILURE = "OnFailure"


@dataclasses.dataclass
class ContainerSpec:
    """One container: an image plus an entrypoint generator function.

    Parameters
    ----------
    name:
        Container name within the pod.
    image:
        Image reference (e.g. ``"chase-ci/thredds-downloader:1.2"``).
        Cold image pulls cost simulated time; warm nodes skip the pull.
    main:
        ``main(ctx: PodContext) -> generator`` — the entrypoint.  Its
        return value becomes the pod's result; raising fails the pod.
    resources:
        Compute requests used for scheduling and node accounting.
    """

    name: str
    image: str
    main: _t.Callable[["PodContext"], _t.Generator]
    resources: ResourceRequirements = dataclasses.field(
        default_factory=ResourceRequirements
    )


@dataclasses.dataclass(frozen=True)
class LivenessProbe:
    """Heartbeat-based liveness check for a pod's containers.

    Containers call :meth:`PodContext.heartbeat` as they make progress;
    the kubelet's watchdog kills the pod (phase FAILED, reason
    ``LivenessFailed``) when no heartbeat lands for ``timeout_s`` — so a
    pod hung on a partitioned path is converted into a restart charged
    against the owning Job's ``backoff_limit``, exactly like a crash.
    """

    period_s: float = 10.0
    timeout_s: float = 60.0
    initial_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.timeout_s <= 0:
            raise ValidationError("liveness period/timeout must be positive")
        if self.initial_delay_s < 0:
            raise ValidationError("liveness initial delay must be >= 0")


@dataclasses.dataclass
class PodSpec:
    """Desired state of a pod.

    ``priority`` follows the Kubernetes PriorityClass model: when a
    higher-priority pod is unschedulable, the scheduler may preempt
    (evict) lower-priority pods to make room.  ``priority_class`` names
    one of :data:`PRIORITY_CLASSES`; when set (and ``priority`` is left
    at its default 0) the numeric priority resolves from the class, so
    workloads can speak in class names while the scheduler keeps
    comparing integers.  An explicit nonzero ``priority`` wins over the
    class resolution.
    """

    containers: list[ContainerSpec]
    node_selector: dict[str, str] = dataclasses.field(default_factory=dict)
    tolerations: set[str] = dataclasses.field(default_factory=set)
    restart_policy: RestartPolicy = RestartPolicy.NEVER
    volumes: dict[str, object] = dataclasses.field(default_factory=dict)
    params: dict[str, object] = dataclasses.field(default_factory=dict)
    priority: int = 0
    priority_class: str = ""
    liveness: LivenessProbe | None = None

    def __post_init__(self) -> None:
        if not self.containers:
            raise ValidationError("pod spec needs at least one container")
        names = [c.name for c in self.containers]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate container names: {names}")
        if self.priority_class:
            if self.priority_class not in PRIORITY_CLASSES:
                raise ValidationError(
                    f"unknown priority class {self.priority_class!r} "
                    f"(known: {sorted(PRIORITY_CLASSES)})"
                )
            if self.priority == 0:
                self.priority = PRIORITY_CLASSES[self.priority_class]

    def priority_class_label(self) -> str:
        """The class name this spec schedules as (for metrics/reports)."""
        if self.priority_class and (
            PRIORITY_CLASSES[self.priority_class] == self.priority
        ):
            return self.priority_class
        return priority_class_name(self.priority)

    def total_request(self) -> ResourceRequirements:
        """Sum of all containers' requests (what the scheduler reserves)."""
        total = ResourceRequirements()
        for container in self.containers:
            total = total + container.resources
        return total


class Pod:
    """A pod instance tracked by the cluster."""

    def __init__(self, meta: ObjectMeta, spec: PodSpec):
        self.meta = meta
        self.spec = spec
        self.phase = PodPhase.PENDING
        self.node_name: str | None = None
        self.assigned_gpus: tuple[str, ...] = ()
        self.start_time: float | None = None
        self.finish_time: float | None = None
        self.restart_count = 0
        self.result: object = None
        self.failure: BaseException | None = None
        #: why the pod reached a terminal phase ("Preempted", "NodeLost",
        #: "Deleted", ... — empty for a normal completion)
        self.termination_reason: str = ""
        self.owner_uid: str | None = None  # controller (Job/ReplicaSet) uid
        self.last_heartbeat: float = 0.0
        self._process: "Process | None" = None

    @property
    def is_terminal(self) -> bool:
        return self.phase.is_terminal()

    def __repr__(self) -> str:
        where = f" on {self.node_name}" if self.node_name else ""
        return f"<Pod {self.meta.namespace}/{self.meta.name} {self.phase.value}{where}>"


class PodContext:
    """Everything a container entrypoint can touch while running.

    Attributes
    ----------
    env:
        The simulation environment (for ``yield ctx.env.timeout(...)``).
    pod, node, cluster:
        The running pod, its node, and the cluster API.
    gpus:
        Device ids assigned by the device plugin (empty for CPU pods).
    volumes:
        The pod spec's volume map (e.g. ``{"cephfs": <CephFS mount>}``).
    params:
        Free-form parameters from the pod spec (worker index, shard id...).
    """

    def __init__(self, env: "Environment", pod: Pod, node: "Node", cluster: "Cluster"):
        self.env = env
        self.pod = pod
        self.node = node
        self.cluster = cluster
        self.gpus = pod.assigned_gpus
        self.volumes = pod.spec.volumes
        self.params = pod.spec.params

    def volume(self, name: str) -> object:
        """Look up a mounted volume by name (raises ``KeyError`` if absent)."""
        return self.volumes[name]

    def heartbeat(self) -> None:
        """Signal liveness: resets the pod's liveness-probe watchdog."""
        self.pod.last_heartbeat = self.env.now

    def log_event(self, reason: str, message: str = "") -> None:
        """Emit a cluster event attributed to this pod."""
        self.cluster.record_event(
            kind="Pod",
            name=self.pod.meta.name,
            namespace=self.pod.meta.namespace,
            reason=reason,
            message=message,
        )
