"""Shared API-object plumbing: metadata, resource requirements, events."""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.cluster.quantity import parse_cpu, parse_memory

__all__ = ["ObjectMeta", "ResourceRequirements", "ClusterEvent", "GPU_RESOURCE"]

#: Extended-resource name for GPUs, as exposed by the device plugin (§II-A).
GPU_RESOURCE = "nvidia.com/gpu"

_uid_counter = itertools.count(1)


def _new_uid() -> str:
    return f"uid-{next(_uid_counter):08d}"


@dataclasses.dataclass
class ObjectMeta:
    """Name/namespace/labels identity shared by every API object."""

    name: str
    namespace: str = "default"
    labels: dict[str, str] = dataclasses.field(default_factory=dict)
    annotations: dict[str, str] = dataclasses.field(default_factory=dict)
    uid: str = dataclasses.field(default_factory=_new_uid)
    creation_time: float | None = None

    def matches(self, selector: _t.Mapping[str, str]) -> bool:
        """Label-selector match: every selector pair must be present."""
        return all(self.labels.get(k) == v for k, v in selector.items())

    @property
    def key(self) -> tuple[str, str]:
        """(namespace, name) — the unique key within an object kind."""
        return (self.namespace, self.name)


class ResourceRequirements:
    """Per-container compute requests (cpu cores, memory bytes, GPUs).

    Mirrors the ``resources.requests`` stanza of a Kubernetes container.
    Accepts Kubernetes quantity strings:

    >>> r = ResourceRequirements(cpu="500m", memory="2Gi", gpu=1)
    >>> r.cpu
    0.5
    """

    __slots__ = ("cpu", "memory", "gpu", "ephemeral_storage")

    def __init__(
        self,
        cpu: "float | str" = 0.0,
        memory: "int | str" = 0,
        gpu: int = 0,
        ephemeral_storage: "int | str" = 0,
    ):
        self.cpu = parse_cpu(cpu)
        self.memory = parse_memory(memory)
        if gpu < 0 or gpu != int(gpu):
            raise ValueError(f"gpu request must be a non-negative int: {gpu!r}")
        self.gpu = int(gpu)
        self.ephemeral_storage = parse_memory(ephemeral_storage)

    def __add__(self, other: "ResourceRequirements") -> "ResourceRequirements":
        return ResourceRequirements(
            cpu=self.cpu + other.cpu,
            memory=self.memory + other.memory,
            gpu=self.gpu + other.gpu,
            ephemeral_storage=self.ephemeral_storage + other.ephemeral_storage,
        )

    def fits_within(self, other: "ResourceRequirements") -> bool:
        """True if this request fits inside ``other`` (free capacity)."""
        return (
            self.cpu <= other.cpu + 1e-9
            and self.memory <= other.memory
            and self.gpu <= other.gpu
            and self.ephemeral_storage <= other.ephemeral_storage
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ResourceRequirements) and (
            self.cpu,
            self.memory,
            self.gpu,
            self.ephemeral_storage,
        ) == (other.cpu, other.memory, other.gpu, other.ephemeral_storage)

    def __repr__(self) -> str:
        return (
            f"ResourceRequirements(cpu={self.cpu}, memory={self.memory}, "
            f"gpu={self.gpu})"
        )


@dataclasses.dataclass(frozen=True)
class ClusterEvent:
    """A timestamped control-plane event (the ``kubectl get events`` analog).

    The monitoring layer and tests use these to assert orchestration
    behaviour (scheduling decisions, restarts, node failures).
    """

    time: float
    kind: str  # e.g. "Pod", "Job", "Node"
    name: str
    reason: str  # e.g. "Scheduled", "Started", "Failed", "NodeLost"
    message: str = ""
    namespace: str = "default"

    def __str__(self) -> str:
        return (
            f"[{self.time:10.1f}s] {self.kind}/{self.namespace}/{self.name}: "
            f"{self.reason} — {self.message}"
        )
