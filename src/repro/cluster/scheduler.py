"""The pod scheduler: filter feasible nodes, score, pick the best.

Mirrors the two-phase Kubernetes scheduling cycle:

1. **Filter** — node must be Ready, satisfy the pod's ``node_selector``,
   tolerate all node taints, and have room for the pod's total request.
2. **Score** — rank the survivors.  Two strategies are provided:

   - ``BIN_PACK`` (most-allocated): concentrate pods to keep whole GPU
     nodes free for large jobs — what a batch-oriented cluster like
     Nautilus wants for its inference fan-out.
   - ``SPREAD`` (least-allocated): even out load, which is what the
     paper's 10-worker download job gets so each worker has NIC headroom.

   Image locality is a tie-breaker: a node that has already pulled the
   pod's image scores higher (warm starts matter for 50-pod fan-outs).

Determinism: ties after scoring break on node name, so scheduling is
reproducible run-to-run.

Multi-tenant ordering
---------------------
:meth:`Scheduler.order_queue` decides *which pod goes first* when many
are pending: strictly by priority tier, and inside a tier by **weighted
fair-share** — each pod is keyed by its namespace's projected
dominant-resource share (current usage plus this namespace's
earlier-queued pods, divided by the namespace weight), so a tenant
flooding the queue sees its own pods' projected shares climb and other
tenants' first pods sort ahead of the flood's tail.  This is
dominant-resource fairness in the spirit of DRF, computed against total
cluster capacity.
"""

from __future__ import annotations

import enum
import typing as _t

from repro.cluster.node import Node
from repro.cluster.objects import ResourceRequirements
from repro.cluster.pod import Pod

__all__ = [
    "SchedulingStrategy",
    "Scheduler",
    "FilterResult",
    "dominant_share",
]


def dominant_share(
    used: ResourceRequirements, capacity: _t.Mapping[str, float]
) -> float:
    """The DRF dominant share: max fraction of any capacity dimension."""
    fractions = []
    for dim in ("cpu", "memory", "gpu"):
        cap = capacity.get(dim, 0.0)
        if cap > 0:
            fractions.append(getattr(used, dim) / cap)
    return max(fractions) if fractions else 0.0


class SchedulingStrategy(enum.Enum):
    BIN_PACK = "bin-pack"
    SPREAD = "spread"


class FilterResult(_t.NamedTuple):
    """Outcome of the filter phase for one node (kept for diagnostics)."""

    node: Node
    feasible: bool
    reason: str = ""


class Scheduler:
    """Stateless placement policy used by the cluster's scheduling loop."""

    def __init__(self, strategy: SchedulingStrategy = SchedulingStrategy.SPREAD):
        self.strategy = strategy

    # -- filter ---------------------------------------------------------------

    def filter_node(self, pod: Pod, node: Node) -> FilterResult:
        """Apply all predicates to one node."""
        if not node.ready:
            return FilterResult(node, False, "node not ready")
        if node.unschedulable:
            return FilterResult(node, False, "node cordoned")
        for key, value in pod.spec.node_selector.items():
            if node.meta.labels.get(key) != value:
                return FilterResult(
                    node, False, f"selector {key}={value} not satisfied"
                )
        untolerated = set(node.spec.taints) - pod.spec.tolerations
        if untolerated:
            return FilterResult(node, False, f"untolerated taints {untolerated}")
        if not node.can_fit(pod.spec.total_request()):
            return FilterResult(node, False, "insufficient resources")
        return FilterResult(node, True)

    def feasible_nodes(self, pod: Pod, nodes: _t.Iterable[Node]) -> list[Node]:
        """All nodes passing the filter phase."""
        return [r.node for n in nodes if (r := self.filter_node(pod, n)).feasible]

    def explain(self, pod: Pod, nodes: _t.Iterable[Node]) -> list[FilterResult]:
        """Filter results for every node — the 'why is my pod Pending' view."""
        return [self.filter_node(pod, n) for n in nodes]

    # -- score ----------------------------------------------------------------

    def score_node(self, pod: Pod, node: Node) -> float:
        """Higher is better."""
        cap = node.capacity
        # Fractions of each dimension already allocated (0..1).
        used = 0.0
        dims = 0
        if cap.cpu > 0:
            used += node.allocated.cpu / cap.cpu
            dims += 1
        if cap.memory > 0:
            used += node.allocated.memory / cap.memory
            dims += 1
        if cap.gpu > 0:
            used += node.allocated.gpu / cap.gpu
            dims += 1
        mean_used = used / dims if dims else 0.0
        if self.strategy is SchedulingStrategy.BIN_PACK:
            score = mean_used  # most-allocated first
        else:
            score = 1.0 - mean_used  # least-allocated first
        # Image-locality bonus: all images cached => +0.05 tie-break nudge.
        images = {c.image for c in pod.spec.containers}
        if images <= node.image_cache:
            score += 0.05
        # Avoid putting CPU-only pods on scarce GPU nodes when possible.
        if pod.spec.total_request().gpu == 0 and cap.gpu > 0:
            score -= 0.10
        return score

    def select(self, pod: Pod, nodes: _t.Iterable[Node]) -> Node | None:
        """Pick the best feasible node (or ``None`` if unschedulable now)."""
        feasible = self.feasible_nodes(pod, nodes)
        if not feasible:
            return None
        return max(
            feasible,
            key=lambda n: (self.score_node(pod, n), _neg_name(n.spec.name)),
        )

    # -- queue ordering ----------------------------------------------------------

    def order_queue(
        self,
        pods: _t.Sequence[Pod],
        usage: _t.Mapping[str, ResourceRequirements],
        capacity: _t.Mapping[str, float],
        weights: _t.Mapping[str, float],
    ) -> list[Pod]:
        """Order pending pods: priority tiers, then weighted fair-share.

        ``usage`` is each namespace's currently-admitted request total,
        ``capacity`` the cluster's aggregate capacity, ``weights`` the
        namespaces' fair-share weights (missing -> 1.0).  Within a
        priority tier each pod is keyed by its namespace's *projected*
        weighted dominant share — usage after every earlier-queued pod
        of the same namespace (arrival order) would bind, including this
        one — so pods from namespaces with low shares interleave ahead
        of a single namespace's long backlog.  Ties break on arrival
        order, keeping the ordering deterministic.
        """
        projected: dict[str, ResourceRequirements] = {}
        keyed: list[tuple[float, float, int, Pod]] = []
        for index, pod in enumerate(pods):
            ns = pod.meta.namespace
            acc = projected.get(ns)
            if acc is None:
                acc = usage.get(ns, ResourceRequirements())
            acc = acc + pod.spec.total_request()
            projected[ns] = acc
            weight = max(float(weights.get(ns, 1.0)), 1e-9)
            share = dominant_share(acc, capacity) / weight
            keyed.append((-float(pod.spec.priority), share, index, pod))
        keyed.sort(key=lambda item: item[:3])
        return [pod for _prio, _share, _idx, pod in keyed]

    # -- preemption --------------------------------------------------------------

    def preemption_plan(
        self, pod: Pod, nodes: _t.Iterable[Node]
    ) -> tuple[Node, list[Pod]] | None:
        """Find a node where evicting strictly-lower-priority pods makes
        room for ``pod``.

        Mirrors Kubernetes priority preemption: victims are chosen
        lowest-priority-first, and among candidate nodes the one needing
        the fewest victims (then the lexicographically first) wins.
        Returns ``None`` when no preemption can help.
        """
        request = pod.spec.total_request()
        best: tuple[int, str, Node, list[Pod]] | None = None
        for node in nodes:
            if not node.ready or node.unschedulable:
                continue
            if any(
                node.meta.labels.get(k) != v
                for k, v in pod.spec.node_selector.items()
            ):
                continue
            if set(node.spec.taints) - pod.spec.tolerations:
                continue
            victims_pool = sorted(
                (
                    p
                    for p in node.pods.values()
                    if p.spec.priority < pod.spec.priority
                ),
                key=lambda p: (p.spec.priority, p.meta.name),
            )
            free = node.free
            chosen: list[Pod] = []
            for victim in victims_pool:
                if request.fits_within(free):
                    break
                freed = victim.spec.total_request()
                free = free + freed
                chosen.append(victim)
            if not request.fits_within(free) or not chosen:
                continue
            key = (len(chosen), node.spec.name)
            if best is None or key < (best[0], best[1]):
                best = (len(chosen), node.spec.name, node, chosen)
        if best is None:
            return None
        return best[2], best[3]


def _neg_name(name: str) -> tuple:
    """Key that makes ``max`` prefer lexicographically *smaller* names on
    score ties (deterministic ordering)."""
    return tuple(-ord(ch) for ch in name)
