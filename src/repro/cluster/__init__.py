"""Kubernetes-like container orchestration for the CHASE-CI reproduction.

The paper (§II, §IV, §V) manages Nautilus with Kubernetes: declarative API
objects, a scheduler, controllers that reconcile desired state, namespaces
for virtual clusters, and a GPU device plugin.  This package implements
those semantics from scratch on the :mod:`repro.sim` kernel:

- :class:`Cluster` — API-server facade + control loops.
- :class:`Node` — a machine with CPU/memory/GPU capacity, labels, taints
  (FIONA / FIONA8 builders in :mod:`repro.cluster.node`).
- :class:`Pod` / :class:`PodSpec` — the unit of scheduling; a pod's
  container runs a generator function on the simulation kernel.
- :class:`Job` — run-to-completion batch controller (parallelism,
  completions, backoff limit), used for the paper's download/inference
  steps.
- :class:`ReplicaSet` — keeps N replicas alive, used for the distributed-
  training extension (§III-E.2).
- :class:`Service` — stable names for pod groups (§III-E.2's
  hostname-over-IP communication).
- :class:`Namespace` / :class:`ResourceQuota` — virtual clusters (§IV).
- :class:`Scheduler` — filter/score pod placement with bin-packing and
  spreading strategies.
- GPU device plugin (§II-A) — explicit device allocation on GPU nodes.
"""

from repro.cluster.quantity import Quantity, parse_cpu, parse_memory, format_memory
from repro.cluster.objects import ObjectMeta, ResourceRequirements, ClusterEvent
from repro.cluster.node import Node, NodeSpec, fiona_node_spec, fiona8_node_spec
from repro.cluster.pod import (
    Pod,
    PodSpec,
    ContainerSpec,
    PodPhase,
    RestartPolicy,
    LivenessProbe,
    PRIORITY_CLASSES,
    priority_class_name,
)
from repro.cluster.namespace import Namespace, ResourceQuota
from repro.cluster.scheduler import Scheduler, SchedulingStrategy
from repro.cluster.controllers import (
    DaemonSet,
    DaemonSetSpec,
    Job,
    JobSpec,
    ReplicaSet,
    ReplicaSetSpec,
)
from repro.cluster.service import Service
from repro.cluster.cluster import Cluster

__all__ = [
    "Quantity",
    "parse_cpu",
    "parse_memory",
    "format_memory",
    "ObjectMeta",
    "ResourceRequirements",
    "ClusterEvent",
    "Node",
    "NodeSpec",
    "fiona_node_spec",
    "fiona8_node_spec",
    "Pod",
    "PodSpec",
    "LivenessProbe",
    "ContainerSpec",
    "PodPhase",
    "RestartPolicy",
    "PRIORITY_CLASSES",
    "priority_class_name",
    "Namespace",
    "ResourceQuota",
    "Scheduler",
    "SchedulingStrategy",
    "Job",
    "JobSpec",
    "ReplicaSet",
    "ReplicaSetSpec",
    "DaemonSet",
    "DaemonSetSpec",
    "Service",
    "Cluster",
]
