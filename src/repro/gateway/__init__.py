"""Multi-tenant admission gateway for the cluster control plane.

The overload-survival front door described in ROADMAP item 1: per-tenant
token-bucket rate limits (:class:`TokenBucket`), bounded admission
queues with explicit backpressure, synchronous spec lint, resource
quotas, scheduling-timeout shedding, and per-tenant circuit breakers
(:class:`CircuitBreaker`).  See :class:`AdmissionGateway` for the full
story.
"""

from repro.gateway.breaker import BreakerState, CircuitBreaker
from repro.gateway.gateway import (
    ADMITTED,
    QUEUED,
    REJECTED,
    SHED,
    AdmissionDecision,
    AdmissionGateway,
    GatewayConfig,
    TenantPolicy,
)
from repro.gateway.ratelimit import TokenBucket

__all__ = [
    "AdmissionGateway",
    "AdmissionDecision",
    "GatewayConfig",
    "TenantPolicy",
    "TokenBucket",
    "CircuitBreaker",
    "BreakerState",
    "ADMITTED",
    "QUEUED",
    "REJECTED",
    "SHED",
]
