"""The multi-tenant admission gateway: the cluster's overload front door.

Nautilus serves many research groups on shared CHASE-CI hardware; the
raw :class:`~repro.cluster.Cluster` API will happily accept an unbounded
flood of pods from one of them.  The gateway sits in front of
``create_pod`` and makes overload survivable:

- **Rate limits** — each tenant gets a :class:`~repro.gateway.ratelimit.
  TokenBucket`; submissions beyond the sustained rate wait in a bounded
  per-tenant queue.
- **Backpressure** — when the queue is full the submission is *rejected*
  with a structured reason and a ``retry_after_s`` hint instead of
  growing the queue without bound.
- **Admission lint** — the static-analysis ``spec`` pack runs
  synchronously against every spec; error findings reject before any
  state changes.
- **Quotas** — each tenant's namespace carries a ResourceQuota; quota
  breaches are structured rejections.
- **Scheduling-timeout shedding** — an admitted pod that cannot bind
  within ``pending_timeout_s`` is deleted and recorded as *shed* (reason
  ``SchedulingTimeout``) so callers can distinguish "the cluster chose
  to drop me" from "my pod crashed".
- **Circuit breakers** — repeated failures trip a per-tenant
  :class:`~repro.gateway.breaker.CircuitBreaker`; an open breaker sheds
  that tenant's traffic at the door (reason ``CircuitOpen``) and
  half-opens onto a probe after a cooldown.

Every decision is returned as an :class:`AdmissionDecision` and counted
through ``repro.obs`` metrics (``gateway_admitted_total``,
``gateway_rejected_total{reason}``, ``gateway_shed_total``,
``gateway_queue_depth``).
"""

from __future__ import annotations

import collections
import dataclasses
import typing as _t

from repro.cluster.namespace import ResourceQuota
from repro.cluster.pod import PRIORITY_CLASSES, Pod, PodPhase, PodSpec
from repro.errors import (
    AdmissionError,
    ClusterError,
    ConflictError,
    NotFoundError,
    QuotaExceededError,
)
from repro.gateway.breaker import BreakerState, CircuitBreaker
from repro.gateway.ratelimit import TokenBucket

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.monitoring.metrics import MetricRegistry
    from repro.sim import Event

__all__ = [
    "TenantPolicy",
    "GatewayConfig",
    "AdmissionDecision",
    "AdmissionGateway",
    "ADMITTED",
    "QUEUED",
    "REJECTED",
    "SHED",
]

#: Decision outcomes.  ``rejected`` means the gateway refused up front
#: (lint, quota, conflict, backpressure); ``shed`` means the gateway
#: dropped traffic to protect the cluster (open breaker, scheduling
#: timeout).  Both carry a structured ``reason``.
ADMITTED = "admitted"
QUEUED = "queued"
REJECTED = "rejected"
SHED = "shed"


@dataclasses.dataclass
class TenantPolicy:
    """Per-tenant admission policy.

    Parameters
    ----------
    rate, burst:
        Token-bucket sustained rate (submissions/s) and burst capacity.
    quota:
        Resource quota applied to the tenant's namespace.
    weight:
        Fair-share weight for the scheduler's queue ordering.
    priority_class:
        Default :data:`~repro.cluster.pod.PRIORITY_CLASSES` name stamped
        onto specs that carry neither a class nor an explicit priority.
    """

    rate: float = 2.0
    burst: float = 8.0
    quota: ResourceQuota | None = None
    weight: float = 1.0
    priority_class: str = ""

    def __post_init__(self) -> None:
        if self.priority_class and self.priority_class not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority class {self.priority_class!r} "
                f"(known: {sorted(PRIORITY_CLASSES)})"
            )


@dataclasses.dataclass
class GatewayConfig:
    """Gateway-wide knobs (per-tenant policy lives in TenantPolicy)."""

    #: Bounded queue depth per tenant; beyond it submissions are
    #: rejected with reason ``Backpressure``.
    max_queue_depth: int = 32
    #: Admitted pods still unbound after this long are deleted and
    #: recorded as shed (``SchedulingTimeout``).  0 disables shedding.
    pending_timeout_s: float = 600.0
    #: Consecutive failures before a tenant's breaker opens.
    breaker_failure_threshold: int = 5
    #: How long an open breaker sheds before half-opening on a probe.
    breaker_cooldown_s: float = 120.0
    #: Spec-pack lint codes run synchronously at admission ((), to skip).
    lint_codes: tuple[str, ...] = ("SPEC001", "SPEC002", "SPEC004")


@dataclasses.dataclass
class AdmissionDecision:
    """The gateway's answer to one submission.

    ``outcome`` starts as one of admitted/queued/rejected/shed; a
    *queued* decision is later resolved in place (outcome mutates to
    admitted or rejected) and its ``resolved`` event fires with the
    decision as value, so sim processes can ``yield decision.resolved``.
    """

    tenant: str
    pod_name: str
    outcome: str
    reason: str = ""
    retry_after_s: float = 0.0
    pod: Pod | None = None
    submitted_at: float = 0.0
    resolved_at: float = 0.0
    resolved: "Event | None" = None

    @property
    def final(self) -> bool:
        return self.outcome is not QUEUED

    def __repr__(self) -> str:  # pragma: no cover
        extra = f" {self.reason}" if self.reason else ""
        return (
            f"<AdmissionDecision {self.tenant}/{self.pod_name} "
            f"{self.outcome}{extra}>"
        )


class _Tenant:
    """Gateway-internal per-tenant state."""

    def __init__(
        self,
        name: str,
        policy: TenantPolicy,
        bucket: TokenBucket,
        breaker: CircuitBreaker,
    ):
        self.name = name
        self.policy = policy
        self.bucket = bucket
        self.breaker = breaker
        self.queue: collections.deque[
            tuple[AdmissionDecision, str, PodSpec, dict | None]
        ] = collections.deque()
        self.draining = False


class AdmissionGateway:
    """Multi-tenant admission control in front of a :class:`Cluster`."""

    def __init__(
        self,
        cluster: "Cluster",
        config: GatewayConfig | None = None,
        metrics: "MetricRegistry | None" = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config or GatewayConfig()
        self.metrics = metrics if metrics is not None else cluster.metrics
        self.tenants: dict[str, _Tenant] = {}
        #: every decision ever made, in submission order (for reports)
        self.decisions: list[AdmissionDecision] = []
        #: pod uid -> shed reason, for pods the gateway deleted
        self.shed_reasons: dict[str, str] = {}
        # Pods whose fate feeds the tenant breaker: uid -> tenant name.
        self._watched: dict[str, str] = {}
        if self.config.lint_codes:
            from repro.analysis import registry

            for code in self.config.lint_codes:
                registry.get(code)  # typos fail loudly at construction
        cluster.phase_hooks.append(self._on_phase_change)

    # ------------------------------------------------------------- tenants

    def register_tenant(
        self, name: str, policy: TenantPolicy | None = None
    ) -> _Tenant:
        """Register a tenant, creating its namespace with quota+weight."""
        if name in self.tenants:
            raise ConflictError(f"tenant {name!r} already registered")
        policy = policy or TenantPolicy()
        if name not in self.cluster.namespaces:
            self.cluster.create_namespace(
                name, quota=policy.quota, weight=policy.weight
            )
        else:
            ns = self.cluster.namespaces[name]
            if policy.quota is not None:
                ns.quota = policy.quota
            ns.weight = policy.weight
        tenant = _Tenant(
            name,
            policy,
            TokenBucket(self.env, policy.rate, policy.burst),
            CircuitBreaker(
                self.env,
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
            ),
        )
        self.tenants[name] = tenant
        return tenant

    def _tenant(self, name: str) -> _Tenant:
        try:
            return self.tenants[name]
        except KeyError:
            raise NotFoundError(f"tenant {name!r} not registered") from None

    def breaker_state(self, tenant: str) -> BreakerState:
        return self._tenant(tenant).breaker.state

    def queue_depth(self, tenant: str | None = None) -> int:
        """Queued submissions for one tenant (or all tenants)."""
        if tenant is not None:
            return len(self._tenant(tenant).queue)
        return sum(len(t.queue) for t in self.tenants.values())

    def saturated(self, threshold: float = 0.5) -> bool:
        """Is the gateway under sustained overload?

        True when aggregate queued submissions exceed ``threshold`` times
        the aggregate queue capacity — the signal graceful-degradation
        policies key off to drop optional work.
        """
        if not self.tenants:
            return False
        capacity = self.config.max_queue_depth * len(self.tenants)
        return self.queue_depth() >= threshold * capacity

    # ------------------------------------------------------------ admission

    def submit(
        self,
        name: str,
        spec: PodSpec,
        tenant: str,
        labels: dict[str, str] | None = None,
    ) -> AdmissionDecision:
        """Submit a pod through the gateway.  Never raises for admission
        failures — every outcome is a structured :class:`AdmissionDecision`."""
        t = self._tenant(tenant)
        self._stamp_priority(spec, t.policy)

        # 1. Circuit breaker: an open breaker sheds at the door.
        if not t.breaker.allow():
            return self._finish(
                AdmissionDecision(
                    tenant=tenant,
                    pod_name=name,
                    outcome=SHED,
                    reason="CircuitOpen",
                    retry_after_s=t.breaker.retry_after(),
                    submitted_at=self.env.now,
                )
            )

        # 2. Synchronous spec lint: structurally-bad specs never queue.
        lint_reason = self._lint(name, spec, tenant, labels)
        if lint_reason is not None:
            t.breaker.record_failure()
            return self._finish(
                AdmissionDecision(
                    tenant=tenant,
                    pod_name=name,
                    outcome=REJECTED,
                    reason=lint_reason,
                    submitted_at=self.env.now,
                )
            )

        # 3. Rate limit: in-budget submissions go straight through.
        if t.bucket.try_take():
            decision = AdmissionDecision(
                tenant=tenant,
                pod_name=name,
                outcome=ADMITTED,
                submitted_at=self.env.now,
            )
            self._try_create(decision, t, name, spec, labels)
            return self._finish(decision)

        # 4. Bounded queue with explicit backpressure.
        if len(t.queue) >= self.config.max_queue_depth:
            return self._finish(
                AdmissionDecision(
                    tenant=tenant,
                    pod_name=name,
                    outcome=REJECTED,
                    reason="Backpressure",
                    retry_after_s=t.bucket.time_until(len(t.queue) + 1.0),
                    submitted_at=self.env.now,
                )
            )
        decision = AdmissionDecision(
            tenant=tenant,
            pod_name=name,
            outcome=QUEUED,
            submitted_at=self.env.now,
            resolved=self.env.event(),
        )
        t.queue.append((decision, name, spec, labels))
        self._count("gateway_queued_total", {"tenant": tenant})
        self._gauge_queue_depth()
        if not t.draining:
            t.draining = True
            self.env.process(
                self._drain(t), name=f"gateway-drain:{tenant}"
            )
        return decision

    def admit(
        self,
        name: str,
        spec: PodSpec,
        tenant: str,
        labels: dict[str, str] | None = None,
    ):
        """Process-style helper: submit and wait out the queue.

        ``decision = yield from gateway.admit(...)`` inside a sim process
        returns a *final* decision (admitted/rejected/shed).
        """
        decision = self.submit(name, spec, tenant, labels)
        if not decision.final:
            assert decision.resolved is not None
            yield decision.resolved
        return decision

    # ------------------------------------------------------------- internals

    def _stamp_priority(self, spec: PodSpec, policy: TenantPolicy) -> None:
        """Default the tenant's priority class onto unclassed specs."""
        if (
            policy.priority_class
            and not spec.priority_class
            and spec.priority == 0
        ):
            spec.priority_class = policy.priority_class
            spec.priority = PRIORITY_CLASSES[policy.priority_class]

    def _lint(
        self,
        name: str,
        spec: PodSpec,
        tenant: str,
        labels: dict[str, str] | None,
    ) -> str | None:
        """Run the configured spec rules; a reason string means reject."""
        if not self.config.lint_codes:
            return None
        from repro.analysis import (
            ClusterSpecView,
            Severity,
            pod_view_from_spec,
            registry,
        )
        from repro.analysis.cluster_rules import run_spec_rules

        rules = [
            r
            for r in registry.rules(pack="spec")
            if r.code in self.config.lint_codes
        ]
        view = ClusterSpecView(
            nodes=self.cluster._admission_node_views(),
            pods=(pod_view_from_spec(name, spec, tenant, labels),),
            source=f"gateway:{self.cluster.name}",
        )
        findings = run_spec_rules(view, rules=rules)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        if errors:
            return "AdmissionLint:" + ",".join(f.code for f in errors)
        return None

    def _try_create(
        self,
        decision: AdmissionDecision,
        t: _Tenant,
        name: str,
        spec: PodSpec,
        labels: dict[str, str] | None,
    ) -> None:
        """Attempt the actual ``create_pod``; mutates ``decision``."""
        try:
            pod = self.cluster.create_pod(
                name, spec, namespace=t.name, labels=labels
            )
        except QuotaExceededError:
            decision.outcome = REJECTED
            decision.reason = "QuotaExceeded"
            t.breaker.record_failure()
        except AdmissionError as exc:
            # Cluster-side lint hook (if enabled) can still fire.
            decision.outcome = REJECTED
            decision.reason = "AdmissionLint:" + ",".join(
                f.code for f in exc.findings
            )
            t.breaker.record_failure()
        except ConflictError:
            decision.outcome = REJECTED
            decision.reason = "Conflict"
        except ClusterError as exc:
            decision.outcome = REJECTED
            decision.reason = type(exc).__name__
            t.breaker.record_failure()
        else:
            decision.outcome = ADMITTED
            decision.pod = pod
            self._watched[pod.meta.uid] = t.name
            if self.config.pending_timeout_s > 0:
                self.env.process(
                    self._pending_watchdog(pod, t),
                    name=f"gateway-watchdog:{pod.meta.name}",
                )

    def _drain(self, t: _Tenant):
        """Per-tenant queue drain: one submission per earned token."""
        try:
            while t.queue:
                wait = t.bucket.time_until()
                if wait > 0:
                    yield self.env.timeout(wait)
                if not t.queue:
                    break
                if not t.bucket.try_take():
                    continue  # raced with a direct submit; re-wait
                decision, name, spec, labels = t.queue.popleft()
                self._gauge_queue_depth()
                self._try_create(decision, t, name, spec, labels)
                decision.resolved_at = self.env.now
                self._record(decision)
                if decision.resolved is not None:
                    decision.resolved.succeed(decision)
        finally:
            t.draining = False

    def _pending_watchdog(self, pod: Pod, t: _Tenant):
        """Shed an admitted pod that cannot bind within the timeout."""
        yield self.env.timeout(self.config.pending_timeout_s)
        if pod.is_terminal or pod.node_name is not None:
            return
        self.shed_reasons[pod.meta.uid] = "SchedulingTimeout"
        self._watched.pop(pod.meta.uid, None)
        t.breaker.record_failure()
        self._count(
            "gateway_shed_total",
            {"tenant": t.name, "reason": "SchedulingTimeout"},
        )
        self.cluster.record_event(
            "Pod",
            pod.meta.name,
            "Shed",
            f"unbound after {self.config.pending_timeout_s:.0f}s",
            namespace=pod.meta.namespace,
        )
        self.cluster.delete_pod(pod)

    def _on_phase_change(
        self, pod: Pod, old: PodPhase, new: PodPhase
    ) -> None:
        """Cluster phase hook: a watched pod reaching Running closes its
        tenant's breaker (counts as admission success)."""
        if new is not PodPhase.RUNNING:
            return
        tenant_name = self._watched.pop(pod.meta.uid, None)
        if tenant_name is None:
            return
        tenant = self.tenants.get(tenant_name)
        if tenant is not None:
            tenant.breaker.record_success()

    def _finish(self, decision: AdmissionDecision) -> AdmissionDecision:
        decision.resolved_at = self.env.now
        self._record(decision)
        return decision

    def _record(self, decision: AdmissionDecision) -> None:
        self.decisions.append(decision)
        if decision.outcome is ADMITTED:
            self._count("gateway_admitted_total", {"tenant": decision.tenant})
        elif decision.outcome is REJECTED:
            self._count(
                "gateway_rejected_total",
                {"reason": decision.reason.split(":", 1)[0]},
            )
        elif decision.outcome is SHED:
            self._count(
                "gateway_shed_total",
                {"tenant": decision.tenant, "reason": decision.reason},
            )

    def _count(self, metric: str, labels: dict[str, str] | None = None) -> None:
        if self.metrics is not None:
            self.metrics.inc_counter(metric, 1.0, labels)

    def _gauge_queue_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("gateway_queue_depth", float(self.queue_depth()))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<AdmissionGateway tenants={len(self.tenants)} "
            f"queued={self.queue_depth()} decisions={len(self.decisions)}>"
        )
