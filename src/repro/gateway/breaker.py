"""Per-tenant circuit breakers for the admission gateway.

A breaker watches one tenant's admission/scheduling outcomes.  After
``failure_threshold`` consecutive failures it *opens*: the gateway sheds
that tenant's traffic immediately (no lint, no queueing) until
``cooldown_s`` of virtual time has passed.  The first submission after
the cooldown is admitted as a *probe* (half-open state); if the probe
reaches Running the breaker closes, if it fails the breaker re-opens for
another cooldown.  State transitions are computed lazily from the sim
clock — no timer process.
"""

from __future__ import annotations

import enum
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Environment

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    CLOSED = "closed"  # normal operation
    OPEN = "open"  # shedding: reject everything until cooldown passes
    HALF_OPEN = "half-open"  # one probe in flight decides the next state


class CircuitBreaker:
    """Consecutive-failure circuit breaker on virtual time."""

    def __init__(
        self,
        env: "Environment",
        failure_threshold: int = 5,
        cooldown_s: float = 60.0,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive")
        self.env = env
        self.failure_threshold = int(failure_threshold)
        self.cooldown_s = float(cooldown_s)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        #: lifetime counters for reports
        self.times_opened = 0

    @property
    def state(self) -> BreakerState:
        """Current state, promoting OPEN -> HALF_OPEN after the cooldown."""
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and self.env.now - self._opened_at >= self.cooldown_s
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """May a submission pass right now?

        CLOSED: always.  OPEN: never.  HALF_OPEN: exactly one probe —
        the first caller after the cooldown gets through, the rest are
        shed until the probe resolves.
        """
        state = self.state
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            return False
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    def retry_after(self) -> float:
        """Seconds until the breaker will next let a probe through."""
        if self.state is not BreakerState.OPEN or self._opened_at is None:
            return 0.0
        return max(0.0, self._opened_at + self.cooldown_s - self.env.now)

    def record_success(self) -> None:
        """A submission succeeded (pod reached Running): close the breaker."""
        self._consecutive_failures = 0
        self._probe_in_flight = False
        self._state = BreakerState.CLOSED
        self._opened_at = None

    def record_failure(self) -> None:
        """A submission failed (lint/quota reject or scheduling-timeout
        shed); trips the breaker at the threshold, re-opens a half-open
        breaker whose probe failed."""
        state = self.state
        self._consecutive_failures += 1
        if state is BreakerState.HALF_OPEN or (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        if self._state is not BreakerState.OPEN:
            self.times_opened += 1
        self._state = BreakerState.OPEN
        self._opened_at = self.env.now
        self._probe_in_flight = False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CircuitBreaker {self.state.value} "
            f"failures={self._consecutive_failures}/{self.failure_threshold}>"
        )
