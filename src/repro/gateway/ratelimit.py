"""Token-bucket rate limiting on the simulation clock.

The admission gateway grants each tenant a bucket: submissions spend one
token each, the bucket refills continuously at ``rate`` tokens/second up
to ``burst``.  Refill is computed lazily from the virtual clock, so an
idle bucket costs nothing — no background process ticks it.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Environment

__all__ = ["TokenBucket"]


class TokenBucket:
    """A continuously-refilling token bucket on virtual time.

    Parameters
    ----------
    env:
        Simulation environment supplying the clock.
    rate:
        Sustained tokens per second.
    burst:
        Bucket capacity — the largest instantaneous spike allowed.
    """

    def __init__(self, env: "Environment", rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError(
                f"rate and burst must be positive (rate={rate}, burst={burst})"
            )
        self.env = env
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_refill = env.now

    def _refill(self) -> None:
        now = self.env.now
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last_refill = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (after lazy refill)."""
        self._refill()
        return self._tokens

    def try_take(self, n: float = 1.0) -> bool:
        """Spend ``n`` tokens if available; ``False`` means rate-limited."""
        self._refill()
        if self._tokens + 1e-12 >= n:
            self._tokens -= n
            return True
        return False

    def time_until(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 if already are).

        The gateway surfaces this as ``retry_after_s`` in backpressure
        rejections, so clients can retry exactly when a token exists
        instead of hammering the front door.
        """
        self._refill()
        deficit = n - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate
