"""repro — reproduction of *Workflow-Driven Distributed Machine Learning in
CHASE-CI* (Altintas et al., 2019).

The package implements, from scratch, the full stack the paper describes:

- :mod:`repro.sim` — discrete-event simulation kernel (virtual clock,
  coroutine processes, resources).
- :mod:`repro.cluster` — Kubernetes-like container orchestration (nodes,
  pods, jobs, replica sets, services, namespaces, scheduler, self-healing).
- :mod:`repro.netsim` — the Pacific Research Platform network (sites,
  10/40/100 GbE links, max-min fair flow sharing, Science-DMZ DTNs).
- :mod:`repro.storage` — Ceph/Rook-like distributed object storage
  (CRUSH-style placement, replication, OSD recovery, CephFS facade).
- :mod:`repro.transfer` — THREDDS catalog + subsetting, Aria2-like parallel
  downloads, a Redis-like work queue.
- :mod:`repro.data` — synthetic MERRA-2-like atmospheric data and IVT.
- :mod:`repro.ml` — a NumPy flood-filling network (FFN), the CONNECT
  baseline, segmentation metrics, and a GPU performance model.
- :mod:`repro.monitoring` — Prometheus-like metrics and Grafana-like
  dashboards.
- :mod:`repro.workflow` — the paper's core contribution: the workflow-driven
  development/measurement layer and the 4-step CONNECT case study.
- :mod:`repro.viz` — ASCII renderers for every paper figure and table.

Quickstart
----------
>>> from repro.testbed import build_nautilus_testbed
>>> from repro.workflow import build_connect_workflow, WorkflowDriver
>>> testbed = build_nautilus_testbed(seed=42, scale=0.001)
>>> wf = build_connect_workflow(testbed)
>>> report = WorkflowDriver(testbed).run(wf)
>>> report.succeeded
True
"""

from repro._version import __version__

__all__ = ["__version__"]
