"""Metrics side of the :mod:`repro.obs` facade.

Canonical home for the registry/sampler/promql/dashboard/alert stack
(previously imported from the ``repro.monitoring`` package root) and the
ML segmentation scores (previously ``repro.ml.metrics``).  Everything
here is a re-export; the implementations stay where they are.
"""

from repro.ml.segmetrics import (
    SegmentationScores,
    adapted_rand_error,
    object_level_metrics,
    voxel_metrics,
)
from repro.monitoring.alerts import Alert, AlertManager, AlertRule, AlertState
from repro.monitoring.grafana import Dashboard, Panel, sparkline
from repro.monitoring.metrics import (
    METRIC_ALIASES,
    MetricRegistry,
    TimeSeries,
    canonical_metric_name,
)
from repro.monitoring.sampler import Sampler
import repro.monitoring.promql as promql

__all__ = [
    "METRIC_ALIASES",
    "Alert",
    "AlertManager",
    "AlertRule",
    "AlertState",
    "Dashboard",
    "MetricRegistry",
    "Panel",
    "Sampler",
    "SegmentationScores",
    "TimeSeries",
    "adapted_rand_error",
    "canonical_metric_name",
    "object_level_metrics",
    "promql",
    "sparkline",
    "voxel_metrics",
]
