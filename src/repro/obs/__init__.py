"""``repro.obs`` — the unified observability facade.

One import surface for everything a run can tell you about itself:

- :mod:`repro.obs.metrics` — the Prometheus-like side: registry, sampler,
  promql, Grafana-like dashboards, alerts, metric-name aliases, and the
  ML segmentation scores.
- :mod:`repro.obs.tracing` — the span side: tracer, span-tree validation,
  critical-path analysis, Chrome-trace / metric exporters.
- :mod:`repro.obs.reports` — step/workflow reports and their stable
  serialization (shared with checkpoints).

The most common names are re-exported here, so
``from repro.obs import Tracer, MetricRegistry, analyze_run`` just works.
The legacy paths (``repro.monitoring`` package-level imports,
``repro.ml.metrics``) still resolve but emit ``DeprecationWarning``.
"""

from repro.obs.metrics import (
    METRIC_ALIASES,
    Alert,
    AlertManager,
    AlertRule,
    AlertState,
    Dashboard,
    MetricRegistry,
    Panel,
    Sampler,
    SegmentationScores,
    TimeSeries,
    canonical_metric_name,
    promql,
    voxel_metrics,
)
from repro.obs.reports import (
    StepReport,
    WorkflowCheckpoint,
    WorkflowReport,
    load_report,
    save_report,
)
from repro.obs.tracing import (
    CriticalPathReport,
    Span,
    Tracer,
    analyze_run,
    attribute_layers,
    critical_chain,
    spans_to_metrics,
    to_chrome_trace,
    validate_spans,
    validate_trace,
    write_chrome_trace,
)

__all__ = [
    # metrics
    "METRIC_ALIASES",
    "Alert",
    "AlertManager",
    "AlertRule",
    "AlertState",
    "Dashboard",
    "MetricRegistry",
    "Panel",
    "Sampler",
    "SegmentationScores",
    "TimeSeries",
    "canonical_metric_name",
    "promql",
    "voxel_metrics",
    # tracing
    "CriticalPathReport",
    "Span",
    "Tracer",
    "analyze_run",
    "attribute_layers",
    "critical_chain",
    "spans_to_metrics",
    "to_chrome_trace",
    "validate_spans",
    "validate_trace",
    "write_chrome_trace",
    # reports
    "StepReport",
    "WorkflowCheckpoint",
    "WorkflowReport",
    "load_report",
    "save_report",
]
