"""Tracing side of the :mod:`repro.obs` facade.

Re-exports the span/tracer machinery, the critical-path analyzer, and
the exporters from :mod:`repro.tracing`.
"""

from repro.tracing.critical_path import (
    ORCHESTRATION,
    CriticalPathReport,
    analyze_run,
    attribute_layers,
    critical_chain,
)
from repro.tracing.export import (
    spans_to_metrics,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
)
from repro.tracing.span import LAYER_CATEGORIES, Span, Tracer, validate_spans

__all__ = [
    "LAYER_CATEGORIES",
    "ORCHESTRATION",
    "CriticalPathReport",
    "Span",
    "Tracer",
    "analyze_run",
    "attribute_layers",
    "critical_chain",
    "spans_to_metrics",
    "to_chrome_trace",
    "validate_spans",
    "validate_trace",
    "write_chrome_trace",
]
