"""Report side of the :mod:`repro.obs` facade.

Step/workflow reports and their stable JSON round-trip
(``StepReport.to_dict`` / ``WorkflowReport.to_dict`` — the same shape
checkpoints persist).
"""

from repro.workflow.driver import REPORT_FORMAT_VERSION, WorkflowReport
from repro.workflow.persistence import (
    WorkflowCheckpoint,
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)
from repro.workflow.step import StepReport, sanitize_artifact_value

__all__ = [
    "REPORT_FORMAT_VERSION",
    "StepReport",
    "WorkflowCheckpoint",
    "WorkflowReport",
    "load_report",
    "report_from_dict",
    "report_to_dict",
    "sanitize_artifact_value",
    "save_report",
]
