"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "ProcessKilled",
    "ClusterError",
    "SchedulingError",
    "AdmissionError",
    "QuotaExceededError",
    "InvalidQuantityError",
    "NotFoundError",
    "ConflictError",
    "StorageError",
    "ObjectNotFoundError",
    "InsufficientReplicasError",
    "NetworkError",
    "NoRouteError",
    "TransferError",
    "TransientServerError",
    "QueueEmptyError",
    "WorkflowError",
    "StepFailedError",
    "StepTimeoutError",
    "ValidationError",
    "MLError",
    "ShapeError",
    "PoolError",
    "StreamBrokenError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly or reached an
    inconsistent state (e.g. scheduling an event in the past)."""


class ProcessKilled(SimulationError):
    """Raised *inside* a simulated process when it is interrupted/killed.

    Carries the ``cause`` given to :meth:`repro.sim.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class ClusterError(ReproError):
    """Base class for orchestration-layer errors."""


class SchedulingError(ClusterError):
    """No node can satisfy a pod's resource requests / node selector."""


class QuotaExceededError(ClusterError):
    """A namespace :class:`~repro.cluster.namespace.ResourceQuota` would be
    exceeded by admitting a pod."""


class InvalidQuantityError(ClusterError, ValueError):
    """A resource quantity string (``"500m"``, ``"96Gi"``) failed to parse."""


class AdmissionError(ClusterError):
    """The admission lint hook (:meth:`repro.cluster.Cluster.
    enable_admission_lint`) rejected a spec: the static-analysis ``spec``
    pack produced error-severity findings for it."""

    def __init__(self, subject: str, findings: "list | None" = None):
        details = "; ".join(
            f"{f.code}: {f.message}" for f in (findings or [])
        )
        super().__init__(
            f"{subject} rejected by admission lint"
            + (f": {details}" if details else "")
        )
        self.subject = subject
        self.findings = list(findings or [])


class NotFoundError(ClusterError, KeyError):
    """A named API object does not exist."""


class ConflictError(ClusterError):
    """An API object with the same name already exists."""


class StorageError(ReproError):
    """Base class for storage-substrate errors."""


class ObjectNotFoundError(StorageError, KeyError):
    """Requested key is not present in the object store."""


class InsufficientReplicasError(StorageError):
    """Not enough healthy OSDs remain to satisfy the replication factor."""


class NetworkError(ReproError):
    """Base class for network-substrate errors."""


class NoRouteError(NetworkError):
    """No path exists between two sites in the topology."""


class TransferError(ReproError):
    """A data-transfer job (THREDDS download, queue pop, merge) failed."""


class TransientServerError(TransferError):
    """A retryable server-side failure (5xx, timeout, mid-stream reset)."""


class QueueEmptyError(TransferError):
    """A non-blocking queue pop found no message."""


class WorkflowError(ReproError):
    """Base class for workflow-layer errors."""


class StepFailedError(WorkflowError):
    """A workflow step's underlying job failed permanently."""

    def __init__(self, step_name: str, reason: str = ""):
        super().__init__(f"step {step_name!r} failed: {reason}")
        self.step_name = step_name
        self.reason = reason


class StepTimeoutError(StepFailedError):
    """A workflow step attempt exceeded its ``timeout_s`` budget."""

    def __init__(self, step_name: str, timeout_s: float):
        super().__init__(step_name, f"attempt exceeded timeout of {timeout_s}s")
        self.timeout_s = timeout_s


class ValidationError(WorkflowError, ValueError):
    """A workflow/step definition is structurally invalid (cycles, missing
    inputs, duplicate names)."""


class StreamBrokenError(WorkflowError):
    """A step stream channel was closed by a failed producer (or the
    producer's attempt was torn down for retry); the consumer should
    fail its own attempt and retry against the producer's next attempt."""

    def __init__(self, producer: str, reason: str = ""):
        super().__init__(
            f"stream from step {producer!r} broke"
            + (f": {reason}" if reason else "")
        )
        self.producer = producer
        self.reason = reason


class MLError(ReproError):
    """Base class for machine-learning substrate errors."""


class ShapeError(MLError, ValueError):
    """An array argument has an incompatible shape."""


class PoolError(MLError):
    """The shared-memory worker pool failed unrecoverably (all workers
    dead, a shard raised in a worker, or the pool was used after
    :meth:`~repro.ml.shm_pool.SharedMemoryPool.close`)."""
