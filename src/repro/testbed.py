"""The Nautilus testbed: every substrate wired together.

One :func:`build_nautilus_testbed` call assembles the full CHASE-CI stack
of the paper's Figure 1: the PRP topology with FIONA8 GPU nodes and
storage hosts at partner sites, the Kubernetes-like cluster over those
machines, the Rook/Ceph object store (>1 PB at full scale), the THREDDS
archive server, the flow-level network, and the Prometheus/Grafana
monitoring loop.

Scale model
-----------
``scale`` multiplies the *data* volumes (archive file count, hence bytes)
while the infrastructure stays paper-shaped, so a laptop can run the
whole workflow end-to-end in simulated minutes at ``scale=0.01`` and the
benchmarks can run byte-exact at ``scale=1.0``.  The ML components always
run for real on a laptop-sized synthetic grid (``ml_grid``); paper-scale
ML *timing* comes from the calibrated GPU performance model.

Calibration note: the THREDDS server attaches at 1 GbE.  The paper's
step 1 moves 246 GB in 37 minutes (≈111 MB/s sustained), which is a
1-gigabit-class egress, not the 10G DTN fabric — the archive server, not
the PRP, is the bottleneck, which is also why variable subsetting
"greatly increases the speed at which data is transferred".
"""

from __future__ import annotations

import dataclasses

from repro.cluster import Cluster, Scheduler, SchedulingStrategy
from repro.cluster.node import fiona8_node_spec, fiona_node_spec
from repro.data.catalog import PAPER_FILE_COUNT, MerraArchive
from repro.data.merra import GridSpec, MerraGenerator
from repro.ml.perfmodel import GTX1080TI, GPUPerfModel
from repro.monitoring.metrics import MetricRegistry
from repro.monitoring.sampler import Sampler
from repro.netsim import FlowSimulator, Topology, build_prp_topology
from repro.sim import Environment, SeededRNG
from repro.storage import CephCluster, CephFS
from repro.tracing import Tracer
from repro.transfer import ThreddsServer, TransientFaultInjector

__all__ = ["NautilusTestbed", "build_nautilus_testbed"]

#: Sites that host FIONA8 GPU nodes (round-robin assignment).
_GPU_SITES = ("UCSD", "UCI", "Stanford", "Caltech")
#: Sites that host Ceph storage machines.
_STORAGE_SITES = ("UCSD", "SDSC", "UCI")


@dataclasses.dataclass
class NautilusTestbed:
    """Handle to every live subsystem of one simulated deployment."""

    env: Environment
    rng: SeededRNG
    topology: Topology
    flowsim: FlowSimulator
    cluster: Cluster
    ceph: CephCluster
    cephfs: CephFS
    registry: MetricRegistry
    sampler: Sampler
    tracer: Tracer
    archive: MerraArchive
    thredds: ThreddsServer
    perf: GPUPerfModel
    scale: float
    ml_grid: GridSpec
    seed: int

    def merra_generator(self, seed_offset: int = 0) -> MerraGenerator:
        """A generator for laptop-scale synthetic MERRA data."""
        return MerraGenerator(self.ml_grid, seed=self.seed + seed_offset)

    @property
    def gpu_nodes(self) -> list[str]:
        return [
            n.spec.name
            for n in self.cluster.ready_nodes()
            if n.spec.gpus > 0
        ]

    def total_gpus(self) -> int:
        return int(self.cluster.total_capacity()["gpu"])

    def network_faults(self) -> "NetworkFaultInjector":
        """A fault injector bound to this testbed's network and metrics."""
        from repro.netsim import NetworkFaultInjector

        return NetworkFaultInjector(
            self.topology,
            flowsim=self.flowsim,
            env=self.env,
            registry=self.registry,
        )

    def enable_node_leases(
        self, interval_s: float = 15.0, grace_periods: int = 3
    ) -> None:
        """Turn on node heartbeats backed by live topology reachability.

        A node's heartbeat reaches the control plane (UCSD) only while a
        network route exists, so partitioning a site makes its nodes go
        NotReady after ``grace_periods`` missed beats — the same
        fail/reschedule path as a crashed node — and rejoin when the
        partition heals.  Hosts unknown to the topology are treated as
        reachable (their heartbeats don't traverse the modelled WAN).
        """

        def _reachable(name: str) -> bool:
            if name not in self.topology.hosts:
                return True
            return self.topology.reachable(name, "UCSD")

        self.cluster.enable_node_leases(
            _reachable, interval_s=interval_s, grace_periods=grace_periods
        )

    def figure1_summary(self) -> dict[str, object]:
        """The Figure-1 inventory: sites, nodes, GPUs, storage."""
        net = self.topology.summary()
        health = self.ceph.health()
        return {
            "prp_sites": net["sites"],
            "core_sites": net["core_sites"],
            "wan_link_speeds_gbps": net["link_speeds_gbps"],
            "cluster_nodes": len(self.cluster.nodes),
            "fiona8_nodes": len(self.gpu_nodes),
            "gpus": self.total_gpus(),
            "storage_capacity_bytes": health["capacity_bytes"],
            "storage_petabytes": health["capacity_bytes"] / 1e15,
            "osds": health["osds"],
            "archive_files": len(self.archive),
            "archive_bytes_full": self.archive.total_full_bytes,
            "archive_bytes_subset": self.archive.total_subset_bytes,
        }


def build_nautilus_testbed(
    seed: int = 42,
    scale: float = 0.01,
    n_fiona8: int = 8,
    n_dtn: int = 4,
    n_storage_hosts: int = 6,
    osds_per_host: int = 4,
    osd_capacity: float = 50e12,
    osd_disk_Bps: float = 200e6,
    thredds_nic_gbps: float = 1.0,
    sampler_interval: float = 15.0,
    ml_grid: GridSpec | None = None,
    scheduler_strategy: SchedulingStrategy = SchedulingStrategy.SPREAD,
    transfer_faults: TransientFaultInjector | None = None,
    admission_lint: bool = False,
) -> NautilusTestbed:
    """Assemble a Nautilus deployment.

    Parameters
    ----------
    seed:
        Root seed for every stochastic component.
    scale:
        Fraction of the paper's archive (1.0 = 112,249 files / 455 GB).
    n_fiona8:
        GPU appliances (8 GPUs each); the paper's step 3 wants
        ``ceil(50/8) = 7`` of them minimum, default 8.
    n_dtn / n_storage_hosts / osds_per_host / osd_capacity:
        CPU nodes and the Ceph layout.  Defaults give 6x4 = 24 OSDs x
        50 TB = 1.2 PB — "over a petabyte of storage" (§II).
    thredds_nic_gbps:
        Archive-server egress (see module calibration note).
    ml_grid:
        Grid for the real (laptop-scale) ML runs.
    transfer_faults:
        Optional :class:`~repro.transfer.TransientFaultInjector` wired
        into the THREDDS server: catalog and stream requests then fail
        transiently at its seeded rates, exercising the download
        retry/backoff machinery.
    admission_lint:
        When True, turn on the cluster's static-analysis admission hook
        (:meth:`~repro.cluster.Cluster.enable_admission_lint`): pod/job
        specs that fail the ``spec`` rule pack are rejected with
        :class:`~repro.errors.AdmissionError` before scheduling.
    """
    if scale <= 0 or scale > 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    env = Environment()
    rng = SeededRNG(seed)
    topology = build_prp_topology()
    flowsim = FlowSimulator(env)
    cluster = Cluster(env, name="nautilus", scheduler=Scheduler(scheduler_strategy))
    registry = MetricRegistry(env)
    sampler = Sampler(env, registry, interval=sampler_interval)
    tracer = Tracer.for_env(env)
    cluster.tracer = tracer
    flowsim.tracer = tracer

    # -- compute nodes ----------------------------------------------------------
    for i in range(n_dtn):
        site = _GPU_SITES[i % len(_GPU_SITES)]
        name = f"dtn-{site.lower()}-{i:02d}"
        spec = fiona_node_spec(name, site=site)
        cluster.add_node(spec)
        topology.attach_host(name, site, nic_gbps=spec.nics_gbps[0])
    for i in range(n_fiona8):
        site = _GPU_SITES[i % len(_GPU_SITES)]
        name = f"fiona8-{site.lower()}-{i:02d}"
        spec = fiona8_node_spec(name, site=site)
        cluster.add_node(spec)
        topology.attach_host(name, site, nic_gbps=spec.nics_gbps[0])

    # -- storage -------------------------------------------------------------------
    ceph = CephCluster(env, flowsim=flowsim, topology=topology)
    for i in range(n_storage_hosts):
        site = _STORAGE_SITES[i % len(_STORAGE_SITES)]
        host = f"stor-{site.lower()}-{i:02d}"
        topology.attach_host(host, site, nic_gbps=10.0)
        for _ in range(osds_per_host):
            ceph.add_osd(host=host, capacity=osd_capacity, disk_Bps=osd_disk_Bps)
    cephfs = CephFS(ceph)
    ceph.create_pool("merra", replication=3)
    ceph.create_pool("models", replication=3)
    ceph.create_pool("results", replication=3)

    # -- archive + THREDDS -----------------------------------------------------------
    n_files = max(1, int(round(PAPER_FILE_COUNT * scale)))
    archive = MerraArchive(n_files=n_files, seed=seed)
    grid = ml_grid or GridSpec(nlat=45, nlon=72, nlev=8)
    # The server can serve real (laptop-scale) granule content too.
    thredds = ThreddsServer(
        archive,
        host="its-dtn-02",
        generator=MerraGenerator(grid, seed=seed),
        fault_injector=transfer_faults,
    )
    if transfer_faults is not None and transfer_faults.env is None:
        transfer_faults.env = env
    topology.attach_host("its-dtn-02", "UCSD", nic_gbps=thredds_nic_gbps)
    # Cluster-level resilience counters (liveness restarts, lease
    # expirations) land in the shared registry.
    cluster.metrics = registry
    if admission_lint:
        cluster.enable_admission_lint()

    # -- standing monitoring probes ----------------------------------------------------
    for node in cluster.nodes.values():
        sampler.add_probe(
            "node_cpu_allocated_cores",
            (lambda n=node: n.allocated.cpu),
            {"node": node.spec.name},
        )
        sampler.add_probe(
            "node_memory_allocated_bytes",
            (lambda n=node: float(n.allocated.memory)),
            {"node": node.spec.name},
        )
        if node.spec.gpus:
            sampler.add_probe(
                "node_gpus_in_use",
                (lambda n=node: float(n.gpu_in_use())),
                {"node": node.spec.name},
            )
    sampler.add_probe(
        "ceph_used_bytes", lambda: ceph.total_used(), {"cluster": "nautilus"}
    )
    thredds_link = topology.links[frozenset(("its-dtn-02", "UCSD"))]
    sampler.add_probe(
        "thredds_egress_bytes_per_second",
        lambda: flowsim.sample_rates([thredds_link.resource])[
            thredds_link.resource.name
        ],
        {"host": "its-dtn-02"},
    )
    # Per-storage-host disk rates — the Grafana storage-IOPS panels are
    # per node, so Figure 4's "IOPS: Max" is a per-host peak.
    by_host: dict[str, list] = {}
    for osd in ceph.osds.values():
        by_host.setdefault(osd.host, []).append(osd)
    for host, osds in by_host.items():
        sampler.add_probe(
            "ceph_disk_write_bytes_per_second",
            (lambda osds=osds: sum(
                sum(flowsim.sample_rates([o.disk]).values()) for o in osds
            )),
            {"host": host},
        )

    return NautilusTestbed(
        env=env,
        rng=rng,
        topology=topology,
        flowsim=flowsim,
        cluster=cluster,
        ceph=ceph,
        cephfs=cephfs,
        registry=registry,
        sampler=sampler,
        tracer=tracer,
        archive=archive,
        thredds=thredds,
        perf=GTX1080TI,
        scale=scale,
        ml_grid=grid,
        seed=seed,
    )
