"""The workflow layer: CHASE-CI's core contribution.

The paper's thesis is that coupling "a dynamic cyberinfrastructure and
the workflow process" with constant measurement "drastically reduces
execution bottlenecks" (§VIII).  This package is that layer:

- :class:`WorkflowStep` / :class:`Workflow` — steps as containerized
  units with declared resources, composed into a DAG (Figure 2).
- :class:`WorkflowDriver` — maps steps to Kubernetes Jobs on the
  testbed, executes them in dependency order, and **measures** each one
  (pods, CPUs, GPUs, memory, data processed, wall time) — producing
  Table I and the per-step Grafana views of Figures 3–6.
- :mod:`repro.workflow.connect_steps` — the four-step CONNECT case
  study: THREDDS download, FFN training, 50-GPU inference, JupyterLab
  visualization (§III).
- :mod:`repro.workflow.extensions` — the paper's planned extensions
  (§III-E): distributed data pre-processing, distributed training via
  ReplicaSets + Services, and the hyperparameter/validation queue.
- :mod:`repro.workflow.ppods` — the PPoDS ("Process for the Practice of
  Data Science") collaborative development methodology (§VI): per-step
  tests, measurement history, and execution plans.
"""

from repro.workflow.step import StepContext, StepReport, WorkflowStep
from repro.workflow.stream import StreamChannel, END
from repro.workflow.degradation import DegradationPolicy
from repro.workflow.workflow import Workflow
from repro.workflow.driver import WorkflowDriver, WorkflowReport
from repro.workflow.connect_steps import (
    DownloadStep,
    TrainingStep,
    InferenceStep,
    VisualizationStep,
    build_connect_workflow,
)
from repro.workflow.persistence import (
    WorkflowCheckpoint,
    load_report,
    save_report,
)
from repro.workflow.ppods import PPoDSSession, StepTest
from repro.workflow.kepler import KeplerSession
from repro.workflow.suite import run_robustness_suite, RobustnessReport
from repro.workflow.extensions import (
    DistributedPreprocessing,
    DistributedTraining,
    HyperparameterSweep,
)

__all__ = [
    "WorkflowStep",
    "StepContext",
    "StepReport",
    "StreamChannel",
    "END",
    "DegradationPolicy",
    "Workflow",
    "WorkflowDriver",
    "WorkflowReport",
    "DownloadStep",
    "TrainingStep",
    "InferenceStep",
    "VisualizationStep",
    "build_connect_workflow",
    "WorkflowCheckpoint",
    "save_report",
    "load_report",
    "PPoDSSession",
    "StepTest",
    "KeplerSession",
    "run_robustness_suite",
    "RobustnessReport",
    "DistributedPreprocessing",
    "DistributedTraining",
    "HyperparameterSweep",
]
