"""The four-step CONNECT object-segmentation workflow (paper §III).

Step 1 — THREDDS download: 10 worker pods pop URL-manifest chunks from a
Redis queue, download with 20-way Aria2 parallelism, merge the small
NetCDF granules into large HDF files, and push them to the Ceph object
store.  (Paper: 14 pods, 42 CPUs, 246 GB in 37 minutes.)

Step 2 — model training: a single 1-GPU pod builds training partitions
(data prep) and trains the FFN on a 30-day labelled volume, saving the
checkpoint to the object store.  (Paper: 306 minutes on one 1080ti.)

Step 3 — distributed inference: the volume is evenly sharded across N
single-GPU pods (paper: 50) which flood-fill their shards and write label
volumes back.  (Paper: 1133 minutes for 2.3e10 voxels.)

Step 4 — JupyterLab visualization: one pod loads the results and computes
object statistics for post-processing analysis (interactive; Table I
reports "NA" for time).

Dual fidelity: every step both (a) *runs the real algorithms* on a
laptop-scale synthetic MERRA volume — actual FFN SGD, actual flood-fill
inference, actual CONNECT labelling — and (b) *simulates paper-scale
timing* through the calibrated network/storage/GPU models, so Table I
and Figures 3–6 regenerate at full scale while the ML code is genuinely
exercised end to end.
"""

from __future__ import annotations

import math
import typing as _t

import numpy as np

from repro.cluster import (
    ContainerSpec,
    JobSpec,
    LivenessProbe,
    PodSpec,
    ResourceRequirements,
)
from repro.data.merra import PAPER_GRID
from repro.errors import ProcessKilled, QueueEmptyError
from repro.ml import (
    FFNConfig,
    FFNModel,
    FFNTrainer,
    connect_segmentation,
    voxel_metrics,
)
from repro.ml.inference import split_shards
from repro.sim.rng import derive_seed
from repro.transfer import (
    Aria2Downloader,
    MergePlanner,
    RedisQueue,
    RetryPolicy,
    retry_call,
)
from repro.workflow.step import StepContext, WorkflowStep
from repro.workflow.workflow import Workflow

__all__ = [
    "DownloadStep",
    "TrainingStep",
    "InferenceStep",
    "VisualizationStep",
    "build_connect_workflow",
]

#: Compression achieved on inference label volumes (uint8 masks pack to
#: ~2 bits/voxel), sized so paper-scale results land at ~5.8 GB (§III-D).
RESULT_BYTES_PER_VOXEL = 0.25

#: The paper's training file: 381 MB for the 576x361x240 training volume.
TRAIN_DATA_BYTES = 381e6


def _aux_pod(image: str, cpu, memory, done_event) -> PodSpec:
    """A service pod (redis, manifest builder, monitor) that runs until
    the step signals completion."""

    def main(ctx):
        yield done_event
        return "done"

    return PodSpec(
        containers=[
            ContainerSpec(
                name="main",
                image=image,
                main=main,
                resources=ResourceRequirements(cpu=cpu, memory=memory),
            )
        ]
    )


class DownloadStep(WorkflowStep):
    """Step 1: THREDDS download via Redis-coordinated worker pods."""

    network_bound = True  # WAN transfers from the THREDDS origin

    #: In overlap mode the step streams: content materialization runs
    #: concurrently with the worker job and fires the ``content-ready``
    #: milestone the moment the training inputs are on CephFS — long
    #: before the last worker drains its WAN transfer queue.
    streams_output = True

    default_params: dict[str, object] = {
        "n_workers": 10,
        "connections": 20,
        "chunk_files": 1000,
        "subset": True,
        "coalesce_files": 200,
        "files_per_merge": 240,
        "worker_cpu": 4,
        "worker_memory": "21G",
        "target_pool": "merra",
        # Resilience knobs: transfer retry policy (None -> defaults) and
        # an optional per-worker liveness heartbeat timeout — a worker
        # stalled behind a partition longer than this is killed and
        # restarted by the kubelet (charged to the Job's backoff_limit).
        "retry_policy": None,
        "worker_liveness_s": None,
        # Laptop-scale content materialization: fetch this many leading
        # granules' REAL arrays through the THREDDS subset service,
        # compute IVT, and store the stacked volume (+ the CONNECT label
        # dataset [23]) on CephFS for the training step to consume.
        # 0 disables the content path (catalog/bytes only).
        "materialize_timesteps": 24,
    }

    def __init__(self, **kwargs):
        kwargs.setdefault("name", "download")
        kwargs.setdefault("image", "chase-ci/thredds-downloader:1.2")
        kwargs.setdefault(
            "description",
            "Download MERRA-2 IVT subset from THREDDS into the Ceph store",
        )
        super().__init__(**kwargs)

    def execute(self, ctx: StepContext):
        tb = ctx.testbed
        env = tb.env
        p = ctx.params
        n_workers = int(p["n_workers"])
        subset_vars = ("U", "V", "QV") if p["subset"] else None
        pool = str(p["target_pool"])
        policy = p["retry_policy"] or RetryPolicy()
        liveness_s = p["worker_liveness_s"]

        queue = RedisQueue(env, name=f"{ctx.namespace}-downloads")
        n_chunks = max(1, math.ceil(len(tb.archive) / int(p["chunk_files"])))
        chunks = tb.archive.manifest_chunks(n_chunks)
        queue.push_all(chunks)

        done_event = env.event()
        cluster = tb.cluster
        # Auxiliary pods: 1 redis + 1 manifest builder + 2 monitors — with
        # the 10 workers this is the paper's 14-pod / 42-CPU footprint.
        cluster.create_pod(
            f"redis-{len(cluster.pods)}", _aux_pod("redis:5", 1, "8G", done_event), namespace=ctx.namespace
        )
        cluster.create_pod(
            f"manifest-builder-{len(cluster.pods)}",
            _aux_pod("chase-ci/manifest:1.0", 1, "5G", done_event),
            namespace=ctx.namespace,
        )
        for i in range(2):
            cluster.create_pod(
                f"monitor-{i}-{len(cluster.pods)}",
                _aux_pod("chase-ci/job-monitor:1.0", 0, "1G", done_event),
                namespace=ctx.namespace,
            )

        merged_objects: list[str] = []
        bytes_downloaded = [0.0]

        def worker_pod(index: int) -> PodSpec:
            def main(pod_ctx):
                worker = pod_ctx.pod.meta.name
                host = pod_ctx.node.spec.name
                downloader = Aria2Downloader(
                    env,
                    tb.flowsim,
                    tb.topology,
                    tb.thredds,
                    host=host,
                    connections=int(p["connections"]),
                    coalesce_threshold=int(p["coalesce_files"]),
                    retry_policy=policy,
                    metrics=tb.registry,
                    on_progress=pod_ctx.heartbeat,
                    seed=tb.seed,
                    tracer=getattr(tb, "tracer", None),
                    span_parent=ctx.span,
                )
                resolve_rng = np.random.default_rng(
                    derive_seed(tb.seed, "resolve", worker)
                )
                planner = MergePlanner(files_per_merge=int(p["files_per_merge"]))
                try:
                    while True:
                        try:
                            msg = queue.try_pop(worker)
                        except QueueEmptyError:
                            break
                        indices = list(msg.body)
                        # Catalog lookups see the same transient 503s as
                        # streams; retry them under the same policy.
                        requests = yield from retry_call(
                            env,
                            lambda: tb.thredds.resolve_many(
                                indices, subset_vars
                            ),
                            policy,
                            resolve_rng,
                        )
                        ctx.gauge("step1_worker_cpu_cores", 0.5, {"worker": worker})
                        stats = yield from downloader.download_batch(requests)
                        sizes = {
                            r.granule.index: r.nbytes for r in requests
                        }
                        ctx.gauge(
                            "step1_worker_cpu_cores",
                            float(p["worker_cpu"]),
                            {"worker": worker},
                        )
                        for plan in planner.plan(indices, sizes, worker):
                            yield env.timeout(plan.cpu_seconds)
                            yield tb.ceph.put(
                                pool,
                                plan.output_name,
                                plan.output_bytes,
                                client_host=host,
                            )
                            merged_objects.append(plan.output_name)
                            pod_ctx.heartbeat()
                        queue.ack(worker, msg)
                        bytes_downloaded[0] += stats.bytes
                        ctx.counter(
                            "step1_downloaded_bytes_total",
                            stats.bytes,
                            {"worker": worker},
                        )
                        ctx.counter(
                            "step1_downloaded_files_total",
                            stats.files,
                            {"worker": worker},
                        )
                        ctx.gauge("step1_worker_cpu_cores", 0.5, {"worker": worker})
                except ProcessKilled:
                    # Crash/NodeLost/LivenessFailed: put unacked work back
                    # for the replacement pod (§III-A's fault tolerance).
                    queue.recover(worker)
                    raise
                except Exception:
                    # A terminal transfer failure crashes this pod; its
                    # in-flight chunk must go back on the queue or the
                    # restarted worker would never see it again.
                    queue.recover(worker)
                    raise
                ctx.gauge("step1_worker_cpu_cores", 0.0, {"worker": worker})
                return stats_total(worker)

            def stats_total(worker: str) -> float:
                return queue.acked_total

            return PodSpec(
                containers=[
                    ContainerSpec(
                        name="aria2-worker",
                        image=self.image,
                        main=main,
                        resources=ResourceRequirements(
                            cpu=p["worker_cpu"], memory=p["worker_memory"]
                        ),
                    )
                ],
                liveness=(
                    LivenessProbe(
                        period_s=max(1.0, float(liveness_s) / 4.0),
                        timeout_s=float(liveness_s),
                    )
                    if liveness_s is not None
                    else None
                ),
            )

        job = cluster.create_job(
            f"download-workers-{len(cluster.jobs)}",
            JobSpec(
                template=worker_pod,
                completions=n_workers,
                parallelism=n_workers,
                backoff_limit=max(6, 2 * n_workers),
            ),
            namespace=ctx.namespace,
        )
        # Pipelined mode: materialize the training inputs CONCURRENTLY
        # with the worker job and announce them on the stream, so the
        # training step can start while the transfer tail is still
        # running.  Barrier mode keeps the sequential order (job, then
        # materialization) — byte-identical to previous releases.
        stream = ctx.stream_out()
        mat_proc = None
        content_box: dict[str, object] = {}
        if stream is not None:

            def materialize_streaming():
                result = yield from self._materialize(ctx, subset_vars, policy)
                content_box.update(result)
                if result:
                    stream.mark("content-ready", dict(result))

            mat_proc = env.process(
                materialize_streaming(), name=f"{ctx.namespace}-materialize"
            )
            # The join below consumes any failure; don't crash the run
            # if materialization breaks while we wait on the job.
            mat_proc.defuse()
        try:
            yield job.completion_event
        except BaseException:
            if mat_proc is not None and mat_proc.is_alive:
                mat_proc.interrupt("download attempt torn down")
            raise
        finally:
            done_event.succeed()

        if mat_proc is not None:
            yield mat_proc  # join (re-raises a materialization failure)
            content = content_box
        else:
            content = yield from self._materialize(ctx, subset_vars, policy)

        ctx.report.data_processed_bytes = bytes_downloaded[0]
        ctx.report.artifacts.update(
            {
                "merged_objects": sorted(merged_objects),
                "pool": pool,
                "files_downloaded": len(tb.archive),
                "bytes_downloaded": bytes_downloaded[0],
                "queue_acked": queue.acked_total,
                "queue_requeued": queue.requeued_total,
                **content,
            }
        )

    def _materialize(self, ctx: StepContext, subset_vars, policy):
        """Content path: real arrays through the subset service -> IVT ->
        the shared store.  This is the actual data the training step
        reads back out of Ceph.  A generator; returns the content
        artifact dict ({} when materialization is disabled).  Its RNG
        stream is derived independently of the worker pods', so the
        produced bytes are identical whether it runs after the worker
        job (barrier) or concurrently with it (overlap).
        """
        tb = ctx.testbed
        env = tb.env
        p = ctx.params
        content: dict[str, object] = {}
        nt = min(int(p["materialize_timesteps"]), len(tb.archive))
        if nt > 0 and tb.thredds.generator is not None:
            mat_rng = np.random.default_rng(
                derive_seed(tb.seed, "materialize", ctx.namespace)
            )
            fields = []
            for t in range(nt):
                granule = yield from retry_call(
                    env,
                    lambda t=t: tb.thredds.open_granule(
                        t, variables=subset_vars
                    ),
                    policy,
                    mat_rng,
                )
                fields.append(granule)
            from repro.data.ivt import ivt_magnitude

            levels = tb.ml_grid.levels_hpa
            ivt = np.stack(
                [
                    ivt_magnitude(
                        g.variables["U"].data,
                        g.variables["V"].data,
                        g.variables["QV"].data,
                        levels,
                    )
                    for g in fields
                ]
            )
            labels = tb.merra_generator().label_volume(0, nt)
            volume_path = "/ivt/connect-input-volume.npy"
            labels_path = "/ivt/connect-labels.npy"
            with ctx.trace(
                "materialize-content",
                "transfer",
                bytes=float(ivt.nbytes + labels.nbytes),
                timesteps=nt,
            ):
                yield tb.cephfs.write_timed(
                    volume_path, float(ivt.nbytes), payload=ivt
                )
                yield tb.cephfs.write_timed(
                    labels_path, float(labels.nbytes), payload=labels
                )
            content = {
                "content_volume_path": volume_path,
                "content_labels_path": labels_path,
                "content_timesteps": nt,
            }
        return content


class TrainingStep(WorkflowStep):
    """Step 2: FFN training on one GPU (data prep + SGD + checkpoint)."""

    base_gpus = 1  # one 1080ti trainer pod (§III-B)

    #: In overlap mode, start as soon as the download step is *running*
    #: and block on its ``content-ready`` milestone instead of on the
    #: whole-step barrier (the download's WAN tail overlaps training).
    stream_inputs = ("download",)

    default_params: dict[str, object] = {
        "train_timesteps": 240,  # 30 days of 3-hourly data (§III-B)
        "real_ml": True,
        "real_train_steps": 150,
        "real_train_timesteps": 24,
        "ffn_config": None,  # FFNConfig override for the real run
        "model_object": "ffn/checkpoint-v1",
    }

    def __init__(self, **kwargs):
        kwargs.setdefault("name", "training")
        kwargs.setdefault("image", "chase-ci/ffn-train:1.0")
        kwargs.setdefault(
            "description", "Train the flood-filling network on labelled IVT"
        )
        super().__init__(**kwargs)

    def execute(self, ctx: StepContext):
        tb = ctx.testbed
        env = tb.env
        p = ctx.params
        train_voxels = PAPER_GRID.nlat * PAPER_GRID.nlon * int(p["train_timesteps"])
        results: dict[str, object] = {}

        def main(pod_ctx):
            host = pod_ctx.node.spec.name
            worker = pod_ctx.pod.meta.name
            # Pull the training volume (the 381 MB merged HDF) from Ceph.
            ctx.gauge("step2_phase", 0.0, {"pod": worker})  # 0 = fetching
            with ctx.trace(
                "fetch-training-volume", "transfer", bytes=TRAIN_DATA_BYTES
            ):
                yield tb.cephfs.cluster.put(
                    "merra", "training/connect-labels-30d.h5", TRAIN_DATA_BYTES
                )
                yield tb.ceph.get("merra", "training/connect-labels-30d.h5",
                                  client_host=host)
            # Data prep: partition volumes + coordinates (Figure 5, purple).
            ctx.gauge("step2_phase", 1.0, {"pod": worker})
            with ctx.trace("data-prep", "compute", voxels=train_voxels):
                yield env.timeout(tb.perf.train_prep_seconds(train_voxels))
            # Real ML: train the FFN — preferably on the data step 1
            # materialized into the shared store ("the data has been
            # transferred to the storage volume (CephFS accessible by all
            # nodes)", §III-B), falling back to the generator.
            if p["real_ml"]:
                gen = tb.merra_generator()
                nt = int(p["real_train_timesteps"])
                download_art = ctx.artifacts.get("download", {})
                if not download_art:
                    # Pipelined mode: the download step is still running.
                    # Wait for its content milestone (a queueing interval
                    # in the time partition), not for the whole step.
                    chan = ctx.stream_in("download")
                    if chan is not None:
                        with ctx.trace("wait-content-stream", "queueing"):
                            payload = yield from chan.wait_milestone(
                                "content-ready", default=None
                            )
                        download_art = dict(payload) if payload else {}
                volume_path = download_art.get("content_volume_path")
                if volume_path and tb.cephfs.exists(str(volume_path)):
                    volume = np.asarray(
                        tb.cephfs.read_payload(str(volume_path))
                    )
                    labels = np.asarray(
                        tb.cephfs.read_payload(
                            str(download_art["content_labels_path"])
                        )
                    )
                    nt = volume.shape[0]
                    results["volume_source"] = "cephfs"
                else:
                    volume = gen.ivt_volume(0, nt)
                    labels = gen.label_volume(0, nt)
                    results["volume_source"] = "generator"
                # "the input to this system is translated from NetCDF
                # files to a binary representation in a protocol buffer
                # file" (§III-E.1): serialize the training example to a
                # real TFRecord-like blob in the store.
                from repro.data.tfrecord import TFRecordWriter, VolumeExample

                writer = TFRecordWriter()
                writer.write(
                    VolumeExample(
                        volume=volume.astype(np.float32),
                        label=labels.astype(np.uint8),
                        meta={"t0": 0, "nt": int(nt)},
                    )
                )
                blob = writer.getvalue()
                yield tb.cephfs.write_timed(
                    "/protobuf/train-000.pb", float(len(blob)), payload=blob
                )
                results["protobuf_path"] = "/protobuf/train-000.pb"
                results["protobuf_bytes"] = len(blob)

                config = p["ffn_config"] or FFNConfig(
                    fov=(5, 5, 5), filters=6, modules=1, seed=tb.seed
                )
                model = FFNModel(config)
                trainer = FFNTrainer(model, seed=tb.seed)
                training_report = trainer.train(
                    volume, labels, steps=int(p["real_train_steps"])
                )
                results["model_state"] = model.state_dict()
                results["ffn_config"] = config
                results["training_report"] = training_report
                results["train_window"] = (0, nt)
                checkpoint_bytes = sum(
                    a.nbytes for a in results["model_state"].values()
                )
            else:
                checkpoint_bytes = 4e6
            # Paper-scale training time (Figure 5, green).
            ctx.gauge("step2_phase", 2.0, {"pod": worker})
            with ctx.trace("training", "compute", voxels=train_voxels):
                yield env.timeout(
                    tb.perf.training_seconds(
                        train_voxels, worker=worker, seed=tb.seed
                    )
                )
            # Save the checkpoint: "the trained FFN model is then saved in
            # the Ceph Object Store, including all parameters" (§III-C).
            with ctx.trace(
                "save-checkpoint", "transfer", bytes=float(checkpoint_bytes)
            ):
                yield tb.ceph.put(
                    "models",
                    str(p["model_object"]),
                    checkpoint_bytes,
                    payload=results.get("model_state"),
                    client_host=host,
                )
            ctx.gauge("step2_phase", 3.0, {"pod": worker})
            return "trained"

        spec = PodSpec(
            containers=[
                ContainerSpec(
                    name="trainer",
                    image=self.image,
                    main=main,
                    resources=ResourceRequirements(cpu=1, memory="14.8G", gpu=1),
                )
            ]
        )
        job = tb.cluster.create_job(
            f"ffn-training-{len(tb.cluster.jobs)}",
            JobSpec(template=lambda i: spec, completions=1, parallelism=1),
            namespace=ctx.namespace,
        )
        yield job.completion_event

        ctx.report.data_processed_bytes = TRAIN_DATA_BYTES
        ctx.report.artifacts.update(
            {
                "model_object": p["model_object"],
                "train_voxels": train_voxels,
                **results,
            }
        )


class InferenceStep(WorkflowStep):
    """Step 3: sharded multi-GPU flood-fill inference."""

    default_params: dict[str, object] = {
        "n_gpus": 50,
        "real_ml": True,
        "real_test_timesteps": 16,
        "real_shards": 4,  # logical workers for the real sharded run
        "real_halo": 2,
        "real_max_workers": 1,  # >1 fans shards out on a process pool
        "results_prefix": "segmentation/v1",
    }

    def __init__(self, **kwargs):
        kwargs.setdefault("name", "inference")
        kwargs.setdefault("image", "chase-ci/ffn-infer:1.0")
        kwargs.setdefault(
            "description", "Distributed FFN inference across dedicated GPUs"
        )
        super().__init__(**kwargs)

    def execute(self, ctx: StepContext):
        tb = ctx.testbed
        env = tb.env
        p = ctx.params
        n_gpus = int(p["n_gpus"])
        training = ctx.artifacts.get("training", {})

        n_files = len(tb.archive)
        shards = split_shards(n_files, n_gpus)
        voxels_per_file = PAPER_GRID.nlat * PAPER_GRID.nlon
        subset_bytes = tb.archive.total_subset_bytes
        result_objects: list[str] = []
        total_result_bytes = [0.0]

        def shard_pod(index: int) -> PodSpec:
            t0, t1 = shards[index % len(shards)]
            shard_files = t1 - t0
            shard_voxels = shard_files * voxels_per_file
            shard_bytes = subset_bytes * shard_files / n_files

            def main(pod_ctx):
                host = pod_ctx.node.spec.name
                worker = f"inf-{index}"
                # Fetch the model + this shard's data from the store.
                with ctx.trace(
                    f"fetch-shard:{index}", "transfer", bytes=shard_bytes
                ):
                    yield tb.ceph.get(
                        "models", str(training.get("model_object",
                                                   "ffn/checkpoint-v1")),
                        client_host=host,
                    )
                    yield from _timed_ceph_read(tb, shard_bytes, host, worker)
                ctx.gauge("step3_gpu_busy", 1.0, {"worker": worker})
                with ctx.trace(
                    f"infer-shard:{index}", "compute", voxels=shard_voxels
                ):
                    yield env.timeout(
                        tb.perf.inference_seconds(
                            shard_voxels, worker=worker, seed=tb.seed
                        )
                    )
                ctx.gauge("step3_gpu_busy", 0.0, {"worker": worker})
                result_name = f"{p['results_prefix']}/shard-{index:03d}.labels"
                result_bytes = shard_voxels * RESULT_BYTES_PER_VOXEL
                with ctx.trace(
                    f"put-results:{index}", "transfer", bytes=result_bytes
                ):
                    yield tb.ceph.put(
                        "results", result_name, result_bytes, client_host=host
                    )
                result_objects.append(result_name)
                total_result_bytes[0] += result_bytes
                ctx.counter("step3_voxels_done_total", shard_voxels, {"worker": worker})
                return shard_voxels

            return PodSpec(
                containers=[
                    ContainerSpec(
                        name="ffn-infer",
                        image=self.image,
                        main=main,
                        resources=ResourceRequirements(cpu=1, memory="12G", gpu=1),
                    )
                ]
            )

        job = tb.cluster.create_job(
            f"ffn-inference-{len(tb.cluster.jobs)}",
            JobSpec(
                template=shard_pod,
                completions=len(shards),
                parallelism=n_gpus,
                backoff_limit=2 * n_gpus,
            ),
            namespace=ctx.namespace,
        )
        yield job.completion_event

        # Real ML: segment a held-out window with the trained model,
        # sharded across logical workers with halo overlap and stitched
        # across shard boundaries — the algorithm the 50-GPU fan-out
        # needs so CONNECT life-cycles spanning shards stay one object.
        real: dict[str, object] = {}
        if p["real_ml"] and "model_state" in training:
            from repro.ml.distributed_inference import distributed_segment

            gen = tb.merra_generator()
            _, train_end = training.get("train_window", (0, 24))
            nt = int(p["real_test_timesteps"])
            volume = gen.ivt_volume(train_end, nt)
            truth = gen.label_volume(train_end, nt)
            model = FFNModel(training["ffn_config"])
            model.load_state_dict(training["model_state"])
            labels, real_shards = distributed_segment(
                model,
                volume,
                n_workers=int(p["real_shards"]),
                halo=int(p["real_halo"]),
                max_workers=int(p["real_max_workers"]),
                tracer=getattr(tb, "tracer", None),
                span_parent=ctx.span,
            )
            scores = voxel_metrics(labels, truth)
            real = {
                "label_volume": labels,
                "truth_volume": truth,
                "ivt_volume": volume,
                "voxel_f1": scores.f1,
                "voxel_recall": scores.recall,
                "voxel_precision": scores.precision,
                "real_shard_count": len(real_shards),
            }

        ctx.report.data_processed_bytes = subset_bytes
        ctx.report.artifacts.update(
            {
                "result_objects": sorted(result_objects),
                "result_bytes": total_result_bytes[0],
                "n_shards": len(shards),
                "voxels_total": n_files * voxels_per_file,
                **real,
            }
        )


def _timed_ceph_read(tb, nbytes: float, host: str, name: str):
    """Read ``nbytes`` of shard data from the store (as one bulk flow
    from the nearest OSD host's disk through the network)."""
    osd = next(iter(tb.ceph.osds.values()))
    resources = [osd.disk]
    if host != osd.host:
        resources = [osd.disk, *tb.topology.path_resources(osd.host, host)]
    yield tb.flowsim.transfer(resources, nbytes, name=f"shard-read:{name}")


class VisualizationStep(WorkflowStep):
    """Step 4: JupyterLab analysis of segmentation results."""

    base_gpus = 1  # one JupyterLab GPU pod (§III-D)

    default_params: dict[str, object] = {"real_ml": True}

    def __init__(self, **kwargs):
        kwargs.setdefault("name", "visualization")
        kwargs.setdefault("image", "chase-ci/jupyterlab-gpu:2.0")
        kwargs.setdefault(
            "description",
            "Load results from the object store; plot objects and statistics",
        )
        super().__init__(**kwargs)

    def execute(self, ctx: StepContext):
        tb = ctx.testbed
        p = ctx.params
        inference = ctx.artifacts.get("inference", {})
        result_bytes = float(inference.get("result_bytes", 0.0))
        stats: dict[str, object] = {}

        def main(pod_ctx):
            host = pod_ctx.node.spec.name
            # Mount the store; load the most recent results (§III-D).
            with ctx.trace("load-results", "transfer", bytes=result_bytes):
                for name in list(inference.get("result_objects", []))[:8]:
                    yield tb.ceph.get("results", name, client_host=host)
                if result_bytes:
                    remaining = result_bytes
                    yield from _timed_ceph_read(tb, remaining, host, "viz")
            # Real analysis: object statistics over the FFN labels via
            # CONNECT's life-cycle machinery.
            if p["real_ml"] and "label_volume" in inference:
                labels = inference["label_volume"]
                ivt = inference["ivt_volume"]
                report = connect_segmentation(
                    np.where(labels > 0, ivt, 0.0), threshold=1e-9, min_voxels=2
                )
                stats["n_objects"] = report.n_objects
                stats["lifetimes"] = [o.lifetime_steps for o in report.objects]
                stats["mean_lifetime_steps"] = (
                    float(np.mean(stats["lifetimes"])) if report.objects else 0.0
                )
                stats["max_intensity"] = max(
                    (o.max_intensity for o in report.objects), default=0.0
                )
            return "visualized"

        spec = PodSpec(
            containers=[
                ContainerSpec(
                    name="jupyterlab",
                    image=self.image,
                    main=main,
                    resources=ResourceRequirements(cpu=1, memory="12G", gpu=1),
                )
            ]
        )
        job = tb.cluster.create_job(
            f"jupyterlab-viz-{len(tb.cluster.jobs)}",
            JobSpec(template=lambda i: spec, completions=1, parallelism=1),
            namespace=ctx.namespace,
        )
        yield job.completion_event
        ctx.report.interactive = True  # Table I: "NA"
        ctx.report.data_processed_bytes = result_bytes
        ctx.report.artifacts.update(stats)


def build_connect_workflow(
    testbed=None,
    *,
    n_workers: int = 10,
    n_gpus: int = 50,
    subset: bool = True,
    real_ml: bool = True,
    overrides: dict[str, dict] | None = None,
) -> Workflow:
    """Assemble the 4-step CONNECT workflow of Figure 2.

    ``testbed`` is accepted for signature symmetry but the workflow binds
    to a testbed only at run time (steps are testbed-agnostic specs).
    """
    overrides = overrides or {}
    # The download step moves data over the WAN; give it a step-level
    # retry budget so a partition converts to a retry instead of a hang
    # (and so the DAG005 lint rule is satisfied by construction).
    download = DownloadStep(
        max_retries=1,
        params={"n_workers": n_workers, "subset": subset,
                **overrides.get("download", {})}
    )
    training = TrainingStep(
        params={"real_ml": real_ml, **overrides.get("training", {})}
    ).after("download")
    inference = InferenceStep(
        params={"n_gpus": n_gpus, "real_ml": real_ml,
                **overrides.get("inference", {})}
    ).after("training")
    visualization = VisualizationStep(
        params={"real_ml": real_ml, **overrides.get("visualization", {})}
    ).after("inference")
    return Workflow("connect", [download, training, inference, visualization])
