"""Kepler-3.0-style interactive, collaborative workflow execution.

Paper §III-E.5: "Currently, the workflow is set up as a series of
kubernetes jobs that can be controlled either through interacting with
kubernetes directly or through a Jupyter Notebook that can control each
step of the process.  In the future we would like to move this towards a
collaborative workflow using the PPODS methodology and the new Kepler 3.0
interface" — a UI where "the CONNECT workflow would be presented as a
series of steps ... where each step could easily be worked on" and
"centralized in one location where every one working on the project could
see them" (§VI).

:class:`KeplerSession` provides exactly that control surface over a
workflow: run steps one at a time (or up to a step), re-run a step after
editing its parameters, inspect per-step status/measurements, and attach
collaborator annotations — all without leaving the session.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import StepFailedError, ValidationError
from repro.testbed import NautilusTestbed
from repro.workflow.driver import WorkflowDriver
from repro.workflow.ppods import PPoDSSession
from repro.workflow.step import StepReport
from repro.workflow.workflow import Workflow

__all__ = ["KeplerSession", "StepCell"]


@dataclasses.dataclass
class StepCell:
    """The notebook-cell view of one step."""

    name: str
    status: str = "idle"  # idle | ran | failed | stale
    runs: int = 0
    last_report: StepReport | None = None
    annotations: list[tuple[str, str]] = dataclasses.field(default_factory=list)


class KeplerSession:
    """Interactive step-at-a-time execution of a workflow.

    Downstream steps become ``stale`` when an upstream step re-runs, so
    collaborators can see which results are out of date — the
    "measuring, learning, and informing" loop (§VIII) at step
    granularity.
    """

    def __init__(self, testbed: NautilusTestbed, workflow: Workflow):
        self.testbed = testbed
        self.workflow = workflow
        self.driver = WorkflowDriver(testbed)
        self.cells: dict[str, StepCell] = {
            name: StepCell(name=name) for name in workflow.order
        }
        #: artifacts of the latest run of each step (what dependents read)
        self.artifacts: dict[str, dict] = {}
        self.ppods = PPoDSSession(workflow)

    # -- execution -----------------------------------------------------------------

    def run_step(self, name: str, **param_overrides) -> StepReport:
        """Run exactly one step (its dependencies must have run).

        Parameter overrides are applied to the step before running —
        the interactive "adjust and rerun" loop of §III-D.
        """
        if name not in self.cells:
            raise ValidationError(f"unknown step {name!r}")
        step = self.workflow.steps[name]
        missing = [
            dep for dep in step.depends_on if self.cells[dep].status != "ran"
        ]
        if missing:
            raise ValidationError(
                f"step {name!r} needs {missing} to have run first"
            )
        step.params.update(param_overrides)

        env = self.testbed.env
        report = StepReport(name=name)
        namespace = f"kepler-{self.workflow.name}-{name}".lower()
        if namespace not in self.testbed.cluster.namespaces:
            self.testbed.cluster.create_namespace(namespace)
        from repro.workflow.driver import _NamespaceMeter
        from repro.workflow.step import StepContext

        meter = _NamespaceMeter(namespace)
        self.testbed.cluster.phase_hooks.append(meter.on_phase)
        ctx = StepContext(
            testbed=self.testbed,
            params=dict(step.params),
            artifacts=self.artifacts,
            report=report,
            namespace=namespace,
        )
        cell = self.cells[name]
        report.start_time = env.now
        try:
            proc = env.process(step.execute(ctx), name=f"kepler:{name}")
            env.run(until=proc)
            report.succeeded = True
            cell.status = "ran"
        except Exception as exc:  # noqa: BLE001 - shown in the cell
            report.succeeded = False
            report.error = repr(exc)
            cell.status = "failed"
        finally:
            report.end_time = env.now
            self.driver._absorb_meter(report, meter)
            self.testbed.cluster.phase_hooks.remove(meter.on_phase)
        cell.runs += 1
        cell.last_report = report
        self.artifacts[name] = dict(report.artifacts)
        self.ppods.record(report)
        if report.succeeded:
            self._mark_dependents_stale(name)
        else:
            raise StepFailedError(name, report.error)
        return report

    def run_until(self, name: str) -> list[StepReport]:
        """Run every not-yet-run step up to and including ``name``."""
        reports = []
        for step_name in self.workflow.order:
            if self.cells[step_name].status != "ran":
                reports.append(self.run_step(step_name))
            if step_name == name:
                break
        return reports

    def rerun(self, name: str, **param_overrides) -> StepReport:
        """Re-execute a step (dependencies must still be 'ran')."""
        self.cells[name].status = "idle"
        return self.run_step(name, **param_overrides)

    def _mark_dependents_stale(self, name: str) -> None:
        for other in self.workflow.order:
            step = self.workflow.steps[other]
            if name in step.depends_on and self.cells[other].status == "ran":
                self.cells[other].status = "stale"
                self._mark_dependents_stale(other)

    # -- collaboration ----------------------------------------------------------------

    def annotate(self, name: str, author: str, note: str) -> None:
        """Attach a collaborator note to a step cell."""
        if name not in self.cells:
            raise ValidationError(f"unknown step {name!r}")
        self.cells[name].annotations.append((author, note))

    def board(self) -> str:
        """The shared 'centralized in one location' step view (§VI)."""
        lines = [f"Kepler session — workflow {self.workflow.name!r}"]
        for i, name in enumerate(self.workflow.order, 1):
            cell = self.cells[name]
            duration = (
                f"{cell.last_report.duration_minutes:.1f} min"
                if cell.last_report is not None
                else "—"
            )
            lines.append(
                f"  [{i}] {name:<16} {cell.status:<7} runs={cell.runs} "
                f"last={duration}"
            )
            for author, note in cell.annotations:
                lines.append(f"        💬 {author}: {note}")
        return "\n".join(lines)
