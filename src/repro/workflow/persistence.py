"""Saving and reloading workflow measurements.

PPoDS is a measure-learn-inform loop *across runs* (§VI, §VIII), which
only works if measurements survive the session.  This module serializes
:class:`~repro.workflow.driver.WorkflowReport` objects to JSON: numeric
and string artifacts round-trip exactly; arrays and other rich objects
are summarized (shape/dtype/type) rather than dropped silently, so a
reloaded report still tells you what the run produced.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as _t

import numpy as np

from repro.workflow.driver import WorkflowReport
from repro.workflow.step import StepReport

__all__ = ["report_to_dict", "report_from_dict", "save_report", "load_report"]

_FORMAT_VERSION = 1


def _sanitize(value: object) -> object:
    """Make one artifact value JSON-safe (summarizing when needed)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return {
            "__array_summary__": True,
            "shape": list(value.shape),
            "dtype": str(value.dtype),
            "nonzero": int(np.count_nonzero(value)),
        }
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **_sanitize(dataclasses.asdict(value)),
        }
    return {"__repr__": repr(value), "__type__": type(value).__name__}


def report_to_dict(report: WorkflowReport) -> dict:
    """A JSON-safe dictionary of a workflow report."""
    return {
        "format_version": _FORMAT_VERSION,
        "workflow_name": report.workflow_name,
        "total_duration_s": report.total_duration_s,
        "succeeded": report.succeeded,
        "steps": [
            {
                "name": s.name,
                "start_time": s.start_time,
                "end_time": s.end_time,
                "pods": s.pods,
                "cpus": s.cpus,
                "gpus": s.gpus,
                "memory_bytes": s.memory_bytes,
                "data_processed_bytes": s.data_processed_bytes,
                "interactive": s.interactive,
                "succeeded": s.succeeded,
                "error": s.error,
                "artifacts": _sanitize(s.artifacts),
            }
            for s in report.steps
        ],
    }


def report_from_dict(data: dict) -> WorkflowReport:
    """Rebuild a report from :func:`report_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported report format version: {version!r}")
    steps = []
    for raw in data["steps"]:
        step = StepReport(name=raw["name"])
        step.start_time = raw["start_time"]
        step.end_time = raw["end_time"]
        step.pods = raw["pods"]
        step.cpus = raw["cpus"]
        step.gpus = raw["gpus"]
        step.memory_bytes = raw["memory_bytes"]
        step.data_processed_bytes = raw["data_processed_bytes"]
        step.interactive = raw["interactive"]
        step.succeeded = raw["succeeded"]
        step.error = raw["error"]
        step.artifacts = dict(raw["artifacts"])
        steps.append(step)
    return WorkflowReport(
        workflow_name=data["workflow_name"],
        steps=steps,
        total_duration_s=data["total_duration_s"],
    )


def save_report(report: WorkflowReport, path: "str | pathlib.Path") -> None:
    """Write a report to a JSON file."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(report_to_dict(report), indent=2, sort_keys=True))


def load_report(path: "str | pathlib.Path") -> WorkflowReport:
    """Read a report back from :func:`save_report` output."""
    return report_from_dict(json.loads(pathlib.Path(path).read_text()))
