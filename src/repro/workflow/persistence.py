"""Saving and reloading workflow measurements.

PPoDS is a measure-learn-inform loop *across runs* (§VI, §VIII), which
only works if measurements survive the session.  This module serializes
:class:`~repro.workflow.driver.WorkflowReport` objects to JSON: numeric
and string artifacts round-trip exactly; arrays and other rich objects
are summarized (shape/dtype/type) rather than dropped silently, so a
reloaded report still tells you what the run produced.

It also provides :class:`WorkflowCheckpoint`, the completed-step ledger
behind ``WorkflowDriver.run(checkpoint=..., resume_from=...)``: each
completed step's report and artifacts are recorded as it finishes, so a
workflow killed mid-chaos can resume, skip the completed prefix, and
still hand downstream steps their upstream artifacts.
"""

from __future__ import annotations

import copy
import json
import pathlib

from repro.errors import WorkflowError
from repro.workflow.driver import REPORT_FORMAT_VERSION, WorkflowReport
from repro.workflow.step import StepReport, sanitize_artifact_value

__all__ = [
    "report_to_dict",
    "report_from_dict",
    "save_report",
    "load_report",
    "WorkflowCheckpoint",
]

_FORMAT_VERSION = REPORT_FORMAT_VERSION

#: Kept as module-level helpers for backwards compatibility; the stable
#: shapes now live on the report classes themselves
#: (:meth:`StepReport.to_dict` / :meth:`WorkflowReport.to_dict`), shared
#: between saved reports and checkpoints.
_sanitize = sanitize_artifact_value


def report_to_dict(report: WorkflowReport) -> dict:
    """A JSON-safe dictionary of a workflow report."""
    return report.to_dict()


def report_from_dict(data: dict) -> WorkflowReport:
    """Rebuild a report from :func:`report_to_dict` output."""
    return WorkflowReport.from_dict(data)


def save_report(report: WorkflowReport, path: "str | pathlib.Path") -> None:
    """Write a report to a JSON file."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(report_to_dict(report), indent=2, sort_keys=True))


def load_report(path: "str | pathlib.Path") -> WorkflowReport:
    """Read a report back from :func:`save_report` output."""
    return report_from_dict(json.loads(pathlib.Path(path).read_text()))


class WorkflowCheckpoint:
    """Completed-step ledger for ``WorkflowDriver.run``.

    The driver records each step's report and artifacts *as it
    completes*; a run killed mid-way (deadline, chaos, operator Ctrl-C)
    therefore leaves a checkpoint whose ``completed()`` set is exactly
    the prefix that doesn't need re-executing.  Passing the checkpoint
    back via ``run(resume_from=...)`` restores those reports (flagged
    ``resumed=True``) and their artifacts, and only the remaining steps
    run.

    In memory the checkpoint keeps the *live* artifact objects (arrays,
    model handles), so a same-session resume hands downstream steps the
    real thing.  :meth:`save`/:meth:`load` round-trip through the same
    sanitized JSON projection as :func:`save_report` — rich objects
    degrade to summaries, which is still enough to skip completed steps
    across sessions.
    """

    def __init__(
        self,
        workflow_name: str,
        path: "str | pathlib.Path | None" = None,
    ):
        self.workflow_name = workflow_name
        #: autosave target — when set, :meth:`record` rewrites this file
        #: after every completed step.
        self.path = pathlib.Path(path) if path is not None else None
        self.reports: dict[str, StepReport] = {}
        self.artifacts: dict[str, dict] = {}

    def record(self, report: StepReport, artifacts: dict) -> None:
        """Persist one completed step (overwrites a previous record)."""
        if not report.succeeded:
            raise WorkflowError(
                f"checkpoint only records successful steps, got {report.name!r}"
            )
        self.reports[report.name] = copy.copy(report)
        self.reports[report.name].artifacts = dict(report.artifacts)
        self.artifacts[report.name] = dict(artifacts)
        if self.path is not None:
            self.save(self.path)

    def completed(self) -> set[str]:
        """Names of steps this checkpoint can skip on resume."""
        return set(self.reports)

    def has(self, name: str) -> bool:
        return name in self.reports

    def report_copy(self, name: str) -> StepReport:
        """An independent copy of a recorded step report."""
        report = copy.copy(self.reports[name])
        report.artifacts = dict(self.reports[name].artifacts)
        return report

    def to_dict(self) -> dict:
        return {
            "format_version": _FORMAT_VERSION,
            "workflow_name": self.workflow_name,
            "steps": {name: r.to_dict() for name, r in self.reports.items()},
            "artifacts": {
                name: sanitize_artifact_value(arts)
                for name, arts in self.artifacts.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkflowCheckpoint":
        version = data.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint format version: {version!r}")
        ckpt = cls(workflow_name=data["workflow_name"])
        for name, raw in data["steps"].items():
            ckpt.reports[name] = StepReport.from_dict(raw)
        for name, arts in data["artifacts"].items():
            ckpt.artifacts[name] = dict(arts)
        return ckpt

    def save(self, path: "str | pathlib.Path") -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True)
        )

    @classmethod
    def load(cls, path: "str | pathlib.Path") -> "WorkflowCheckpoint":
        ckpt = cls.from_dict(json.loads(pathlib.Path(path).read_text()))
        ckpt.path = pathlib.Path(path)
        return ckpt

    def __repr__(self) -> str:
        done = ", ".join(sorted(self.reports)) or "none"
        return f"<WorkflowCheckpoint {self.workflow_name!r} completed: {done}>"
