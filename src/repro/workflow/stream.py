"""Step-to-step streaming: the transfer/compute overlap primitive.

The barrier driver runs the CONNECT chain strictly sequentially: training
waits for the *whole* download step even though the slice of data it
needs (the materialized IVT volume) is ready long before the last worker
finishes its WAN transfers.  The tracing layer's exact per-layer time
partition makes that headroom visible as a long pure-``transfer`` band;
a :class:`StreamChannel` is how the driver converts it into overlap.

A producer step (``streams_output = True``) gets a channel; it can
``put`` items and ``mark`` named milestones while still running.  A
consumer step that declared the producer in ``stream_inputs`` may start
as soon as the producer is *launched* (driver ``overlap=True``) and
block on :meth:`StreamChannel.next_item` / :meth:`StreamChannel.
wait_milestone` instead of on the producer's completion barrier.

Failure semantics mirror the step retry model:

- producer attempt **retries** -> the old channel is *superseded* by the
  fresh attempt's channel; blocked consumers transparently re-wait on
  the successor (items restart from scratch — the new attempt re-produces
  them).
- producer fails **permanently** (or is cancelled) -> the channel closes
  with an error and blocked consumers get
  :class:`~repro.errors.StreamBrokenError`, failing their own attempt.
- producer finishes cleanly -> the channel closes; ``next_item`` returns
  :data:`END` and ``wait_milestone`` returns its ``default`` (the
  consumer falls back to the completed step's artifacts).

Checkpoint/resume is unaffected: a step is only recorded once complete,
and a consumer that finished before its producer is a legal checkpoint
state — resume replays exactly the unfinished steps.
"""

from __future__ import annotations

import typing as _t

from repro.errors import StreamBrokenError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment

__all__ = ["StreamChannel", "END"]


class _EndOfStream:
    """Sentinel returned by :meth:`StreamChannel.next_item` on a clean
    close (distinguishable from any real item, including None)."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<END>"


#: The end-of-stream sentinel.
END = _EndOfStream()


class StreamChannel:
    """An in-order item/milestone stream from one producer step.

    All consumer-facing waits are **generators** — call them with
    ``yield from`` inside a step body so the simulation kernel can park
    the consumer until the producer wakes it.
    """

    def __init__(self, env: "Environment", producer: str):
        self.env = env
        #: name of the producing step (for error messages)
        self.producer = producer
        #: items put so far, in order (append-only)
        self.items: list[object] = []
        #: reached milestones -> payload
        self.milestones: dict[str, object] = {}
        self.closed = False
        #: failure reason; non-None only on an error close
        self.error: str | None = None
        #: replacement channel installed when the producer retries
        self.superseded: "StreamChannel | None" = None
        self._waiters: list[Event] = []

    # -- producer side ------------------------------------------------------

    def put(self, item: object) -> None:
        """Append one item to the stream (producer side)."""
        if self.closed:
            raise StreamBrokenError(self.producer, "put() on a closed stream")
        self.items.append(item)
        self._wake()

    def mark(self, milestone: str, value: object = None) -> None:
        """Declare a named milestone reached, with an optional payload."""
        if self.closed:
            raise StreamBrokenError(self.producer, "mark() on a closed stream")
        self.milestones[milestone] = value
        self._wake()

    def close(self, error: str | None = None) -> None:
        """Close the stream: cleanly (producer done) or with an error
        (producer failed permanently / cancelled).  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self.error = error
        self._wake()

    def supersede(self, successor: "StreamChannel") -> None:
        """Point blocked consumers at the producer's retry attempt."""
        self.superseded = successor
        self._wake()

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    # -- consumer side ------------------------------------------------------

    def _wait_event(self) -> Event:
        event = Event(self.env)
        self._waiters.append(event)
        return event

    def _resolve(self) -> "StreamChannel":
        """Follow the supersession chain to the live channel."""
        chan: StreamChannel = self
        while chan.superseded is not None:
            chan = chan.superseded
        return chan

    def next_item(self, index: int):
        """Generator: the ``index``-th item, :data:`END` on clean close.

        Raises :class:`~repro.errors.StreamBrokenError` when the
        producer failed permanently.  If the producer retried, the wait
        transparently moves to the successor channel — note the
        successor restarts item production from index 0, so a consumer
        holding ``index > 0`` sees the retry attempt's items only from
        that offset on (CONNECT's consumers are milestone-based; item
        consumers that need exactly-once delivery should re-read from 0
        after a :class:`~repro.errors.StreamBrokenError`).
        """
        chan = self._resolve()
        while True:
            if index < len(chan.items):
                return chan.items[index]
            if chan.superseded is not None:
                chan = chan._resolve()
                continue
            if chan.closed:
                if chan.error is not None:
                    raise StreamBrokenError(chan.producer, chan.error)
                return END
            yield chan._wait_event()
            chan = chan._resolve()

    def wait_milestone(self, milestone: str, default: object = None):
        """Generator: block until ``milestone`` is marked; returns its
        payload.  A clean close without the milestone returns
        ``default`` (the producer finished but never produced it — the
        consumer should fall back to completed-step artifacts); an error
        close raises :class:`~repro.errors.StreamBrokenError`."""
        chan = self._resolve()
        while True:
            if milestone in chan.milestones:
                return chan.milestones[milestone]
            if chan.superseded is not None:
                chan = chan._resolve()
                continue
            if chan.closed:
                if chan.error is not None:
                    raise StreamBrokenError(chan.producer, chan.error)
                return default
            yield chan._wait_event()
            chan = chan._resolve()

    def __repr__(self) -> str:  # pragma: no cover
        state = (
            "superseded"
            if self.superseded is not None
            else ("error" if self.error else ("closed" if self.closed else "open"))
        )
        return (
            f"<StreamChannel from {self.producer!r} {state}: "
            f"{len(self.items)} items, {len(self.milestones)} milestones>"
        )
