"""Workflow DAGs: ordered, validated compositions of steps."""

from __future__ import annotations

import typing as _t

from repro.analysis import Severity, find_cycle, format_cycle, lint_workflow
from repro.errors import ValidationError
from repro.workflow.step import WorkflowStep

__all__ = ["Workflow"]


class Workflow:
    """A named DAG of :class:`WorkflowStep`.

    Steps execute in a topological order that respects ``depends_on``
    edges; the CONNECT case study is a simple chain (Figure 2), but the
    DAG is general so extension workflows can fan out.

    Construction runs the full ``dag`` rule pack of the static-analysis
    engine (:mod:`repro.analysis`): error-severity findings — cycles
    (reported with the full path, e.g. ``a -> b -> a``), self- and
    unknown dependencies — raise :class:`ValidationError`; advisory
    findings (orphan steps, network steps without retry budgets, ...)
    are kept on :attr:`lint_findings` for ``repro lint`` and callers to
    inspect.
    """

    def __init__(self, name: str, steps: _t.Sequence[WorkflowStep]):
        if not steps:
            raise ValidationError(f"workflow {name!r} needs at least one step")
        names = [s.name for s in steps]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValidationError(
                f"workflow {name!r} has duplicate step names: {dupes}"
            )
        self.name = name
        self.steps: dict[str, WorkflowStep] = {s.name: s for s in steps}
        findings = lint_workflow(self)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        if errors:
            raise ValidationError(
                f"workflow {name!r}: "
                + "; ".join(f.message for f in errors)
            )
        #: advisory (non-error) findings from the dag rule pack
        self.lint_findings = findings
        self._order = self._toposort()

    def _toposort(self) -> list[str]:
        """Topological execution order (declaration-stable tie-breaking).

        Also a validation backstop behind the construction-time lint:
        unknown dependencies and cycles raise :class:`ValidationError`
        with the workflow's name and — for cycles — the full offending
        path, deterministically (the same graph always names the same
        cycle, whatever the dict insertion order).
        """
        for step in self.steps.values():
            for dep in step.depends_on:
                if dep not in self.steps:
                    raise ValidationError(
                        f"workflow {self.name!r}: step {step.name!r} "
                        f"depends on unknown step {dep!r}"
                    )
        cycle = find_cycle({s.name: s.depends_on for s in self.steps.values()})
        if cycle is not None:
            raise ValidationError(
                f"workflow {self.name!r}: dependency cycle: "
                f"{format_cycle(cycle)}"
            )
        order: list[str] = []
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            done.add(name)
            for dep in self.steps[name].depends_on:
                visit(dep)
            order.append(name)

        # Stable order: declaration order drives tie-breaking.
        for name in self.steps:
            visit(name)
        return order

    @property
    def order(self) -> list[str]:
        """Execution order (topological, declaration-stable)."""
        return list(self._order)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> _t.Iterator[WorkflowStep]:
        for name in self._order:
            yield self.steps[name]

    def describe(self) -> str:
        """The Figure-2 view: steps with dependency arrows."""
        lines = [f"Workflow: {self.name}"]
        for i, name in enumerate(self._order, 1):
            step = self.steps[name]
            deps = f"  (after {', '.join(step.depends_on)})" if step.depends_on else ""
            lines.append(f"  {i}. {name} [{step.image}]{deps}")
            if step.description:
                lines.append(f"       {step.description}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Workflow {self.name}: {' -> '.join(self._order)}>"
