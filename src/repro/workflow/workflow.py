"""Workflow DAGs: ordered, validated compositions of steps."""

from __future__ import annotations

import typing as _t

from repro.errors import ValidationError
from repro.workflow.step import WorkflowStep

__all__ = ["Workflow"]


class Workflow:
    """A named DAG of :class:`WorkflowStep`.

    Steps execute in a topological order that respects ``depends_on``
    edges; the CONNECT case study is a simple chain (Figure 2), but the
    DAG is general so extension workflows can fan out.
    """

    def __init__(self, name: str, steps: _t.Sequence[WorkflowStep]):
        if not steps:
            raise ValidationError("workflow needs at least one step")
        names = [s.name for s in steps]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate step names: {names}")
        self.name = name
        self.steps: dict[str, WorkflowStep] = {s.name: s for s in steps}
        self._order = self._toposort()

    def _toposort(self) -> list[str]:
        for step in self.steps.values():
            for dep in step.depends_on:
                if dep not in self.steps:
                    raise ValidationError(
                        f"step {step.name!r} depends on unknown step {dep!r}"
                    )
        order: list[str] = []
        temp: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in temp:
                raise ValidationError(f"dependency cycle through {name!r}")
            temp.add(name)
            for dep in self.steps[name].depends_on:
                visit(dep)
            temp.discard(name)
            done.add(name)
            order.append(name)

        # Stable order: declaration order drives tie-breaking.
        for name in self.steps:
            visit(name)
        return order

    @property
    def order(self) -> list[str]:
        """Execution order (topological, declaration-stable)."""
        return list(self._order)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> _t.Iterator[WorkflowStep]:
        for name in self._order:
            yield self.steps[name]

    def describe(self) -> str:
        """The Figure-2 view: steps with dependency arrows."""
        lines = [f"Workflow: {self.name}"]
        for i, name in enumerate(self._order, 1):
            step = self.steps[name]
            deps = f"  (after {', '.join(step.depends_on)})" if step.depends_on else ""
            lines.append(f"  {i}. {name} [{step.image}]{deps}")
            if step.description:
                lines.append(f"       {step.description}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Workflow {self.name}: {' -> '.join(self._order)}>"
