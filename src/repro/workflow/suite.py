"""Multi-seed robustness runs of a workflow.

A reproduction whose numbers hold at exactly one seed is not a
reproduction.  The suite executes the same workflow on freshly built
testbeds across several seeds and separates the *structural* quantities
(pods/CPUs/GPUs/data — which must be identical, they are properties of
the configuration, not the randomness) from the *stochastic* ones
(durations — which vary with worker jitter and synthetic weather and are
reported as mean ± spread).
"""

from __future__ import annotations

import dataclasses
import statistics
import typing as _t
import warnings

from repro.errors import ValidationError
from repro.testbed import build_nautilus_testbed
from repro.viz.ascii import text_table
from repro.workflow.driver import WorkflowDriver, WorkflowReport

__all__ = ["StepStatistics", "RobustnessReport", "run_robustness_suite"]


@dataclasses.dataclass
class StepStatistics:
    """Cross-seed summary for one step."""

    name: str
    durations_s: list[float]
    pods: set[int]
    cpus: set[int]
    gpus: set[int]
    data_gb: set[float]

    @property
    def mean_minutes(self) -> float:
        return statistics.fmean(self.durations_s) / 60.0

    @property
    def stdev_minutes(self) -> float:
        if len(self.durations_s) < 2:
            return 0.0
        return statistics.stdev(self.durations_s) / 60.0

    @property
    def cv(self) -> float:
        """Coefficient of variation of the duration (spread / mean)."""
        mean = statistics.fmean(self.durations_s)
        if mean == 0 or len(self.durations_s) < 2:
            return 0.0
        return statistics.stdev(self.durations_s) / mean

    @property
    def structurally_stable(self) -> bool:
        """True when every structural column is seed-invariant."""
        return (
            len(self.pods) == 1
            and len(self.cpus) == 1
            and len(self.gpus) == 1
            and len(self.data_gb) == 1
        )


@dataclasses.dataclass
class RobustnessReport:
    """All seeds' outcomes + the per-step statistics."""

    seeds: list[int]
    reports: list[WorkflowReport]
    steps: dict[str, StepStatistics]

    @property
    def all_succeeded(self) -> bool:
        return all(r.succeeded for r in self.reports)

    def render(self) -> str:
        rows = []
        for name, stats in self.steps.items():
            rows.append(
                (
                    name,
                    f"{stats.mean_minutes:.1f} ± {stats.stdev_minutes:.1f}",
                    f"{stats.cv * 100:.1f}%",
                    "yes" if stats.structurally_stable else "NO",
                )
            )
        return text_table(
            ["step", "duration (min, mean ± sd)", "CV", "structure stable"],
            rows,
            title=f"Robustness across seeds {self.seeds}:",
        )


def run_robustness_suite(
    workflow_factory: _t.Callable[[object], object],
    seeds: _t.Sequence[int] = (41, 42, 43),
    scale: float = 0.002,
    testbed_kwargs: dict | None = None,
) -> RobustnessReport:
    """Run ``workflow_factory(testbed)`` once per seed on fresh testbeds.

    Parameters
    ----------
    workflow_factory:
        Builds the workflow for a given testbed (e.g.
        ``lambda tb: build_connect_workflow(tb, real_ml=False)``).
    seeds:
        At least two seeds, all distinct.
    scale / testbed_kwargs:
        Forwarded to :func:`build_nautilus_testbed`.
    """
    if len(seeds) < 2 or len(set(seeds)) != len(seeds):
        raise ValidationError("need >= 2 distinct seeds")
    reports: list[WorkflowReport] = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for seed in seeds:
            testbed = build_nautilus_testbed(
                seed=seed, scale=scale, **(testbed_kwargs or {})
            )
            workflow = workflow_factory(testbed)
            reports.append(WorkflowDriver(testbed).run(workflow))

    step_names = [s.name for s in reports[0].steps]
    steps: dict[str, StepStatistics] = {}
    for name in step_names:
        step_reports = [r.step(name) for r in reports]
        steps[name] = StepStatistics(
            name=name,
            durations_s=[s.duration_s for s in step_reports],
            pods={s.pods for s in step_reports},
            cpus={int(round(s.cpus)) for s in step_reports},
            gpus={s.gpus for s in step_reports},
            data_gb={round(s.data_processed_bytes / 1e9, 2)
                     for s in step_reports},
        )
    return RobustnessReport(seeds=list(seeds), reports=reports, steps=steps)
