"""The paper's planned workflow extensions (§III-E), implemented.

1. **Distributed data pre-processing** (§III-E.1): the serial
   NetCDF→protobuf conversion becomes a queue of conversion jobs fanned
   out to worker pods, "able to scale up to any needed number of jobs
   very easily by just changing the scaling configuration of the Job
   structure" — each output protobuf lands on CephFS for the training
   step to combine.

2. **Distributed training** (§III-E.2): a ReplicaSet of TensorFlow-style
   training clients plus a Service for stable hostnames; data-parallel
   SGD with gradient averaging (implemented for real in NumPy) and a
   ring-allreduce communication model for paper-scale timing.

3. **Hyperparameters and validation datasets** (§III-E.3): "a Redis queue
   is being developed to store model training/testing validation split
   methodologies and parameters sets to be used in multi-model
   validation" — workers pop configurations, train a real FFN on the
   train split, score on the validation split, and the sweep reports the
   best configuration.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.cluster import ContainerSpec, JobSpec, PodSpec, ReplicaSetSpec, ResourceRequirements
from repro.errors import QueueEmptyError, ValidationError
from repro.ml import FFNConfig, FFNModel, FFNTrainer
from repro.transfer import RedisQueue
from repro.workflow.step import StepContext, WorkflowStep

__all__ = [
    "DistributedPreprocessing",
    "data_parallel_train",
    "allreduce_seconds",
    "DistributedTraining",
    "HyperparameterSweep",
]


class DistributedPreprocessing(WorkflowStep):
    """§III-E.1: parallel protobuf generation via a work queue.

    ``n_workers=1`` reproduces the current serial pipeline; larger values
    are the proposed extension.  Artifacts include the serial-equivalent
    time so ablation A4 can report the speedup directly.
    """

    default_params: dict[str, object] = {
        "n_workers": 8,
        "bytes_to_convert": None,  # default: archive subset bytes
        "chunk_bytes": 4e9,
        "output_prefix": "protobuf/v1",
    }

    def __init__(self, **kwargs):
        kwargs.setdefault("name", "preprocessing")
        kwargs.setdefault("image", "chase-ci/tf-preprocess:1.0")
        kwargs.setdefault(
            "description", "Parallel NetCDF -> protobuf conversion (§III-E.1)"
        )
        super().__init__(**kwargs)

    def execute(self, ctx: StepContext):
        tb = ctx.testbed
        env = tb.env
        p = ctx.params
        n_workers = int(p["n_workers"])
        total_bytes = float(
            p["bytes_to_convert"] or tb.archive.total_subset_bytes
        )
        chunk_bytes = float(p["chunk_bytes"])
        n_chunks = max(1, int(np.ceil(total_bytes / chunk_bytes)))
        queue = RedisQueue(env, name=f"{ctx.namespace}-prep")
        queue.push_all(
            [min(chunk_bytes, total_bytes - i * chunk_bytes) for i in range(n_chunks)]
        )
        outputs: list[str] = []

        def worker_pod(index: int) -> PodSpec:
            def main(pod_ctx):
                worker = pod_ctx.pod.meta.name
                host = pod_ctx.node.spec.name
                converted = 0.0
                while True:
                    try:
                        msg = queue.try_pop(worker)
                    except QueueEmptyError:
                        break
                    nbytes = float(msg.body)
                    yield env.timeout(tb.perf.prep_seconds(nbytes))
                    name = f"{p['output_prefix']}/{worker}-{msg.id:04d}.pb"
                    # Protobufs land "in the attached CephFS directory
                    # that all nodes in the namespace can see" (§III-E.1).
                    yield tb.cephfs.write_timed(
                        name, nbytes * 0.9, client_host=host
                    )
                    outputs.append(name)
                    queue.ack(worker, msg)
                    converted += nbytes
                return converted

            return PodSpec(
                containers=[
                    ContainerSpec(
                        name="tf-preprocess",
                        image=self.image,
                        main=main,
                        resources=ResourceRequirements(cpu=2, memory="8G"),
                    )
                ]
            )

        job = tb.cluster.create_job(
            f"prep-{len(tb.cluster.jobs)}",
            JobSpec(
                template=worker_pod,
                completions=n_workers,
                parallelism=n_workers,
            ),
            namespace=ctx.namespace,
        )
        yield job.completion_event
        ctx.report.data_processed_bytes = total_bytes
        ctx.report.artifacts.update(
            {
                "protobuf_objects": sorted(outputs),
                "serial_equivalent_s": tb.perf.prep_seconds(total_bytes),
                "n_chunks": n_chunks,
            }
        )


# ---------------------------------------------------------------- training


def allreduce_seconds(
    model_bytes: float, n_workers: int, nic_Bps: float = 1.25e9
) -> float:
    """Ring-allreduce time for one gradient exchange.

    Each worker sends/receives ``2 * (K-1)/K * model_bytes`` — the
    standard ring cost; zero for a single worker.
    """
    if n_workers <= 1:
        return 0.0
    return 2.0 * (n_workers - 1) / n_workers * model_bytes / nic_Bps


def data_parallel_train(
    config: FFNConfig,
    volume: np.ndarray,
    labels: np.ndarray,
    n_workers: int,
    steps: int = 40,
    lr: float = 0.1,
    seed: int = 0,
) -> tuple[FFNModel, float]:
    """Real data-parallel SGD: each of ``n_workers`` logical workers draws
    its own mini-batch; gradients are averaged (allreduce) and applied
    once per step — numerically the same scheme TensorFlow's distributed
    training performs, in NumPy.

    Returns ``(model, final_loss)``.
    """
    if n_workers < 1:
        raise ValidationError("n_workers must be >= 1")
    model = FFNModel(config)
    # One trainer per worker: independent patch streams, shared model.
    trainers = [
        FFNTrainer(model, lr=lr, seed=seed + worker, batch_size=1)
        for worker in range(n_workers)
    ]
    image = volume.astype(np.float32)
    std = image.std()
    if std > 0:
        image = (image - image.mean()) / std
    half = tuple(f // 2 for f in config.fov)
    final_loss = 0.0
    streams = [t._patch_centers(labels, steps) for t in trainers]
    for step in range(steps):
        total_loss = 0.0
        for worker in range(n_workers):
            center = streams[worker][step]
            slices = tuple(slice(c - h, c + h + 1) for c, h in zip(center, half))
            mask = np.full(config.fov, config.init_logit, dtype=np.float32)
            mask[half] = config.seed_logit
            logits = model.forward(image[slices], mask)
            loss, grad = FFNModel.logistic_loss(
                logits, (labels[slices] > 0).astype(np.float32)
            )
            total_loss += loss
            # Gradient contribution averaged across workers (allreduce).
            model.backward(grad / n_workers)
        model.sgd_step(lr)
        final_loss = total_loss / n_workers
    return model, final_loss


class DistributedTraining(WorkflowStep):
    """§III-E.2: ReplicaSet + Service data-parallel training."""

    default_params: dict[str, object] = {
        "n_replicas": 4,
        "train_timesteps": 240,
        "sync_steps": 200,  # gradient exchanges at paper scale
        "real_ml": True,
        "real_steps": 30,
    }

    def __init__(self, **kwargs):
        kwargs.setdefault("name", "distributed-training")
        kwargs.setdefault("image", "chase-ci/tf-distributed:1.0")
        kwargs.setdefault(
            "description", "Data-parallel FFN training on a ReplicaSet (§III-E.2)"
        )
        super().__init__(**kwargs)

    def execute(self, ctx: StepContext):
        tb = ctx.testbed
        env = tb.env
        p = ctx.params
        replicas = int(p["n_replicas"])
        from repro.data.merra import PAPER_GRID

        voxels = PAPER_GRID.nlat * PAPER_GRID.nlon * int(p["train_timesteps"])
        compute_s = tb.perf.training_seconds(voxels) / replicas
        model_bytes = 4e6  # checkpoint-sized gradient exchange
        comm_s = int(p["sync_steps"]) * allreduce_seconds(model_bytes, replicas)

        # Stable hostnames: "Hostnames will be used instead of IP
        # addresses by creating a service" (§III-E.2).
        svc = tb.cluster.create_service(
            f"tf-train-{len(tb.cluster.services)}",
            selector={"app": "tf-train"},
            namespace=ctx.namespace,
        )

        done: list[str] = []

        def client_pod(index: int) -> PodSpec:
            def main(pod_ctx):
                yield env.timeout(compute_s + comm_s)
                done.append(pod_ctx.pod.meta.name)
                # Workers idle (parameter serving) until all finish.
                while len(done) < replicas:
                    yield env.timeout(10.0)
                return "synced"

            return PodSpec(
                containers=[
                    ContainerSpec(
                        name="tf-client",
                        image=self.image,
                        main=main,
                        resources=ResourceRequirements(cpu=2, memory="14.8G", gpu=1),
                    )
                ]
            )

        rs = tb.cluster.create_replicaset(
            f"tf-train-{len(tb.cluster.replicasets)}",
            ReplicaSetSpec(template=client_pod, replicas=replicas),
            namespace=ctx.namespace,
            labels={"app": "tf-train"},
        )
        # Wait until every client reports completion, then scale down
        # ("scaling it up and down depending on our needs").
        while len(done) < replicas:
            yield env.timeout(30.0)
        rs.delete()

        real: dict[str, object] = {}
        if p["real_ml"]:
            gen = tb.merra_generator()
            volume = gen.ivt_volume(0, 16)
            labels = gen.label_volume(0, 16)
            config = FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=tb.seed)
            model, loss = data_parallel_train(
                config, volume, labels, n_workers=replicas,
                steps=int(p["real_steps"]), seed=tb.seed,
            )
            real = {"model_state": model.state_dict(), "final_loss": loss}

        ctx.report.artifacts.update(
            {
                "replicas": replicas,
                "service_hostname": svc.hostname,
                "compute_seconds": compute_s,
                "comm_seconds": comm_s,
                "modelled_total_seconds": compute_s + comm_s,
                **real,
            }
        )


# ---------------------------------------------------------------- sweeps


@dataclasses.dataclass
class SweepResult:
    """One hyperparameter evaluation."""

    params: dict[str, object]
    validation_loss: float
    worker: str


class HyperparameterSweep(WorkflowStep):
    """§III-E.3: queue-driven multi-model validation.

    Parameter sets and the train/validation split methodology live on a
    Redis queue; worker pods pop a set, train a real FFN on the training
    window, evaluate on the held-out window ("it is important to separate
    training and test data"), and report.  The artifact carries every
    result plus the winner.
    """

    default_params: dict[str, object] = {
        "param_grid": (
            {"lr": 0.05, "filters": 4},
            {"lr": 0.1, "filters": 6},
            {"lr": 0.2, "filters": 6},
        ),
        "n_workers": 2,
        "train_window": (0, 12),
        "validation_window": (12, 20),
        "train_steps": 25,
    }

    def __init__(self, **kwargs):
        kwargs.setdefault("name", "hp-sweep")
        kwargs.setdefault("image", "chase-ci/ffn-sweep:1.0")
        kwargs.setdefault(
            "description", "Queue-driven hyperparameter sweep (§III-E.3)"
        )
        super().__init__(**kwargs)

    def execute(self, ctx: StepContext):
        tb = ctx.testbed
        env = tb.env
        p = ctx.params
        queue = RedisQueue(env, name=f"{ctx.namespace}-sweep")
        queue.set("split:train", tuple(p["train_window"]))
        queue.set("split:validation", tuple(p["validation_window"]))
        queue.push_all(list(p["param_grid"]))

        gen = tb.merra_generator()
        t0, t1 = p["train_window"]
        v0, v1 = p["validation_window"]
        train_vol = gen.ivt_volume(t0, t1 - t0)
        train_lab = gen.label_volume(t0, t1 - t0)
        val_vol = gen.ivt_volume(v0, v1 - v0)
        val_lab = gen.label_volume(v0, v1 - v0)
        results: list[SweepResult] = []

        def worker_pod(index: int) -> PodSpec:
            def main(pod_ctx):
                worker = pod_ctx.pod.meta.name
                while True:
                    try:
                        msg = queue.try_pop(worker)
                    except QueueEmptyError:
                        break
                    hp: dict = dict(msg.body)
                    config = FFNConfig(
                        fov=(5, 5, 5),
                        filters=int(hp.get("filters", 6)),
                        modules=1,
                        seed=tb.seed,
                    )
                    model = FFNModel(config)
                    trainer = FFNTrainer(
                        model, lr=float(hp.get("lr", 0.1)), seed=tb.seed
                    )
                    with np.errstate(all="ignore"):
                        trainer.train(
                            train_vol, train_lab, steps=int(p["train_steps"])
                        )
                        val_loss = trainer.evaluate(val_vol, val_lab,
                                                    n_patches=20)
                    if not np.isfinite(val_loss):
                        # A diverged configuration still yields a result
                        # row, ranked behind every convergent one.
                        val_loss = float("inf")
                    results.append(
                        SweepResult(params=hp, validation_loss=val_loss,
                                    worker=worker)
                    )
                    # Account GPU time for the trial at paper scale.
                    yield env.timeout(600.0)
                    queue.ack(worker, msg)
                return len(results)

            return PodSpec(
                containers=[
                    ContainerSpec(
                        name="sweep-worker",
                        image=self.image,
                        main=main,
                        resources=ResourceRequirements(cpu=1, memory="12G", gpu=1),
                    )
                ]
            )

        job = tb.cluster.create_job(
            f"sweep-{len(tb.cluster.jobs)}",
            JobSpec(
                template=worker_pod,
                completions=int(p["n_workers"]),
                parallelism=int(p["n_workers"]),
            ),
            namespace=ctx.namespace,
        )
        yield job.completion_event

        best = min(results, key=lambda r: r.validation_loss)
        ctx.report.artifacts.update(
            {
                "results": [dataclasses.asdict(r) for r in results],
                "best_params": best.params,
                "best_validation_loss": best.validation_loss,
                "trials": len(results),
            }
        )
