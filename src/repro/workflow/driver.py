"""The workflow driver: execute, measure, report.

"The workflow manager specifies the state configuration and passes it on
to Kubernetes, and Kubernetes creates the specified state in its system"
(§V): the driver never places pods itself — steps declare Jobs and the
cluster's scheduler/controllers do the rest.  What the driver *does* own
is contribution 5: per-step measurement.  While a step runs, every pod
phase transition in the step's namespace updates peak pod/CPU/GPU/memory
usage, producing the Table-I rows and the series behind Figures 3–6.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.pod import Pod, PodPhase
from repro.errors import ProcessKilled, StepFailedError, StepTimeoutError, WorkflowError
from repro.testbed import NautilusTestbed
from repro.workflow.step import StepContext, StepReport
from repro.workflow.stream import StreamChannel
from repro.workflow.workflow import Workflow

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workflow.degradation import DegradationPolicy
    from repro.workflow.persistence import WorkflowCheckpoint

__all__ = ["WorkflowDriver", "WorkflowReport"]


#: Serialization format shared by reports and checkpoints (see
#: :mod:`repro.workflow.persistence`).
REPORT_FORMAT_VERSION = 1


@dataclasses.dataclass
class WorkflowReport:
    """Outcome of one workflow execution."""

    workflow_name: str
    steps: list[StepReport]
    total_duration_s: float

    @property
    def succeeded(self) -> bool:
        return all(s.succeeded for s in self.steps)

    def to_dict(self) -> dict:
        """A JSON-safe projection (the stable persistence shape)."""
        return {
            "format_version": REPORT_FORMAT_VERSION,
            "workflow_name": self.workflow_name,
            "total_duration_s": self.total_duration_s,
            "succeeded": self.succeeded,
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkflowReport":
        """Rebuild a report from :meth:`to_dict` output."""
        version = data.get("format_version")
        if version != REPORT_FORMAT_VERSION:
            raise ValueError(f"unsupported report format version: {version!r}")
        return cls(
            workflow_name=data["workflow_name"],
            steps=[StepReport.from_dict(raw) for raw in data["steps"]],
            total_duration_s=data["total_duration_s"],
        )

    def step(self, name: str) -> StepReport:
        for report in self.steps:
            if report.name == name:
                return report
        raise KeyError(f"no step {name!r} in report")

    def table(self) -> dict[str, dict[str, object]]:
        """Table-I-shaped summary: one column per step."""
        out: dict[str, dict[str, object]] = {}
        for report in self.steps:
            out[report.name] = {
                "pods": report.pods,
                "cpus": round(report.cpus, 1),
                "gpus": report.gpus,
                "data_processed_gb": report.data_processed_bytes / 1e9,
                "memory_gb": report.memory_bytes / 1e9,
                "total_time": report.total_time_cell(),
                "total_minutes": (
                    None if report.interactive else round(report.duration_minutes, 1)
                ),
            }
        return out


class _NamespaceMeter:
    """Tracks peak concurrent pods/CPU/GPU/memory in one namespace."""

    def __init__(self, namespace: str):
        self.namespace = namespace
        self.running: dict[str, Pod] = {}
        self.peak_pods = 0
        self.peak_cpu = 0.0
        self.peak_gpu = 0
        self.peak_memory = 0.0
        self.pods_seen: set[str] = set()

    def on_phase(self, pod: Pod, _old: PodPhase, new: PodPhase) -> None:
        if pod.meta.namespace != self.namespace:
            return
        if new is PodPhase.RUNNING:
            self.running[pod.meta.uid] = pod
            self.pods_seen.add(pod.meta.uid)
        elif new.is_terminal():
            self.running.pop(pod.meta.uid, None)
        self._update_peaks()

    def _update_peaks(self) -> None:
        pods = len(self.running)
        cpu = gpu = mem = 0.0
        for pod in self.running.values():
            request = pod.spec.total_request()
            cpu += request.cpu
            gpu += request.gpu
            mem += request.memory
        self.peak_pods = max(self.peak_pods, pods)
        self.peak_cpu = max(self.peak_cpu, cpu)
        self.peak_gpu = max(self.peak_gpu, int(gpu))
        self.peak_memory = max(self.peak_memory, mem)


class WorkflowDriver:
    """Runs workflows on a testbed with per-step measurement."""

    def __init__(self, testbed: NautilusTestbed):
        self.testbed = testbed

    def run(
        self,
        workflow: Workflow,
        fail_fast: bool = True,
        checkpoint: "WorkflowCheckpoint | None" = None,
        resume_from: "WorkflowCheckpoint | None" = None,
        deadline_s: float | None = None,
        degradation: "DegradationPolicy | None" = None,
        overlap: bool = False,
    ) -> WorkflowReport:
        """Execute the workflow and return the report.

        Steps whose dependencies are all satisfied run **concurrently**
        (independent DAG branches overlap; the CONNECT chain still runs
        sequentially because each step depends on its predecessor).
        Each step runs in its own namespace ``<workflow>-<step>``; the
        report's resource columns are the measured peaks, not the
        declared requests.

        Parameters
        ----------
        checkpoint:
            When given, every successful step's report and artifacts are
            recorded into it as the step completes — so a run killed by
            ``deadline_s`` (or by the caller) leaves behind the exact
            completed-step prefix.
        resume_from:
            A checkpoint from an earlier (possibly killed) run of the
            *same* workflow: its completed steps are restored into the
            report (flagged ``resumed=True``) without re-executing, and
            their artifacts are handed to downstream steps as usual.
        deadline_s:
            Wall-clock (simulated) budget for the whole run.  When it
            expires, every running step is interrupted and the partial
            report is returned; combined with ``checkpoint`` this models
            "the job got killed — resume it".
        degradation:
            A :class:`~repro.workflow.degradation.DegradationPolicy`:
            while it reports saturation, steps marked ``optional=True``
            are skipped (``skipped=True`` in their reports) and steps
            that consult :meth:`~repro.workflow.step.StepContext.
            effective_fanout` get a coarser shard fan-out.
        overlap:
            Pipelined launch: a step may start while a dependency is
            still **running**, provided that dependency is listed in the
            step's ``stream_inputs`` and declares ``streams_output``.
            The consumer blocks on the producer's
            :class:`~repro.workflow.stream.StreamChannel` (items /
            milestones) instead of its completion barrier, overlapping
            the producer's transfer tail with downstream compute.
            ``False`` (the default) keeps the strict per-step barrier —
            byte-identical behavior to previous releases.
        """
        env = self.testbed.env
        start = env.now
        tracer = getattr(self.testbed, "tracer", None)
        root_span = (
            tracer.start_root(
                workflow.name, "workflow", attributes={"workflow": workflow.name}
            )
            if tracer is not None
            else None
        )
        reports: list[StepReport] = []
        reports_by_name: dict[str, StepReport] = {}
        artifacts: dict[str, dict] = {}
        # Live stream channels by producer step name (overlap mode only).
        streams: dict[str, StreamChannel] = {}

        resumed_done: set[str] = set()
        if resume_from is not None:
            if resume_from.workflow_name != workflow.name:
                raise WorkflowError(
                    f"checkpoint is for workflow {resume_from.workflow_name!r}, "
                    f"not {workflow.name!r}"
                )
            for name in workflow.order:
                if not resume_from.has(name):
                    continue
                report = resume_from.report_copy(name)
                report.resumed = True
                reports.append(report)
                reports_by_name[name] = report
                artifacts[name] = dict(resume_from.artifacts.get(name, {}))
                resumed_done.add(name)
                if checkpoint is not None and not checkpoint.has(name):
                    checkpoint.record(report, artifacts[name])

        def _run_step(step):
            """Run one step with retries; returns (name, error|None)."""
            report = reports_by_name[step.name]
            namespace = f"{workflow.name}-{step.name}".lower()
            if namespace not in self.testbed.cluster.namespaces:
                self.testbed.cluster.create_namespace(namespace)
            meter = _NamespaceMeter(namespace)
            self.testbed.cluster.phase_hooks.append(meter.on_phase)
            step_span = None
            if tracer is not None:
                step_span = tracer.start(
                    step.name,
                    "step",
                    parent=root_span,
                    attributes={
                        "step": step.name,
                        "depends_on": list(step.depends_on),
                        "namespace": namespace,
                    },
                )
                # Components that only know the namespace (the cluster's
                # pod lifecycle) parent their spans under this step.
                tracer.bind_scope(namespace, step_span)
            ctx = StepContext(
                testbed=self.testbed,
                params=dict(step.params),
                artifacts=artifacts,
                report=report,
                namespace=namespace,
                span=step_span,
                degradation=degradation,
                streams=streams if overlap else None,
            )
            produces_stream = overlap and getattr(step, "streams_output", False)
            report.start_time = env.now
            error: str | None = None
            try:
                for attempt in range(step.max_retries + 1):
                    if produces_stream and attempt > 0:
                        # The retry attempt streams into a fresh channel;
                        # consumers blocked on the old one follow the
                        # supersession link transparently.
                        stale = streams.get(step.name)
                        streams[step.name] = StreamChannel(env, step.name)
                        if stale is not None:
                            stale.supersede(streams[step.name])
                    attempt_proc = env.process(
                        step.execute(ctx),
                        name=f"step:{step.name}#{attempt}",
                    )
                    try:
                        if step.timeout_s is None:
                            yield attempt_proc
                        else:
                            # Race the attempt against its budget; a hung
                            # attempt (e.g. workers stuck behind a network
                            # partition) is killed and counted as a failure.
                            yield env.any_of(
                                [attempt_proc, env.timeout(step.timeout_s)]
                            )
                            if attempt_proc.is_alive:
                                attempt_proc.interrupt(
                                    f"step {step.name!r} attempt {attempt} "
                                    f"exceeded {step.timeout_s}s"
                                )
                                raise StepTimeoutError(step.name, step.timeout_s)
                        report.succeeded = True
                        report.retries = attempt
                        report.error = ""  # clear earlier attempts' errors
                        break
                    except ProcessKilled:
                        # The whole workflow is being cancelled (deadline):
                        # take the live attempt down with us.
                        if attempt_proc.is_alive:
                            attempt_proc.interrupt("workflow cancelled")
                        report.succeeded = False
                        report.error = "cancelled"
                        if produces_stream:
                            chan = streams.get(step.name)
                            if chan is not None:
                                chan.close(error="cancelled")
                        raise
                    except Exception as exc:  # noqa: BLE001
                        report.succeeded = False
                        report.error = repr(exc)
                        report.retries = attempt
                        if attempt >= step.max_retries:
                            error = repr(exc)
                            break
                        self.testbed.cluster.record_event(
                            "Workflow",
                            step.name,
                            "Retrying",
                            f"attempt {attempt + 1} failed: {exc!r}",
                        )
                        yield env.timeout(step.retry_delay_s)
            finally:
                report.end_time = env.now
                self._absorb_meter(report, meter)
                if meter.on_phase in self.testbed.cluster.phase_hooks:
                    self.testbed.cluster.phase_hooks.remove(meter.on_phase)
                if tracer is not None and step_span is not None:
                    tracer.unbind_scope(namespace)
                    tracer.finish(
                        step_span,
                        status="ok" if report.succeeded else "error",
                        attributes={"retries": report.retries},
                    )
            artifacts[step.name] = dict(report.artifacts)
            if error is None and checkpoint is not None:
                checkpoint.record(report, artifacts[step.name])
            if produces_stream:
                # Close AFTER artifacts are published: consumers woken by
                # a clean close fall back to the completed step's
                # artifacts and must find them.
                chan = streams.get(step.name)
                if chan is not None:
                    chan.close(error=error)
            return (step.name, error)

        def _run_all():
            pending = list(workflow.order)
            running: dict[str, object] = {}
            done: set[str] = set(resumed_done)
            failed: set[str] = set()

            def _dep_satisfied(step, dep: str) -> bool:
                """Barrier rule, or (overlap mode) producer-is-streaming."""
                if dep in done:
                    return True
                if not overlap or dep not in running:
                    return False
                producer = workflow.steps[dep]
                return (
                    getattr(producer, "streams_output", False)
                    and dep in getattr(step, "stream_inputs", ())
                )

            try:
                while pending or running:
                    # Launch every step whose dependencies have succeeded
                    # (or, in overlap mode, are streaming).
                    for name in list(pending):
                        if name in done:  # restored from resume_from
                            pending.remove(name)
                            continue
                        step = workflow.steps[name]
                        if any(dep in failed for dep in step.depends_on):
                            pending.remove(name)  # upstream failed: skip
                            continue
                        if all(
                            _dep_satisfied(step, dep)
                            for dep in step.depends_on
                        ):
                            pending.remove(name)
                            if degradation is not None and degradation.should_skip(
                                step
                            ):
                                # Graceful degradation: drop the optional
                                # step; it counts as done so downstream
                                # steps still run.
                                report = StepReport(
                                    name=name, skipped=True, succeeded=True
                                )
                                report.start_time = report.end_time = env.now
                                reports.append(report)
                                reports_by_name[name] = report
                                done.add(name)
                                degradation.note_skip(name)
                                self.testbed.cluster.record_event(
                                    "Workflow",
                                    name,
                                    "StepSkipped",
                                    "optional step dropped under saturation",
                                )
                                continue
                            report = StepReport(name=name)
                            reports.append(report)
                            reports_by_name[name] = report
                            if overlap and getattr(step, "streams_output", False):
                                # Channel exists from launch, so consumers
                                # started in this same pass can resolve it.
                                streams[name] = StreamChannel(env, name)
                            running[name] = env.process(
                                _run_step(step), name=f"step-runner:{name}"
                            )
                    if not running:
                        break  # remaining steps are all blocked by failures
                    finished = yield env.any_of(list(running.values()))
                    for proc_event, value in finished.items():
                        name, error = value
                        running.pop(name, None)
                        if error is None:
                            done.add(name)
                        else:
                            failed.add(name)
                            if fail_fast:
                                # Let already-running siblings finish, then stop.
                                if running:
                                    yield env.all_of(list(running.values()))
                                raise StepFailedError(name, error)
            except ProcessKilled:
                # Deadline/cancellation: propagate the kill to every
                # running step runner so their reports close out.
                for runner in running.values():
                    if runner.is_alive:
                        runner.interrupt("workflow cancelled")
                raise

        proc = env.process(_run_all(), name=f"workflow:{workflow.name}")
        try:
            if deadline_s is None:
                env.run(until=proc)
            else:
                env.run(until=env.any_of([proc, env.timeout(deadline_s)]))
                if proc.is_alive:
                    proc.interrupt(f"workflow deadline after {deadline_s}s")
                    env.run(until=proc)
        except StepFailedError:
            pass  # the failure is recorded in the step report
        except ProcessKilled:
            # Expected on a deadline kill: settle same-time interrupt
            # cascades so every step report is closed before we return.
            env.run(until=env.now)
        report = WorkflowReport(
            workflow_name=workflow.name,
            steps=reports,
            total_duration_s=env.now - start,
        )
        if tracer is not None and root_span is not None:
            tracer.finish_root(
                root_span, status="ok" if report.succeeded else "error"
            )
        return report

    @staticmethod
    def _absorb_meter(report: StepReport, meter: _NamespaceMeter) -> None:
        report.pods = meter.peak_pods
        report.cpus = meter.peak_cpu
        report.gpus = meter.peak_gpu
        report.memory_bytes = meter.peak_memory


def run_single_step(
    testbed: NautilusTestbed, step, workflow_name: str = "adhoc"
) -> StepReport:
    """PPoDS convenience: run one step in isolation ("each step can
    easily be tested independently of one another", §VI)."""
    wf = Workflow(workflow_name, [step])
    report = WorkflowDriver(testbed).run(wf)
    return report.steps[0]
