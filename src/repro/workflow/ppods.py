"""PPoDS: the Process for the Practice of Data Science (paper §VI).

"We have created the PPoDS methodology to empower computational data
science teams with effective collaboration tools during the exploratory
workflow development phase" — concretely:

- an **execution plan**: the workflow's steps "connected to each other in
  a visual and meaningful way", each with an owner and a status, so a
  team sees who is developing what;
- **per-step tests**: "creating tests for each piece of the workflow
  steps can allow for much quicker development ... If you refactor the
  code or add in new steps you can run these tests to make sure that you
  haven't broken anything else";
- **measurement capture**: every run of a step appends to its
  measurement history, enabling the measure-learn-inform loop of §VIII.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.errors import ValidationError
from repro.workflow.step import StepReport
from repro.workflow.workflow import Workflow

__all__ = ["StepTest", "StepStatus", "PPoDSSession"]


@dataclasses.dataclass
class StepTest:
    """A named check on a step's report (inputs-in, expected-outputs-out)."""

    name: str
    step: str
    check: _t.Callable[[StepReport], bool]
    description: str = ""


@dataclasses.dataclass
class StepStatus:
    """Plan-view row for one step."""

    step: str
    owner: str = ""
    status: str = "planned"  # planned | developing | tested | integrated
    notes: str = ""


_VALID_STATUSES = ("planned", "developing", "tested", "integrated")


class PPoDSSession:
    """A collaborative development session around one workflow."""

    def __init__(self, workflow: Workflow):
        self.workflow = workflow
        self.plan: dict[str, StepStatus] = {
            name: StepStatus(step=name) for name in workflow.order
        }
        self.tests: list[StepTest] = []
        #: step name -> list of reports from every measured run
        self.measurements: dict[str, list[StepReport]] = {
            name: [] for name in workflow.order
        }

    # -- plan ------------------------------------------------------------------

    def assign(self, step: str, owner: str) -> None:
        """Give a step an owner (development "can happen in parallel",
        §VI)."""
        self._status(step).owner = owner
        if self._status(step).status == "planned":
            self._status(step).status = "developing"

    def set_status(self, step: str, status: str, notes: str = "") -> None:
        if status not in _VALID_STATUSES:
            raise ValidationError(
                f"status must be one of {_VALID_STATUSES}, got {status!r}"
            )
        row = self._status(step)
        row.status = status
        if notes:
            row.notes = notes

    def _status(self, step: str) -> StepStatus:
        if step not in self.plan:
            raise ValidationError(f"unknown step {step!r}")
        return self.plan[step]

    def plan_view(self) -> str:
        """The shared, centralized step list of §VI."""
        lines = [f"PPoDS plan — workflow {self.workflow.name!r}"]
        for i, name in enumerate(self.workflow.order, 1):
            row = self.plan[name]
            owner = row.owner or "(unassigned)"
            lines.append(
                f"  {i}. {name:<16} {row.status:<12} owner={owner} {row.notes}"
            )
        return "\n".join(lines)

    # -- tests ------------------------------------------------------------------

    def add_test(
        self,
        name: str,
        step: str,
        check: _t.Callable[[StepReport], bool],
        description: str = "",
    ) -> None:
        """Register a step test ("test for specific outputs when specific
        inputs are put into place", §VI)."""
        if step not in self.plan:
            raise ValidationError(f"unknown step {step!r}")
        self.tests.append(StepTest(name, step, check, description))

    def run_tests(self, step: str | None = None) -> dict[str, bool]:
        """Run registered tests against each step's latest measurement.

        Tests for steps with no recorded run fail (nothing to verify).
        """
        results: dict[str, bool] = {}
        for test in self.tests:
            if step is not None and test.step != step:
                continue
            history = self.measurements.get(test.step, [])
            if not history:
                results[test.name] = False
                continue
            try:
                results[test.name] = bool(test.check(history[-1]))
            except Exception:
                results[test.name] = False
        return results

    # -- measurement -----------------------------------------------------------------

    def record(self, report: StepReport) -> None:
        """Append a step run to the measurement history."""
        if report.name not in self.measurements:
            raise ValidationError(f"unknown step {report.name!r}")
        self.measurements[report.name].append(report)

    def record_workflow(self, reports: _t.Iterable[StepReport]) -> None:
        for report in reports:
            self.record(report)

    def trend(self, step: str, field: str = "duration_s") -> list[float]:
        """A measured quantity across runs — the 'constantly measuring,
        learning, and informing' feedback signal (§VIII)."""
        return [
            float(getattr(r, field)) for r in self.measurements.get(step, [])
        ]

    def improvement(self, step: str) -> float | None:
        """Fractional duration improvement from first to latest run."""
        durations = self.trend(step)
        if len(durations) < 2 or durations[0] == 0:
            return None
        return 1.0 - durations[-1] / durations[0]
