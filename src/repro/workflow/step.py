"""Workflow steps: containerized units of work with measurement.

"The accelerated workflow was developed to use multiple Docker images for
job specific tasks" (§III) and "the execution of the workflow needs to
support the separation of steps so that each step can easily be tested
independently of one another" (§VI) — a step here is exactly that: a
named, independently runnable unit with its own image, namespace, and
declared resources, measured every time it runs.
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing as _t

import numpy as np

from repro.errors import ValidationError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.testbed import NautilusTestbed
    from repro.tracing.span import Span

__all__ = ["StepReport", "StepContext", "WorkflowStep"]


def sanitize_artifact_value(value: object) -> object:
    """Make one artifact value JSON-safe (summarizing when needed).

    Numbers and strings round-trip exactly; arrays, dataclasses, and
    other rich objects degrade to summaries rather than being dropped —
    a reloaded report still tells you what a run produced.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return {
            "__array_summary__": True,
            "shape": list(value.shape),
            "dtype": str(value.dtype),
            "nonzero": int(np.count_nonzero(value)),
        }
    if isinstance(value, (list, tuple)):
        return [sanitize_artifact_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): sanitize_artifact_value(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **sanitize_artifact_value(dataclasses.asdict(value)),  # type: ignore[dict-item]
        }
    return {"__repr__": repr(value), "__type__": type(value).__name__}


@dataclasses.dataclass
class StepReport:
    """Everything measured about one step execution (a Table-I row)."""

    name: str
    start_time: float = 0.0
    end_time: float = 0.0
    pods: int = 0
    cpus: float = 0.0
    gpus: int = 0
    memory_bytes: float = 0.0
    data_processed_bytes: float = 0.0
    interactive: bool = False  # Table I prints "NA" for interactive steps
    succeeded: bool = False
    error: str = ""
    retries: int = 0  # step-level re-executions that were needed
    resumed: bool = False  # restored from a checkpoint, not re-executed
    skipped: bool = False  # optional step dropped under saturation
    artifacts: dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_time - self.start_time

    @property
    def duration_minutes(self) -> float:
        return self.duration_s / 60.0

    def total_time_cell(self) -> str:
        """The Table-I "Total Time" cell (``NA`` for interactive steps)."""
        if self.interactive:
            return "NA"
        return f"{self.duration_minutes:.0f}m"

    def to_dict(self) -> dict:
        """A JSON-safe projection (the stable persistence shape)."""
        return {
            "name": self.name,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "pods": self.pods,
            "cpus": self.cpus,
            "gpus": self.gpus,
            "memory_bytes": self.memory_bytes,
            "data_processed_bytes": self.data_processed_bytes,
            "interactive": self.interactive,
            "succeeded": self.succeeded,
            "error": self.error,
            "retries": self.retries,
            "resumed": self.resumed,
            "skipped": self.skipped,
            "artifacts": sanitize_artifact_value(self.artifacts),
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "StepReport":
        """Rebuild a report from :meth:`to_dict` output."""
        step = cls(name=raw["name"])
        step.start_time = raw["start_time"]
        step.end_time = raw["end_time"]
        step.pods = raw["pods"]
        step.cpus = raw["cpus"]
        step.gpus = raw["gpus"]
        step.memory_bytes = raw["memory_bytes"]
        step.data_processed_bytes = raw["data_processed_bytes"]
        step.interactive = raw["interactive"]
        step.succeeded = raw["succeeded"]
        step.error = raw["error"]
        step.retries = raw.get("retries", 0)
        step.resumed = raw.get("resumed", False)
        step.skipped = raw.get("skipped", False)
        step.artifacts = dict(raw["artifacts"])
        return step


class StepContext:
    """What a running step can touch.

    Attributes
    ----------
    testbed:
        The full :class:`~repro.testbed.NautilusTestbed`.
    params:
        This step's parameters (merged defaults + overrides).
    artifacts:
        Cross-step artifact dictionary: step N's outputs (object names,
        trained models, label volumes) addressed by earlier step name.
    report:
        The live :class:`StepReport` this execution fills in.
    namespace:
        The step's dedicated namespace (virtual cluster, §IV).
    """

    def __init__(
        self,
        testbed: "NautilusTestbed",
        params: dict[str, object],
        artifacts: dict[str, dict],
        report: StepReport,
        namespace: str,
        span: "Span | None" = None,
        degradation: object | None = None,
        streams: dict | None = None,
    ):
        self.testbed = testbed
        self.params = params
        self.artifacts = artifacts
        self.report = report
        self.namespace = namespace
        #: this step's trace span (None when the run is untraced)
        self.span = span
        #: the run's :class:`~repro.workflow.degradation.
        #: DegradationPolicy`, or None when degradation is off
        self.degradation = degradation
        #: live stream channels by producer step name — populated only
        #: when the driver runs with ``overlap=True``
        self._streams = streams

    def stream_out(self):
        """This step's own :class:`~repro.workflow.stream.StreamChannel`
        (producer side), or None when the driver is in barrier mode or
        the step does not declare ``streams_output``."""
        if self._streams is None:
            return None
        return self._streams.get(self.report.name)

    def stream_in(self, producer: str):
        """The named producer's live channel (consumer side), or None in
        barrier mode / when the producer was skipped.  Wait on it with
        ``yield from chan.wait_milestone(...)`` or ``chan.next_item``."""
        if self._streams is None:
            return None
        return self._streams.get(producer)

    def effective_fanout(self, requested: int) -> int:
        """Shard fan-out after graceful degradation (identity when off)."""
        if self.degradation is None:
            return int(requested)
        return self.degradation.effective_fanout(  # type: ignore[attr-defined]
            int(requested), self.report.name
        )

    @property
    def env(self):
        return self.testbed.env

    def trace(self, name: str, category: str = "compute", **attributes):
        """A child span of this step, or a no-op when untraced.

        Usable as a context manager around any phase of the step body::

            with ctx.trace("training", "compute", epochs=n):
                yield env.timeout(training_seconds)
        """
        tracer = getattr(self.testbed, "tracer", None)
        if tracer is None or self.span is None:
            return contextlib.nullcontext()
        return tracer.span(name, category, parent=self.span, attributes=attributes)

    def gauge(self, name: str, value: float, labels: dict | None = None) -> None:
        """Record a step-scoped gauge (labelled with the step name)."""
        merged = {"step": self.report.name, **(labels or {})}
        self.testbed.registry.set_gauge(name, value, merged)

    def counter(self, name: str, amount: float, labels: dict | None = None) -> None:
        merged = {"step": self.report.name, **(labels or {})}
        self.testbed.registry.inc_counter(name, amount, merged)


class WorkflowStep:
    """Base class for workflow steps.

    Subclasses override :meth:`execute` (a generator run as a simulation
    process) and may override :attr:`default_params`.

    Parameters
    ----------
    name:
        Step name (unique within a workflow).
    image:
        Container image the step's job pods run.
    description:
        One line for reports and the PPoDS plan view.
    params:
        Overrides merged over :attr:`default_params`.
    """

    #: Subclass hook: parameter defaults.
    default_params: dict[str, object] = {}

    #: Subclass hook: the step moves data over the WAN (downloads,
    #: transfers).  The ``dag`` lint pack (DAG005) insists such steps
    #: carry a ``timeout_s`` and/or ``max_retries`` budget.
    network_bound: bool = False

    #: Subclass hook: the step's artifacts survive a round-trip through
    #: :class:`~repro.workflow.persistence.WorkflowCheckpoint`, so a
    #: resumed run can skip past it (DAG006 flags gaps).
    checkpointable: bool = True

    #: Subclass hook: GPUs the step occupies when ``params`` carry no
    #: explicit ``n_gpus``/``gpus`` count (see :meth:`gpu_demand`).
    base_gpus: int = 0

    #: Subclass hook: the step produces a
    #: :class:`~repro.workflow.stream.StreamChannel` of items/milestones
    #: while running, so downstream ``stream_inputs`` consumers may
    #: start before it finishes (driver ``overlap=True``).
    streams_output: bool = False

    #: Subclass hook: dependency names this step can consume *as a
    #: stream* — in overlap mode these dependencies only need to be
    #: launched, not finished, for this step to start.  Every name must
    #: also appear in ``depends_on``.
    stream_inputs: tuple[str, ...] = ()

    def __init__(
        self,
        name: str,
        image: str = "chase-ci/generic:latest",
        description: str = "",
        params: dict[str, object] | None = None,
        max_retries: int = 0,
        retry_delay_s: float = 30.0,
        timeout_s: float | None = None,
        optional: bool = False,
    ):
        if not name:
            raise ValidationError("step needs a non-empty name")
        if max_retries < 0 or retry_delay_s < 0:
            raise ValidationError("retry settings must be non-negative")
        if timeout_s is not None and timeout_s <= 0:
            raise ValidationError("timeout_s must be positive")
        self.name = name
        self.image = image
        self.description = description
        self.params = {**self.default_params, **(params or {})}
        #: step-level retries: a failed execution is re-run from scratch
        #: up to this many extra times (on top of the Job-level backoff
        #: its pods already get).
        self.max_retries = max_retries
        self.retry_delay_s = retry_delay_s
        #: per-attempt wall-clock budget: an attempt still running after
        #: ``timeout_s`` sim-seconds is killed and counts as a failure
        #: (so it retries under ``max_retries`` like any crash).
        self.timeout_s = timeout_s
        #: optional steps may be dropped (skipped, not failed) when a
        #: :class:`~repro.workflow.degradation.DegradationPolicy` reports
        #: the cluster saturated — graceful degradation over queueing.
        self.optional = optional
        #: names of steps whose artifacts this step consumes
        self.depends_on: list[str] = []

    def gpu_demand(self) -> int:
        """GPUs this step occupies while running (for DAG007 lint)."""
        return int(self.params.get("n_gpus", self.params.get("gpus", self.base_gpus)))  # type: ignore[arg-type]

    def after(self, *step_names: str) -> "WorkflowStep":
        """Declare dependencies; returns self for chaining."""
        self.depends_on.extend(step_names)
        return self

    def execute(self, ctx: StepContext):
        """Generator body run on the simulation kernel.

        Must ``yield`` simulation events; fills ``ctx.report`` fields
        the driver doesn't infer (data processed, artifacts).
        """
        raise NotImplementedError
        yield  # pragma: no cover

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
