"""Graceful degradation: trade result richness for survival under load.

When the cluster is saturated, finishing the essential work late beats
finishing all the work never.  A :class:`DegradationPolicy` turns a
saturation signal (typically the admission gateway's
:meth:`~repro.gateway.AdmissionGateway.saturated`, or a cluster
pending-queue threshold) into two concrete behaviours:

- **Drop optional steps** — workflow steps constructed with
  ``optional=True`` (visualization, report rendering, non-essential
  post-processing) are *skipped* instead of executed; their reports
  carry ``skipped=True`` and count as succeeded so downstream steps
  still run.
- **Coarser shard fan-out** — steps that fan work out over N shards ask
  :meth:`effective_fanout` first; under saturation the fan-out shrinks
  by ``fanout_factor`` (never below ``min_fanout``), so each workflow
  holds fewer concurrent pods while the queue drains.

The policy records everything it dropped or coarsened, so a loadtest
report can state exactly what degradation cost.
"""

from __future__ import annotations

import math
import typing as _t

__all__ = ["DegradationPolicy"]


class DegradationPolicy:
    """Decide what to shed when the control plane reports saturation.

    Parameters
    ----------
    saturation:
        Zero-arg callable returning truthy while the cluster is
        saturated.  Evaluated at each decision point, so the policy
        reacts as load rises and falls.
    drop_optional:
        Skip steps marked ``optional=True`` while saturated.
    fanout_factor:
        Multiplier applied to requested shard fan-outs while saturated
        (0.5 = half as many shards).
    min_fanout:
        Floor for a coarsened fan-out.
    """

    def __init__(
        self,
        saturation: _t.Callable[[], bool],
        drop_optional: bool = True,
        fanout_factor: float = 0.5,
        min_fanout: int = 1,
    ):
        if not 0.0 < fanout_factor <= 1.0:
            raise ValueError("fanout_factor must be in (0, 1]")
        if min_fanout < 1:
            raise ValueError("min_fanout must be >= 1")
        self._saturation = saturation
        self.drop_optional = drop_optional
        self.fanout_factor = float(fanout_factor)
        self.min_fanout = int(min_fanout)
        #: names of optional steps skipped under saturation
        self.dropped_steps: list[str] = []
        #: (step name, requested, granted) fan-outs that were coarsened
        self.coarsened_fanouts: list[tuple[str, int, int]] = []

    def saturated(self) -> bool:
        return bool(self._saturation())

    def should_skip(self, step: object) -> bool:
        """Skip this step right now?  (Only ever true for optional steps.)"""
        return (
            self.drop_optional
            and bool(getattr(step, "optional", False))
            and self.saturated()
        )

    def note_skip(self, step_name: str) -> None:
        self.dropped_steps.append(step_name)

    def effective_fanout(self, requested: int, step_name: str = "") -> int:
        """The shard fan-out to actually use for ``requested`` shards."""
        if requested <= self.min_fanout or not self.saturated():
            return requested
        granted = max(self.min_fanout, math.ceil(requested * self.fanout_factor))
        if granted < requested:
            self.coarsened_fanouts.append((step_name, requested, granted))
        return granted

    def summary(self) -> dict:
        """JSON-safe account of what degradation cost this run."""
        return {
            "dropped_steps": list(self.dropped_steps),
            "coarsened_fanouts": [
                {"step": s, "requested": r, "granted": g}
                for s, r, g in self.coarsened_fanouts
            ],
        }
