"""Spans and the tracer that records them.

A :class:`Span` is one timed, attributed interval — a workflow run, a
step, a pod lifecycle phase, a transfer, an ML kernel.  Spans form a
tree via ``parent_id``; the :class:`Tracer` hands out ids, stamps times
from an injected clock, and keeps the full span list in creation order.

Clock discipline
----------------
The tracer never reads wall time.  On a testbed it is bound to the
simulation clock (:meth:`Tracer.for_env`); for pure-compute code with no
environment (the ML engines under test) :meth:`Tracer.counting` provides
a deterministic event-counter clock.  Either way, identical inputs
produce identical traces.

Parenting
---------
Simulated processes interleave, so an implicit thread-local "current
span" would attach children to whichever process last touched the
tracer.  Parenting is therefore explicit: pass ``parent=``, or register
a *scope* (``bind_scope(namespace, step_span)``) that components which
only know a namespace — the cluster's pod lifecycle hooks — can resolve
with :meth:`scope_parent`.  Spans with no parent attach to the bound
root span, if any.
"""

from __future__ import annotations

import contextlib
import dataclasses
import typing as _t

__all__ = ["Span", "Tracer", "validate_spans"]

#: Span categories the layer-attribution sweep understands, in precedence
#: order (when intervals overlap, time is charged to the leftmost).
LAYER_CATEGORIES = ("compute", "transfer", "scheduling", "queueing")


@dataclasses.dataclass
class Span:
    """One timed interval in the trace tree."""

    name: str
    category: str
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict[str, object] = dataclasses.field(default_factory=dict)
    status: str = "ok"  # "ok" | "error" | "unfinished"

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in (virtual) seconds; 0.0 while unfinished."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        """A JSON-safe projection (the span schema of API.md)."""
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": _safe_attrs(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover
        end = f"{self.end:.3f}" if self.end is not None else "…"
        return (
            f"<Span #{self.span_id} {self.category}:{self.name!r} "
            f"[{self.start:.3f}, {end}] {self.status}>"
        )


def _safe_attrs(attrs: _t.Mapping[str, object]) -> dict:
    out: dict[str, object] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[str(key)] = value
        elif isinstance(value, (list, tuple)):
            out[str(key)] = [
                v if isinstance(v, (str, int, float, bool)) else repr(v)
                for v in value
            ]
        else:
            out[str(key)] = repr(value)
    return out


class Tracer:
    """Records spans against an injected clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time.  Must be
        non-decreasing across calls (the simulation clock is; so is the
        counting clock).
    """

    def __init__(self, clock: _t.Callable[[], float]):
        self._clock = clock
        self.spans: list[Span] = []
        self._next_id = 1
        self.root: Span | None = None
        self._scopes: dict[str, Span] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def for_env(cls, env) -> "Tracer":
        """A tracer stamping spans from a simulation environment's clock."""
        return cls(lambda: env.now)

    @classmethod
    def counting(cls, step: float = 1.0) -> "Tracer":
        """A tracer whose clock advances ``step`` per read — deterministic
        event ordinals for code with no simulation environment."""
        state = {"t": 0.0}

        def clock() -> float:
            state["t"] += step
            return state["t"]

        return cls(clock)

    # -- recording -----------------------------------------------------------

    def start(
        self,
        name: str,
        category: str,
        parent: Span | None = None,
        attributes: _t.Mapping[str, object] | None = None,
    ) -> Span:
        """Open a span now.  With ``parent=None`` it attaches to the bound
        root span (or becomes a top-level span when no root is bound)."""
        if parent is None and self.root is not None:
            parent_id = self.root.span_id
        else:
            parent_id = parent.span_id if parent is not None else None
        span = Span(
            name=name,
            category=category,
            span_id=self._next_id,
            parent_id=parent_id,
            start=self._clock(),
            attributes=dict(attributes or {}),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def finish(
        self,
        span: Span,
        status: str = "ok",
        attributes: _t.Mapping[str, object] | None = None,
    ) -> Span:
        """Close a span now (idempotent: a finished span is untouched)."""
        if span.end is None:
            span.end = max(self._clock(), span.start)
            span.status = status
        if attributes:
            span.attributes.update(attributes)
        return span

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        category: str,
        parent: Span | None = None,
        attributes: _t.Mapping[str, object] | None = None,
    ):
        """Context manager: open on entry, close on exit.  Any exception
        (including a simulation-process kill unwinding through a yield)
        closes the span with ``status="error"`` before propagating."""
        span = self.start(name, category, parent=parent, attributes=attributes)
        try:
            yield span
        except BaseException:
            self.finish(span, status="error")
            raise
        self.finish(span)

    # -- root + scopes -------------------------------------------------------

    def start_root(
        self,
        name: str,
        category: str = "workflow",
        attributes: _t.Mapping[str, object] | None = None,
    ) -> Span:
        """Open a root span and make it the default parent."""
        span = self.start(name, category, attributes=attributes)
        self.root = span
        return span

    def finish_root(self, root: Span, status: str = "ok") -> Span:
        """Close the root, sweep every still-open descendant shut (status
        ``"unfinished"``, ended at the root's end), and unbind the root."""
        self.finish(root, status=status)
        assert root.end is not None
        for span in self.spans:
            if span.end is None:
                span.end = max(root.end, span.start)
                span.status = "unfinished"
        if self.root is root:
            self.root = None
        self._scopes.clear()
        return root

    def bind_scope(self, key: str, span: Span) -> None:
        """Make ``span`` the parent for components that only know ``key``
        (the workflow driver binds each step's namespace to its span)."""
        self._scopes[key] = span

    def unbind_scope(self, key: str) -> None:
        self._scopes.pop(key, None)

    def scope_parent(self, key: str) -> Span | None:
        """The span bound to ``key``, or None (caller falls back to root)."""
        return self._scopes.get(key)

    # -- reading -------------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        return [s for s in self.spans if s.end is not None]

    def find(
        self, category: str | None = None, name: str | None = None
    ) -> list[Span]:
        """Spans filtered by category and/or exact name, creation order."""
        return [
            s
            for s in self.spans
            if (category is None or s.category == category)
            and (name is None or s.name == name)
        ]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def subtree(self, span: Span) -> list[Span]:
        """``span`` plus every descendant, in creation order."""
        by_parent: dict[int, list[Span]] = {}
        for s in self.spans:
            if s.parent_id is not None:
                by_parent.setdefault(s.parent_id, []).append(s)
        out: list[Span] = []
        stack = [span]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(reversed(by_parent.get(current.span_id, ())))
        return out

    def __repr__(self) -> str:  # pragma: no cover
        open_count = sum(1 for s in self.spans if s.end is None)
        return f"<Tracer {len(self.spans)} spans ({open_count} open)>"


def validate_spans(spans: _t.Sequence[Span]) -> list[str]:
    """Check span-tree invariants; returns problem descriptions (empty =
    valid).

    - span ids are unique and every ``parent_id`` resolves (no orphans);
    - every finished span has ``end >= start``;
    - a finished child lies inside its finished parent (the parent ends
      at or after the child — equal boundaries are legal, since many
      simulation events share a timestamp).
    """
    problems: list[str] = []
    by_id: dict[int, Span] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span id {span.span_id}")
        by_id[span.span_id] = span
    for span in spans:
        if span.end is not None and span.end < span.start:
            problems.append(
                f"span #{span.span_id} {span.name!r} ends before it starts"
            )
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span #{span.span_id} {span.name!r} is an orphan "
                f"(parent {span.parent_id} unknown)"
            )
            continue
        if span.start < parent.start:
            problems.append(
                f"span #{span.span_id} {span.name!r} starts before its "
                f"parent #{parent.span_id}"
            )
        if (
            span.end is not None
            and parent.end is not None
            and span.end > parent.end
        ):
            problems.append(
                f"span #{span.span_id} {span.name!r} ends after its "
                f"parent #{parent.span_id}"
            )
    return problems
