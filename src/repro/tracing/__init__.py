"""End-to-end workflow tracing: spans, critical paths, exporters.

The paper's contribution 5 is *step-by-step measurement* — but a peak
table cannot answer **why** a step was slow.  This package threads a
span-based trace through every layer of the reproduction:

- :class:`~repro.tracing.span.Tracer` / :class:`~repro.tracing.span.Span`
  — the span tree, recorded against the **virtual** clock (never wall
  time, so traces are deterministic and replayable).
- The :class:`~repro.workflow.driver.WorkflowDriver` opens a root span
  per run and a child span per step; the cluster emits queueing
  (created→bound), scheduling (bound→running), and running
  (running→terminal) spans per pod; :mod:`repro.transfer` and
  :mod:`repro.netsim` wrap transfers in spans carrying bytes/rate
  attributes; the ML engines emit flood/kernel/shard spans.
- :mod:`repro.tracing.critical_path` — the longest causal step chain of
  a run, and a per-layer time-attribution table (queueing / scheduling /
  transfer / compute / orchestration) that partitions the root span
  exactly.
- :mod:`repro.tracing.export` — Chrome ``about:tracing`` / Perfetto
  trace-event JSON, span-derived series into the
  :class:`~repro.monitoring.metrics.MetricRegistry`, and span-tree
  validation.

The unified import surface for all of this is :mod:`repro.obs`.
"""

from repro.tracing.span import LAYER_CATEGORIES, Span, Tracer, validate_spans
from repro.tracing.critical_path import (
    ORCHESTRATION,
    CriticalPathReport,
    analyze_run,
    attribute_layers,
    critical_chain,
    layer_overlap,
)
from repro.tracing.export import (
    spans_to_metrics,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
)

__all__ = [
    "LAYER_CATEGORIES",
    "ORCHESTRATION",
    "Span",
    "Tracer",
    "validate_spans",
    "CriticalPathReport",
    "analyze_run",
    "attribute_layers",
    "critical_chain",
    "layer_overlap",
    "spans_to_metrics",
    "to_chrome_trace",
    "validate_trace",
    "write_chrome_trace",
]
