"""Critical-path analysis over a workflow's span tree.

Two questions a Grafana dashboard cannot answer:

1. **Which causal chain bounded the run?**  Steps execute concurrently
   where the DAG allows; the run is only as fast as its longest
   dependency chain.  :func:`critical_chain` walks the step spans'
   recorded ``depends_on`` edges and returns the heaviest chain.
2. **Where did the time go?**  :func:`attribute_layers` partitions the
   root span's interval across the layer categories — ``compute`` >
   ``transfer`` > ``scheduling`` > ``queueing`` in precedence order
   (overlapping intervals charge the dominant layer), with uncovered
   time reported as ``orchestration``.  The partition is exact: the
   layer totals sum to the root duration.

:func:`analyze_run` bundles both into a :class:`CriticalPathReport`.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.tracing.span import LAYER_CATEGORIES, Span, Tracer

__all__ = [
    "CriticalPathReport",
    "analyze_run",
    "attribute_layers",
    "critical_chain",
    "layer_overlap",
]

#: Attribution bucket for root time no layer span covers (driver logic,
#: controller reconciles, queue coordination, retry backoff waits).
ORCHESTRATION = "orchestration"


@dataclasses.dataclass
class CriticalPathReport:
    """The per-run profile: longest step chain + per-layer attribution."""

    workflow: str
    total_s: float
    #: (step name, step duration) along the heaviest dependency chain.
    chain: list[tuple[str, float]]
    #: layer name -> seconds; sums (with orchestration) to ``total_s``.
    layers: dict[str, float]

    @property
    def critical_path_s(self) -> float:
        return sum(duration for _name, duration in self.chain)

    def layer_fraction(self, layer: str) -> float:
        return self.layers.get(layer, 0.0) / self.total_s if self.total_s else 0.0

    def table(self) -> dict[str, dict[str, float]]:
        """Layer attribution as rows of seconds and fractions."""
        return {
            layer: {
                "seconds": seconds,
                "fraction": seconds / self.total_s if self.total_s else 0.0,
            }
            for layer, seconds in self.layers.items()
        }

    def render(self) -> str:
        """Two-part text report: the chain, then the attribution table."""
        lines = [
            f"Critical path — workflow {self.workflow!r} "
            f"({self.total_s:.1f}s total)",
            f"  longest chain ({self.critical_path_s:.1f}s, "
            f"{100.0 * self.critical_path_s / self.total_s if self.total_s else 0.0:.0f}% of run):",
        ]
        for name, duration in self.chain:
            lines.append(f"    {name:<20} {duration:>10.1f}s")
        lines.append("  time attribution by layer:")
        for layer, row in self.table().items():
            lines.append(
                f"    {layer:<14} {row['seconds']:>10.1f}s  "
                f"{100.0 * row['fraction']:5.1f}%"
            )
        return "\n".join(lines)


def critical_chain(step_spans: _t.Sequence[Span]) -> list[tuple[str, float]]:
    """The heaviest dependency chain through the step spans.

    Each step span carries ``attributes["step"]`` (its name) and
    ``attributes["depends_on"]`` (upstream step names) — recorded by the
    workflow driver.  Dependencies without a span (steps restored from a
    checkpoint, skipped steps) simply end the chain there.
    """
    by_name: dict[str, Span] = {}
    for span in step_spans:
        name = str(span.attributes.get("step", span.name))
        by_name[name] = span

    memo: dict[str, tuple[float, list[tuple[str, float]]]] = {}

    def chain_to(name: str) -> tuple[float, list[tuple[str, float]]]:
        if name in memo:
            return memo[name]
        span = by_name[name]
        memo[name] = (span.duration, [(name, span.duration)])  # cycle guard
        best = (0.0, [])
        deps = span.attributes.get("depends_on", ())
        for dep in deps if isinstance(deps, (list, tuple)) else ():
            if str(dep) in by_name:
                candidate = chain_to(str(dep))
                if candidate[0] > best[0]:
                    best = candidate
        result = (
            best[0] + span.duration,
            best[1] + [(name, span.duration)],
        )
        memo[name] = result
        return result

    best: tuple[float, list[tuple[str, float]]] = (0.0, [])
    for name in sorted(by_name):
        candidate = chain_to(name)
        if candidate[0] > best[0]:
            best = candidate
    return best[1]


def _effective_end(spans: _t.Sequence[Span], root: Span) -> float:
    """The analysis window's right edge.

    A finished root ends the window itself.  An *unfinished* root — a
    run whose pods were preempted or evicted before the driver could
    close it — still has a well-defined observation horizon: the latest
    finished timestamp anywhere in the trace.  Using that (never before
    ``root.start``) keeps the layer partition exact on partial traces.
    """
    if root.end is not None:
        return root.end
    latest = root.start
    for span in spans:
        if span.end is not None and span.end > latest:
            latest = span.end
    return latest


def attribute_layers(
    spans: _t.Sequence[Span], root: Span
) -> dict[str, float]:
    """Partition the root interval across the layer categories.

    Every finished span whose category is a layer (``compute``,
    ``transfer``, ``scheduling``, ``queueing``) claims its interval,
    clipped to the root window.  Where claims overlap, precedence picks
    one layer (compute wins over transfer wins over scheduling wins over
    queueing) — so a transfer happening *inside* GPU time is not double
    counted.  Root time nothing claims is ``orchestration``.  The
    returned totals sum to the root window (the root duration when the
    root is finished; see :func:`_effective_end` otherwise).

    Error-status spans participate like any other: a preempted pod's
    queueing/scheduling time is real time the run spent, and dropping it
    would break the partition invariant.  Spans that are unfinished or
    malformed (``end < start`` — possible in externally-loaded traces)
    are skipped; they claim no interval.
    """
    root_end = _effective_end(spans, root)
    intervals: list[tuple[float, float, str]] = []
    for span in spans:
        if span.category not in LAYER_CATEGORIES or span.end is None:
            continue
        if span.end < span.start:
            continue
        lo = max(span.start, root.start)
        hi = min(span.end, root_end)
        if hi > lo:
            intervals.append((lo, hi, span.category))

    points = sorted(
        {root.start, root_end}
        | {lo for lo, _hi, _c in intervals}
        | {hi for _lo, hi, _c in intervals}
    )
    totals = {layer: 0.0 for layer in LAYER_CATEGORIES}
    totals[ORCHESTRATION] = 0.0
    for a, b in zip(points, points[1:]):
        covering = {
            category
            for lo, hi, category in intervals
            if lo <= a and hi >= b
        }
        for layer in LAYER_CATEGORIES:  # precedence order
            if layer in covering:
                totals[layer] += b - a
                break
        else:
            totals[ORCHESTRATION] += b - a
    return totals


def layer_overlap(
    spans: _t.Sequence[Span],
    root: Span,
    a: str = "compute",
    b: str = "transfer",
) -> float:
    """Seconds inside the root window where layers ``a`` and ``b`` both
    have a span active.

    :func:`attribute_layers` deliberately hides overlap: precedence
    charges each instant to exactly one layer.  This is the complementary
    measurement — how much wall time two layers spent running
    *simultaneously*.  A barrier-driven workflow shows ``compute`` /
    ``transfer`` overlap only inside individual steps; the pipelined
    driver's whole point is to grow this number across step boundaries
    (training compute over download transfer), so the bench asserts on
    it directly.

    Uses the same clipping and malformed-span rules as
    :func:`attribute_layers`, so the result is comparable with (and never
    exceeds) the partition's per-layer totals.
    """
    root_end = _effective_end(spans, root)
    intervals: list[tuple[float, float, str]] = []
    for span in spans:
        if span.category not in (a, b) or span.end is None:
            continue
        if span.end < span.start:
            continue
        lo = max(span.start, root.start)
        hi = min(span.end, root_end)
        if hi > lo:
            intervals.append((lo, hi, span.category))

    points = sorted(
        {lo for lo, _hi, _c in intervals} | {hi for _lo, hi, _c in intervals}
    )
    total = 0.0
    for lo, hi in zip(points, points[1:]):
        covering = {
            category
            for ilo, ihi, category in intervals
            if ilo <= lo and ihi >= hi
        }
        if a in covering and b in covering:
            total += hi - lo
    return total


def analyze_run(
    trace: "Tracer | _t.Sequence[Span]",
    root: Span | None = None,
) -> CriticalPathReport:
    """Build the :class:`CriticalPathReport` for one workflow run.

    ``trace`` is a tracer or a span list; ``root`` defaults to the last
    finished ``workflow``-category span (the most recent run), falling
    back to the last *unfinished* one — a run whose pods were preempted
    or evicted can leave the root open, and its partial trace is still
    analyzable over the observed window.
    """
    spans = list(trace.spans) if isinstance(trace, Tracer) else list(trace)
    if root is None:
        finished = [
            s for s in spans if s.category == "workflow" and s.end is not None
        ]
        if finished:
            root = finished[-1]
        else:
            candidates = [s for s in spans if s.category == "workflow"]
            if not candidates:
                raise ValueError("no workflow root span in trace")
            root = candidates[-1]
    step_spans = [
        s
        for s in spans
        if s.category == "step" and s.parent_id == root.span_id
    ]
    return CriticalPathReport(
        workflow=str(root.attributes.get("workflow", root.name)),
        total_s=_effective_end(spans, root) - root.start,
        chain=critical_chain(step_spans),
        layers=attribute_layers(spans, root),
    )
