"""Trace exporters: Chrome trace-event JSON and span-derived metrics.

- :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``about:tracing`` / Perfetto trace-event format: one ``ph="X"``
  (complete) event per finished span, microsecond timestamps, one
  virtual thread per span category (named via ``ph="M"`` metadata
  events), span attributes in ``args``.
- :func:`validate_trace` — schema check for exported trace JSON (the CI
  ``trace-smoke`` job gates on it).
- :func:`spans_to_metrics` — span durations as series in the existing
  :class:`~repro.monitoring.metrics.MetricRegistry`, so PromQL queries
  and Grafana panels can chart trace data next to sampled gauges.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t

from repro.tracing.span import Span, _safe_attrs

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.monitoring.metrics import MetricRegistry

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_trace",
    "spans_to_metrics",
]

#: Virtual thread ids per category: every category renders as one named
#: track in the Chrome/Perfetto timeline.
_CATEGORY_TIDS = {
    "workflow": 0,
    "step": 1,
    "queueing": 2,
    "scheduling": 3,
    "running": 4,
    "transfer": 5,
    "compute": 6,
}
_FALLBACK_TID = 7

#: One trace second == one simulated second (timestamps are in µs).
_US = 1e6


def _tid(category: str) -> int:
    return _CATEGORY_TIDS.get(category, _FALLBACK_TID)


def to_chrome_trace(spans: _t.Sequence[Span]) -> dict:
    """Render finished spans as a Chrome trace-event JSON object.

    Load the result at ``chrome://tracing`` or https://ui.perfetto.dev.
    Unfinished spans are skipped (the driver closes every span when a
    run's root span ends, so a completed run exports in full).
    """
    finished = sorted(
        (s for s in spans if s.end is not None),
        key=lambda s: (s.start, s.span_id),
    )
    events: list[dict] = []
    used_tids: dict[int, str] = {}
    for span in finished:
        tid = _tid(span.category)
        used_tids.setdefault(tid, span.category if tid != _FALLBACK_TID else "other")
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,  # type: ignore[operator]
                "pid": 1,
                "tid": tid,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "status": span.status,
                    **_safe_attrs(span.attributes),
                },
            }
        )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": label},
        }
        for tid, label in sorted(used_tids.items())
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "spans": len(events)},
    }


def write_chrome_trace(
    spans: _t.Sequence[Span], path: "str | pathlib.Path"
) -> pathlib.Path:
    """Write :func:`to_chrome_trace` output to ``path`` (returns it)."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(to_chrome_trace(spans), indent=2))
    return path


def validate_trace(data: object) -> list[str]:
    """Validate exported trace JSON against the span schema.

    Returns problem descriptions (empty list = valid): the top level must
    carry a ``traceEvents`` list; every event needs a string ``name``, a
    known ``ph`` (``X`` complete or ``M`` metadata), integer ``pid`` /
    ``tid``; complete events additionally need non-negative numeric
    ``ts`` / ``dur``, a string ``cat``, and ``args`` with a ``span_id``.
    """
    problems: list[str] = []
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["top level must be an object with a 'traceEvents' list"]
    events = data["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    seen_span_ids: set[int] = set()
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        ph = event.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if ph != "X":
            continue
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{where}: {key!r} must be a number >= 0")
        if not isinstance(event.get("cat"), str):
            problems.append(f"{where}: missing string 'cat'")
        args = event.get("args")
        if not isinstance(args, dict) or "span_id" not in args:
            problems.append(f"{where}: 'args' must carry 'span_id'")
        else:
            span_id = args["span_id"]
            if span_id in seen_span_ids:
                problems.append(f"{where}: duplicate span_id {span_id}")
            seen_span_ids.add(span_id)
    if not seen_span_ids:
        problems.append("trace contains no complete ('X') span events")
    return problems


def spans_to_metrics(
    spans: _t.Sequence[Span],
    registry: "MetricRegistry",
    workflow: str | None = None,
) -> int:
    """Export span durations into the metric registry.

    Appends one ``span_duration_seconds`` sample per finished span,
    labelled by category (and workflow when given), stamped at the
    span's **end** time.  Samples land in global end-time order so the
    registry's non-decreasing-time invariant holds even when the
    registry clock has moved past the spans being exported.  Returns the
    number of samples written.
    """
    finished = sorted(
        (s for s in spans if s.end is not None),
        key=lambda s: (s.end, s.span_id),
    )
    labels_base = {"workflow": workflow} if workflow else {}
    for span in finished:
        labels = {"category": span.category, **labels_base}
        registry.set_gauge_at(
            "span_duration_seconds", span.duration, span.end, labels
        )
        registry.inc_counter_at("spans_total", span.end, 1.0, labels)
    return len(finished)
