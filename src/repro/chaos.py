"""Failure injection for the dynamic-infrastructure story.

Paper §V: "The CHASE-CI infrastructure is very dynamic in the fact that
nodes can join and leave the cluster at any time."  The chaos monkey
makes that dynamism reproducible: a seeded process that fails and
recovers random nodes (and optionally OSDs) on a schedule, so tests and
ablations can assert workflow-level invariants (completion, exactly-once
work) under sustained churn.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.pod import PodPhase
from repro.sim.rng import derive_seed

import numpy as np

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.testbed import NautilusTestbed

__all__ = ["ChaosEvent", "ChaosMonkey"]


@dataclasses.dataclass(frozen=True)
class ChaosEvent:
    """One injected failure or recovery."""

    time: float
    kind: str  # "node-fail" | "node-recover" | "osd-fail"
    target: str


class ChaosMonkey:
    """Seeded periodic node/OSD failure injection.

    Parameters
    ----------
    testbed:
        The deployment to torment.
    mean_interval:
        Mean seconds between failure injections (exponential).
    recovery_after:
        Seconds a failed node stays down before rejoining.
    target_busy_nodes:
        Prefer nodes with running pods (maximizes the blast radius the
        self-healing machinery must absorb).
    include_osds:
        Also fail storage daemons (Ceph recovery must then re-replicate).
    max_failures:
        Stop after this many injections (None = unbounded).
    """

    def __init__(
        self,
        testbed: "NautilusTestbed",
        mean_interval: float = 300.0,
        recovery_after: float = 120.0,
        target_busy_nodes: bool = True,
        include_osds: bool = False,
        max_failures: int | None = None,
        seed: int = 0,
    ):
        if mean_interval <= 0 or recovery_after < 0:
            raise ValueError("intervals must be positive")
        self.testbed = testbed
        self.mean_interval = mean_interval
        self.recovery_after = recovery_after
        self.target_busy_nodes = target_busy_nodes
        self.include_osds = include_osds
        self.max_failures = max_failures
        self.rng = np.random.default_rng(derive_seed(seed, "chaos"))
        self.events: list[ChaosEvent] = []
        self._stopped = False
        testbed.env.process(self._loop(), name="chaos-monkey")

    def stop(self) -> None:
        """No further injections (pending recoveries still happen)."""
        self._stopped = True

    @property
    def failures_injected(self) -> int:
        return sum(1 for e in self.events if e.kind.endswith("-fail"))

    # -- internals ------------------------------------------------------------------

    def _pick_node(self) -> str | None:
        cluster = self.testbed.cluster
        ready = cluster.ready_nodes()
        if len(ready) <= 1:
            return None  # never take the last node out
        if self.target_busy_nodes:
            busy = [
                n for n in ready
                if any(
                    p.phase is PodPhase.RUNNING for p in n.pods.values()
                )
            ]
            pool = busy or ready
        else:
            pool = ready
        return pool[int(self.rng.integers(0, len(pool)))].spec.name

    def _loop(self):
        env = self.testbed.env
        while not self._stopped:
            yield env.timeout(float(self.rng.exponential(self.mean_interval)))
            if self._stopped:
                return
            if (
                self.max_failures is not None
                and self.failures_injected >= self.max_failures
            ):
                return
            if self.include_osds and self.rng.random() < 0.3:
                up = [o for o in self.testbed.ceph.osds.values() if o.up]
                if len(up) > 3:
                    victim = up[int(self.rng.integers(0, len(up)))]
                    self.testbed.ceph.fail_osd(victim.id)
                    self.events.append(
                        ChaosEvent(env.now, "osd-fail", f"osd.{victim.id}")
                    )
                continue
            name = self._pick_node()
            if name is None:
                continue
            self.testbed.cluster.fail_node(name)
            self.events.append(ChaosEvent(env.now, "node-fail", name))
            env.process(self._recover_later(name), name=f"chaos-heal:{name}")

    def _recover_later(self, name: str):
        env = self.testbed.env
        yield env.timeout(self.recovery_after)
        self.testbed.cluster.recover_node(name)
        self.events.append(ChaosEvent(env.now, "node-recover", name))
