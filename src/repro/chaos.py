"""Failure injection for the dynamic-infrastructure story.

Paper §V: "The CHASE-CI infrastructure is very dynamic in the fact that
nodes can join and leave the cluster at any time."  The chaos monkey
makes that dynamism reproducible: a seeded process that fails and
recovers random nodes (and optionally OSDs, WAN links, and whole sites)
on a schedule, so tests and ablations can assert workflow-level
invariants (completion, exactly-once work) under sustained churn.

Fault domains (enabled independently):

- **nodes** (always on) — kubelet death; pods reschedule elsewhere.
- **OSDs** (``include_osds``) — Ceph must re-replicate.
- **links** (``include_links``) — a WAN link degrades to a fraction of
  its rating; in-flight transfers slow down but survive.
- **partitions** (``include_partitions``) — a whole site drops off the
  backbone; everything behind it stalls until the partition heals.

Safety rails: the monkey never takes out the last Ready node, and never
targets a node hosting the **only** running replica of a single-replica
ReplicaSet (killing it would be guaranteed — not probabilistic —
unavailability, which says nothing about self-healing).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.pod import PodPhase
from repro.netsim.faults import NetworkFaultInjector
from repro.sim.rng import derive_seed

import numpy as np

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.testbed import NautilusTestbed

__all__ = ["ChaosEvent", "ChaosMonkey"]

#: Capacity factors a degraded link is throttled to (chosen uniformly).
_DEGRADE_FACTORS = (0.5, 0.25, 0.1)


@dataclasses.dataclass(frozen=True)
class ChaosEvent:
    """One injected failure or recovery.

    ``kind`` is one of ``node-fail``, ``node-recover``, ``osd-fail``,
    ``link-degrade``, ``link-restore``, ``partition``,
    ``partition-heal``; ``reason`` records *why* this target was chosen
    (busy-node targeting, random draw, ...) so post-mortems of a chaos
    run don't have to reverse-engineer the monkey's decisions.
    """

    time: float
    kind: str
    target: str
    reason: str = ""


class ChaosMonkey:
    """Seeded periodic failure injection across fault domains.

    Parameters
    ----------
    testbed:
        The deployment to torment.
    mean_interval:
        Mean seconds between failure injections (exponential).
    recovery_after:
        Seconds a failed node / degraded link / partitioned site stays
        down before healing.
    target_busy_nodes:
        Prefer nodes with running pods (maximizes the blast radius the
        self-healing machinery must absorb).
    include_osds:
        Also fail storage daemons (Ceph recovery must then re-replicate).
    include_links:
        Also degrade WAN links (transfers crawl; retries and timeouts
        must absorb the slowdown).
    include_partitions:
        Also partition whole sites off the backbone (at most one active
        at a time; heals after ``recovery_after``).
    max_failures:
        Stop after this many injections (None = unbounded).
    """

    def __init__(
        self,
        testbed: "NautilusTestbed",
        mean_interval: float = 300.0,
        recovery_after: float = 120.0,
        target_busy_nodes: bool = True,
        include_osds: bool = False,
        include_links: bool = False,
        include_partitions: bool = False,
        max_failures: int | None = None,
        seed: int = 0,
    ):
        if mean_interval <= 0 or recovery_after < 0:
            raise ValueError("intervals must be positive")
        self.testbed = testbed
        self.mean_interval = mean_interval
        self.recovery_after = recovery_after
        self.target_busy_nodes = target_busy_nodes
        self.include_osds = include_osds
        self.include_links = include_links
        self.include_partitions = include_partitions
        self.max_failures = max_failures
        self.rng = np.random.default_rng(derive_seed(seed, "chaos"))
        self.events: list[ChaosEvent] = []
        self.netfaults = NetworkFaultInjector(
            testbed.topology,
            flowsim=testbed.flowsim,
            env=testbed.env,
            registry=testbed.registry,
        )
        self._stopped = False
        self._partition_active = False
        testbed.env.process(self._loop(), name="chaos-monkey")

    def stop(self) -> None:
        """No further injections (pending recoveries still happen)."""
        self._stopped = True

    @property
    def failures_injected(self) -> int:
        return sum(
            1
            for e in self.events
            if e.kind in ("node-fail", "osd-fail", "link-degrade", "partition")
        )

    # -- internals ------------------------------------------------------------------

    def _count(self, metric: str, labels: dict | None = None) -> None:
        self.testbed.registry.inc_counter(metric, 1.0, labels)

    def _protected_nodes(self) -> set[str]:
        """Nodes hosting the only running replica of a 1-replica ReplicaSet."""
        protected: set[str] = set()
        for rs in self.testbed.cluster.replicasets.values():
            if rs.spec.replicas != 1:
                continue
            running = [
                p
                for p in rs.replicas.values()
                if p.phase is PodPhase.RUNNING and p.node_name
            ]
            if len(running) == 1:
                protected.add(_t.cast(str, running[0].node_name))
        return protected

    def _pick_node(self) -> tuple[str, str] | None:
        """Choose a victim node; returns ``(name, reason)`` or None."""
        cluster = self.testbed.cluster
        ready = cluster.ready_nodes()
        if len(ready) <= 1:
            return None  # never take the last node out
        protected = self._protected_nodes()
        ready = [n for n in ready if n.spec.name not in protected]
        if not ready:
            return None  # every candidate holds a last replica
        reason = "random ready node"
        if self.target_busy_nodes:
            busy = [
                n for n in ready
                if any(
                    p.phase is PodPhase.RUNNING for p in n.pods.values()
                )
            ]
            if busy:
                ready = busy
                reason = "busy node (running pods)"
        name = ready[int(self.rng.integers(0, len(ready)))].spec.name
        if protected:
            reason += f"; spared last-replica hosts {sorted(protected)}"
        return name, reason

    def _enabled_kinds(self) -> list[str]:
        kinds = ["node"]
        if self.include_osds:
            kinds.append("osd")
        if self.include_links:
            kinds.append("link")
        if self.include_partitions:
            kinds.append("partition")
        return kinds

    def _loop(self):
        env = self.testbed.env
        while not self._stopped:
            yield env.timeout(float(self.rng.exponential(self.mean_interval)))
            if self._stopped:
                return
            if (
                self.max_failures is not None
                and self.failures_injected >= self.max_failures
            ):
                return
            kinds = self._enabled_kinds()
            kind = kinds[int(self.rng.integers(0, len(kinds)))]
            if kind == "osd":
                self._inject_osd()
            elif kind == "link":
                self._inject_link()
            elif kind == "partition":
                self._inject_partition()
            else:
                self._inject_node()

    # -- per-domain injections --------------------------------------------------

    def _inject_node(self) -> None:
        env = self.testbed.env
        picked = self._pick_node()
        if picked is None:
            return
        name, reason = picked
        self.testbed.cluster.fail_node(name)
        self.events.append(ChaosEvent(env.now, "node-fail", name, reason))
        self._count("chaos_node_failures_total", {"node": name})
        env.process(self._recover_node_later(name), name=f"chaos-heal:{name}")

    def _inject_osd(self) -> None:
        env = self.testbed.env
        up = [o for o in self.testbed.ceph.osds.values() if o.up]
        if len(up) <= 3:
            return
        victim = up[int(self.rng.integers(0, len(up)))]
        self.testbed.ceph.fail_osd(victim.id)
        self.events.append(
            ChaosEvent(
                env.now,
                "osd-fail",
                f"osd.{victim.id}",
                f"random up OSD of {len(up)}",
            )
        )
        self._count("chaos_osd_failures_total", {"osd": f"osd.{victim.id}"})

    def _inject_link(self) -> None:
        env = self.testbed.env
        candidates = [
            link
            for link in self.testbed.topology.wan_links()
            if link.up and link.key not in self.netfaults._degraded
        ]
        if not candidates:
            return
        link = candidates[int(self.rng.integers(0, len(candidates)))]
        factor = float(
            _DEGRADE_FACTORS[int(self.rng.integers(0, len(_DEGRADE_FACTORS)))]
        )
        self.netfaults.degrade_link(link.a, link.b, factor)
        target = f"{link.a}-{link.b}"
        self.events.append(
            ChaosEvent(
                env.now,
                "link-degrade",
                target,
                f"WAN link throttled to {factor:g}x of rating",
            )
        )
        env.process(
            self._restore_link_later(link.a, link.b),
            name=f"chaos-heal-link:{target}",
        )

    def _inject_partition(self) -> None:
        env = self.testbed.env
        if self._partition_active:
            return  # one partition at a time
        # Only sites with attached hosts are interesting to isolate.
        sites = sorted({site for site in self.testbed.topology.hosts.values()})
        if len(sites) <= 1:
            return
        site = sites[int(self.rng.integers(0, len(sites)))]
        cut = self.netfaults.partition([site])
        if not cut:
            return
        self._partition_active = True
        self.events.append(
            ChaosEvent(
                env.now,
                "partition",
                site,
                f"site isolated ({len(cut)} links cut)",
            )
        )
        env.process(
            self._heal_partition_later(site, cut),
            name=f"chaos-heal-partition:{site}",
        )

    # -- recoveries ---------------------------------------------------------------

    def _recover_node_later(self, name: str):
        env = self.testbed.env
        yield env.timeout(self.recovery_after)
        self.testbed.cluster.recover_node(name)
        self.events.append(
            ChaosEvent(env.now, "node-recover", name, "scheduled recovery")
        )

    def _restore_link_later(self, a: str, b: str):
        env = self.testbed.env
        yield env.timeout(self.recovery_after)
        self.netfaults.restore_link(a, b)
        self.events.append(
            ChaosEvent(env.now, "link-restore", f"{a}-{b}", "scheduled recovery")
        )

    def _heal_partition_later(self, site: str, cut):
        env = self.testbed.env
        yield env.timeout(self.recovery_after)
        self.netfaults.heal_partition(cut)
        self._partition_active = False
        self.events.append(
            ChaosEvent(env.now, "partition-heal", site, "scheduled recovery")
        )
