"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``inventory``
    Build a testbed and print the Figure-1 deployment inventory.
``describe``
    Print the Figure-2 workflow-step view.
``run``
    Execute the 4-step CONNECT workflow and print Table I (and, with
    ``--figures``, Figures 3–6).
``version``
    Print the package version.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t
import warnings

from repro._version import __version__

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Workflow-Driven Distributed Machine Learning "
            "in CHASE-CI' (Altintas et al., 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=42, help="root seed")
        p.add_argument(
            "--scale",
            type=float,
            default=0.005,
            help="archive fraction (1.0 = the paper's 112,249 files)",
        )

    p_inv = sub.add_parser("inventory", help="print the Figure-1 inventory")
    common(p_inv)

    p_desc = sub.add_parser("describe", help="print the Figure-2 step view")
    p_desc.add_argument("--workers", type=int, default=10)
    p_desc.add_argument("--gpus", type=int, default=50)

    p_run = sub.add_parser("run", help="run the CONNECT workflow")
    common(p_run)
    p_run.add_argument("--workers", type=int, default=10,
                       help="step-1 download workers")
    p_run.add_argument("--gpus", type=int, default=50,
                       help="step-3 inference GPUs")
    p_run.add_argument("--no-real-ml", action="store_true",
                       help="skip the real NumPy FFN (timing model only)")
    p_run.add_argument("--no-subset", action="store_true",
                       help="download entire files instead of IVT variables")
    p_run.add_argument("--figures", action="store_true",
                       help="also print Figures 3-6")

    sub.add_parser("version", help="print the package version")
    return parser


def _cmd_inventory(args: argparse.Namespace) -> int:
    from repro.testbed import build_nautilus_testbed
    from repro.viz import render_figure1

    testbed = build_nautilus_testbed(seed=args.seed, scale=args.scale)
    print(render_figure1(testbed))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.viz import render_figure2
    from repro.workflow import build_connect_workflow

    workflow = build_connect_workflow(
        n_workers=args.workers, n_gpus=args.gpus
    )
    print(render_figure2(workflow))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.testbed import build_nautilus_testbed
    from repro.viz import (
        render_figure3,
        render_figure4,
        render_figure5,
        render_figure6,
        render_table1,
    )
    from repro.workflow import WorkflowDriver, build_connect_workflow

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        testbed = build_nautilus_testbed(seed=args.seed, scale=args.scale)
        workflow = build_connect_workflow(
            testbed,
            n_workers=args.workers,
            n_gpus=args.gpus,
            subset=not args.no_subset,
            real_ml=not args.no_real_ml,
        )
        print(f"Running workflow {workflow.name!r} at scale={args.scale} "
              f"({len(testbed.archive):,} granules)...")
        report = WorkflowDriver(testbed).run(workflow)

    if args.figures:
        for renderer in (render_figure3, render_figure4, render_figure5,
                         render_figure6):
            print()
            print(renderer(testbed, report))
    print()
    print(render_table1(report))
    if not report.succeeded:
        for step in report.steps:
            if not step.succeeded:
                print(f"FAILED step {step.name}: {step.error}",
                      file=sys.stderr)
        return 1
    return 0


def main(argv: _t.Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "version":
        print(__version__)
        return 0
    if args.command == "inventory":
        return _cmd_inventory(args)
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "run":
        return _cmd_run(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
