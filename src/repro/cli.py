"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``inventory``
    Build a testbed and print the Figure-1 deployment inventory.
``describe``
    Print the Figure-2 workflow-step view.
``run``
    Execute the 4-step CONNECT workflow and print Table I (and, with
    ``--figures``, Figures 3–6).
``lint``
    Static analysis (repro-lint): run the spec/dag/det rule packs over
    JSON spec fixtures and Python sources, or — with no paths — over
    the built testbed plus the CONNECT workflow.  ``--deep`` adds the
    whole-program pass (interprocedural determinism taint DET010+,
    concurrency hazards CONC, cross-layer deployment lint DEPLOY) and,
    with no paths, lints the installed ``repro`` package itself plus
    the loadtest deployment config.  Exits nonzero on error findings
    (and on warnings under ``--strict``).
``bench``
    Run the batched-compute macro-benchmarks (conv3d, wavefront flood
    fill, segment_volume, distributed fan-out) and write a
    ``BENCH_<date>.json`` trajectory artifact.
``trace``
    Run the CONNECT workflow with tracing on, export a Chrome
    trace-event JSON (loadable at chrome://tracing or ui.perfetto.dev),
    and print the critical-path report plus an ASCII flame summary.
``loadtest``
    Multi-tenant overload drill: tens of simulated tenants submit
    CONNECT-derived workflows through the admission gateway while the
    chaos monkey degrades the infrastructure.  Exits nonzero if any
    workflow is lost (no structured outcome) or hung at the horizon.
``version``
    Print the package version.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t
import warnings

from repro._version import __version__

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Workflow-Driven Distributed Machine Learning "
            "in CHASE-CI' (Altintas et al., 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=42, help="root seed")
        p.add_argument(
            "--scale",
            type=float,
            default=0.005,
            help="archive fraction (1.0 = the paper's 112,249 files)",
        )

    p_inv = sub.add_parser("inventory", help="print the Figure-1 inventory")
    common(p_inv)

    p_desc = sub.add_parser("describe", help="print the Figure-2 step view")
    p_desc.add_argument("--workers", type=int, default=10)
    p_desc.add_argument("--gpus", type=int, default=50)

    p_run = sub.add_parser("run", help="run the CONNECT workflow")
    common(p_run)
    p_run.add_argument("--workers", type=int, default=10,
                       help="step-1 download workers")
    p_run.add_argument("--gpus", type=int, default=50,
                       help="step-3 inference GPUs")
    p_run.add_argument("--no-real-ml", action="store_true",
                       help="skip the real NumPy FFN (timing model only)")
    p_run.add_argument("--no-subset", action="store_true",
                       help="download entire files instead of IVT variables")
    p_run.add_argument("--figures", action="store_true",
                       help="also print Figures 3-6")

    p_lint = sub.add_parser(
        "lint", help="static analysis over specs, workflows and sources"
    )
    common(p_lint)
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="JSON spec fixtures and/or Python files/directories; with "
             "no paths, lint the built testbed and the CONNECT workflow",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (sarif = SARIF 2.1.0 for code-scanning UIs)",
    )
    p_lint.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings too, not just errors",
    )
    p_lint.add_argument(
        "--deep", action="store_true",
        help="whole-program pass: call-graph determinism taint (DET010+), "
             "concurrency hazards (CONC), cross-layer deployment lint "
             "(DEPLOY); with no paths, lints the repro package itself and "
             "the loadtest deployment config",
    )
    p_lint.add_argument(
        "--select", action="append", default=None, metavar="CODE",
        help="run only these rule codes (repeatable or comma-separated)",
    )
    p_lint.add_argument(
        "--disable", action="append", default=None, metavar="CODE",
        help="switch these rule codes off (repeatable or comma-separated; "
             "wins over --select)",
    )
    p_lint.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="JSON baseline of accepted findings to suppress",
    )
    p_lint.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )

    p_bench = sub.add_parser(
        "bench", help="run the batched-compute macro-benchmarks"
    )
    p_bench.add_argument("--seed", type=int, default=42, help="root seed")
    p_bench.add_argument(
        "--smoke", action="store_true",
        help="tiny shapes (seconds, for CI); artifact is BENCH_<date>_smoke.json",
    )
    p_bench.add_argument(
        "--repeat", type=int, default=2,
        help="timing repetitions per path (best-of)",
    )
    p_bench.add_argument(
        "--max-workers", type=int, default=None,
        help="process-pool width for the distributed fan-out bench",
    )
    p_bench.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for the BENCH_<date>.json artifact",
    )
    p_bench.add_argument(
        "--compare", default=None, metavar="FILE",
        help="prior BENCH_*.json to diff against; exits nonzero on a "
             ">10%% speedup regression (degraded/non-comparable records "
             "are skipped)",
    )

    p_trace = sub.add_parser(
        "trace", help="run the CONNECT workflow traced and export the spans"
    )
    common(p_trace)
    p_trace.add_argument("--workers", type=int, default=10,
                         help="step-1 download workers")
    p_trace.add_argument("--gpus", type=int, default=50,
                         help="step-3 inference GPUs")
    p_trace.add_argument("--no-real-ml", action="store_true",
                         help="skip the real NumPy FFN (timing model only)")
    p_trace.add_argument(
        "--overlap", action="store_true",
        help="pipelined driver: stream downloads into training instead "
             "of barriering per step",
    )
    p_trace.add_argument(
        "--out", default="trace.json", metavar="FILE",
        help="path for the Chrome trace-event JSON (default: trace.json)",
    )
    p_trace.add_argument(
        "--flame-width", type=int, default=48,
        help="timeline width of the ASCII flame summary",
    )

    p_load = sub.add_parser(
        "loadtest", help="multi-tenant overload drill through the gateway"
    )
    p_load.add_argument("--seed", type=int, default=42, help="root seed")
    p_load.add_argument("--tenants", type=int, default=50,
                        help="simulated tenants")
    p_load.add_argument("--workflows", type=int, default=4,
                        help="workflows per tenant")
    p_load.add_argument("--fiona8", type=int, default=4,
                        help="GPU nodes in the testbed (small = overload)")
    p_load.add_argument("--fanout", type=int, default=4,
                        help="inference shards per workflow")
    p_load.add_argument("--no-chaos", action="store_true",
                        help="disable fault injection")
    p_load.add_argument("--no-degradation", action="store_true",
                        help="disable graceful degradation policies")
    p_load.add_argument("--horizon", type=float, default=4 * 3600.0,
                        help="sim-time ceiling in seconds")
    p_load.add_argument("--out", default=None, metavar="FILE",
                        help="write the full metrics report JSON here")

    sub.add_parser("version", help="print the package version")
    return parser


def _cmd_inventory(args: argparse.Namespace) -> int:
    from repro.testbed import build_nautilus_testbed
    from repro.viz import render_figure1

    testbed = build_nautilus_testbed(seed=args.seed, scale=args.scale)
    print(render_figure1(testbed))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from repro.viz import render_figure2
    from repro.workflow import build_connect_workflow

    workflow = build_connect_workflow(
        n_workers=args.workers, n_gpus=args.gpus
    )
    print(render_figure2(workflow))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.testbed import build_nautilus_testbed
    from repro.viz import (
        render_figure3,
        render_figure4,
        render_figure5,
        render_figure6,
        render_table1,
    )
    from repro.workflow import WorkflowDriver, build_connect_workflow

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        testbed = build_nautilus_testbed(seed=args.seed, scale=args.scale)
        workflow = build_connect_workflow(
            testbed,
            n_workers=args.workers,
            n_gpus=args.gpus,
            subset=not args.no_subset,
            real_ml=not args.no_real_ml,
        )
        print(f"Running workflow {workflow.name!r} at scale={args.scale} "
              f"({len(testbed.archive):,} granules)...")
        report = WorkflowDriver(testbed).run(workflow)

    if args.figures:
        for renderer in (render_figure3, render_figure4, render_figure5,
                         render_figure6):
            print()
            print(renderer(testbed, report))
    print()
    print(render_table1(report))
    if not report.succeeded:
        for step in report.steps:
            if not step.succeeded:
                print(f"FAILED step {step.name}: {step.error}",
                      file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import pathlib

    from repro.analysis import Baseline, LintEngine, cluster_view, registry, workflow_view

    if args.list_rules:
        print(registry.render_table())
        return 0

    baseline = None
    baseline_path = pathlib.Path(args.baseline) if args.baseline else None
    if baseline_path is None and args.deep:
        # The committed repo baseline gates `lint --deep --strict` in CI;
        # an explicit --baseline always wins.
        default_baseline = pathlib.Path("lint-baseline.json")
        if default_baseline.exists():
            baseline_path = default_baseline
    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)

    def split_codes(values: "list[str] | None") -> "list[str] | None":
        if values is None:
            return None
        return [c for v in values for c in v.split(",") if c]

    try:
        engine = LintEngine(
            select=split_codes(args.select),
            disable=split_codes(args.disable),
            baseline=baseline,
            deep=args.deep,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    try:
        if args.paths:
            report = engine.lint_paths(args.paths)
        else:
            # No paths: lint the deployment itself — the built testbed's
            # cluster and the CONNECT workflow against its GPU total
            # (and, under --deep, the package sources plus the loadtest
            # deployment config).
            from repro.testbed import build_nautilus_testbed
            from repro.workflow import build_connect_workflow

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                testbed = build_nautilus_testbed(
                    seed=args.seed, scale=args.scale
                )
                workflow = build_connect_workflow(testbed)
            deployment = None
            if args.deep:
                from repro.loadgen import (
                    LoadgenConfig,
                    loadtest_deployment_view,
                )

                deployment = loadtest_deployment_view(LoadgenConfig())
            report = engine.lint_views(
                cluster=cluster_view(testbed.cluster),
                workflows=[
                    workflow_view(workflow, total_gpus=testbed.total_gpus())
                ],
                deployment=deployment,
            )
            if args.deep:
                import repro as _repro_pkg

                pkg_root = pathlib.Path(_repro_pkg.__file__).parent
                deep_report = engine.lint_paths([pkg_root])
                report.merge(deep_report.findings)
                report.suppressed.extend(deep_report.suppressed)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.update_baseline:
        if baseline_path is None:
            print("--update-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        new_baseline = baseline or Baseline()
        for finding in report.findings:
            new_baseline.add(finding, justification="accepted via --update-baseline")
        new_baseline.save(baseline_path)
        print(f"baseline updated: {baseline_path} "
              f"({len(new_baseline.entries)} accepted finding(s))")
        return 0

    if args.format == "json":
        print(report.render_json())
    elif args.format == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_text())
    return report.exit_code(strict=args.strict)


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import (
        compare_artifacts,
        render_comparison,
        render_summary,
        run_benchmarks,
        write_artifact,
    )

    records = run_benchmarks(
        smoke=args.smoke,
        repeat=args.repeat,
        max_workers=args.max_workers,
        seed=args.seed,
    )
    path = write_artifact(records, out_dir=args.out, smoke=args.smoke)
    print(render_summary(records))
    print(f"\nwrote {path}")
    if not all(r.outputs_identical for r in records):
        print("ERROR: optimized path changed the output of at least one "
              "benchmark", file=sys.stderr)
        return 1
    if args.compare is not None:
        with open(args.compare, encoding="utf-8") as fh:
            old = json.load(fh)
        with open(path, encoding="utf-8") as fh:
            new = json.load(fh)
        comparison = compare_artifacts(old, new)
        print()
        print(render_comparison(comparison, old_label=args.compare))
        if comparison["regressions"]:
            print(f"ERROR: {len(comparison['regressions'])} benchmark(s) "
                  "regressed by >10% speedup", file=sys.stderr)
            return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.testbed import build_nautilus_testbed
    from repro.tracing import (
        analyze_run,
        spans_to_metrics,
        validate_spans,
        validate_trace,
        write_chrome_trace,
    )
    from repro.viz.flame import flame_summary
    from repro.workflow import WorkflowDriver, build_connect_workflow

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        testbed = build_nautilus_testbed(seed=args.seed, scale=args.scale)
        workflow = build_connect_workflow(
            testbed,
            n_workers=args.workers,
            n_gpus=args.gpus,
            real_ml=not args.no_real_ml,
        )
        print(f"Tracing workflow {workflow.name!r} at scale={args.scale} "
              f"({len(testbed.archive):,} granules"
              f"{', pipelined' if args.overlap else ''})...")
        report = WorkflowDriver(testbed).run(workflow, overlap=args.overlap)

    spans = testbed.tracer.finished_spans()
    problems = validate_spans(spans)
    if problems:
        for problem in problems:
            print(f"span-tree problem: {problem}", file=sys.stderr)
        return 1

    path = write_chrome_trace(spans, args.out)
    with open(path, encoding="utf-8") as fh:
        trace_problems = validate_trace(json.load(fh))
    if trace_problems:
        for problem in trace_problems:
            print(f"trace-json problem: {problem}", file=sys.stderr)
        return 1
    print(f"wrote {path} ({len(spans)} spans) — load at chrome://tracing "
          "or https://ui.perfetto.dev")

    spans_to_metrics(spans, testbed.registry, workflow=workflow.name)

    analysis = analyze_run(spans)
    print()
    print(analysis.render())
    print()
    print(flame_summary(spans, width=args.flame_width, min_fraction=0.005))
    return 0 if report.succeeded else 1


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json

    from repro.loadgen import LoadgenConfig, run_loadtest

    cfg = LoadgenConfig(
        n_tenants=args.tenants,
        workflows_per_tenant=args.workflows,
        seed=args.seed,
        n_fiona8=args.fiona8,
        inference_fanout=args.fanout,
        chaos=not args.no_chaos,
        degradation=not args.no_degradation,
        horizon_s=args.horizon,
    )
    print(
        f"Overload drill: {cfg.n_tenants} tenants x "
        f"{cfg.workflows_per_tenant} workflows on {cfg.n_fiona8} GPU nodes "
        f"(chaos={'on' if cfg.chaos else 'off'}, seed={cfg.seed})..."
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        report = run_loadtest(cfg)

    counts = report.counts
    print()
    print(f"workflows : {cfg.expected_workflows()} submitted over "
          f"{report.makespan_s / 60:.0f} sim-minutes")
    print(f"outcomes  : {counts['completed']} completed, "
          f"{counts['shed']} shed, {counts['rejected']} rejected, "
          f"{counts['failed']} failed")
    print(f"invariant : lost={report.lost} hung={report.hung}")
    print(f"scheduler : {report.scheduler_throughput:.2f} binds/s, "
          f"{report.preemptions:.0f} preemptions, "
          f"peak queue depth {report.peak_queue_depth:.0f}")
    for cls, pct in report.latency_by_class.items():
        print(f"latency   : {cls:>6} p50={pct['p50']:.1f}s "
              f"p99={pct['p99']:.1f}s (n={pct['count']})")
    degr = report.degradation_summary
    if degr:
        print(f"degraded  : {len(degr.get('dropped_steps', []))} optional "
              f"steps dropped, {len(degr.get('coarsened_fanouts', []))} "
              f"fan-outs coarsened")
    print(f"chaos     : {report.chaos_failures} faults injected")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"\nwrote {args.out}")

    if report.lost or report.hung:
        print(f"ERROR: {report.lost} workflow(s) lost, {report.hung} "
              "tenant process(es) hung — the control plane dropped work "
              "without a structured outcome", file=sys.stderr)
        return 1
    return 0


def main(argv: _t.Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "version":
        print(__version__)
        return 0
    if args.command == "inventory":
        return _cmd_inventory(args)
    if args.command == "describe":
        return _cmd_describe(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
