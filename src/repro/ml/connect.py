"""The CONNECT algorithm: connected objects in time and space.

The baseline the paper accelerates away from: "the CONNected objECT, or
CONNECT algorithm focuses on keeping track of the entire life-cycle of a
detected earth science phenomena by connecting pixels in time and space"
[21][22].  Given a time-stacked IVT volume, CONNECT thresholds the field
and labels 6-connected components of the ``(time, lat, lon)`` volume — so
an atmospheric river that persists across 3-hourly steps becomes **one**
object with a genesis time, a termination time, and a trajectory.

Implemented from scratch with a vectorized union-find: neighbor pairs
along each axis are found with array slicing (no Python voxel loop) and
merged through a path-compressing disjoint-set forest.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ShapeError

__all__ = ["ConnectedObject", "ConnectReport", "label_volume", "connect_segmentation"]


class _DisjointSet:
    """Path-compressing, union-by-size disjoint sets over ``n`` items."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, i: int) -> int:
        parent = self.parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:  # path compression
            parent[i], i = root, parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def label_volume(mask: np.ndarray) -> tuple[np.ndarray, int]:
    """6-connected component labelling of a binary 3-D mask.

    Returns ``(labels, n_objects)`` with labels 1..n (0 = background).
    """
    if mask.ndim != 3:
        raise ShapeError(f"mask must be 3-D (time, lat, lon), got {mask.shape}")
    fg = mask > 0
    n_fg = int(fg.sum())
    labels = np.zeros(mask.shape, dtype=np.int32)
    if n_fg == 0:
        return labels, 0

    # Dense index for foreground voxels.
    voxel_index = np.full(mask.shape, -1, dtype=np.int64)
    voxel_index[fg] = np.arange(n_fg)

    dsu = _DisjointSet(n_fg)
    # For each axis, adjacent foreground pairs found by slicing — fully
    # vectorized; only the union loop is per-pair.
    for axis in range(3):
        lo = [slice(None)] * 3
        hi = [slice(None)] * 3
        lo[axis] = slice(None, -1)
        hi[axis] = slice(1, None)
        both = fg[tuple(lo)] & fg[tuple(hi)]
        a_ids = voxel_index[tuple(lo)][both]
        b_ids = voxel_index[tuple(hi)][both]
        for a, b in zip(a_ids.tolist(), b_ids.tolist()):
            dsu.union(a, b)

    roots = np.fromiter(
        (dsu.find(i) for i in range(n_fg)), count=n_fg, dtype=np.int64
    )
    unique_roots, compact = np.unique(roots, return_inverse=True)
    labels[fg] = compact + 1
    return labels, len(unique_roots)


@dataclasses.dataclass
class ConnectedObject:
    """One tracked phenomenon with its full life cycle."""

    id: int
    genesis_t: int  # first timestep present
    termination_t: int  # last timestep present
    voxels: int
    max_intensity: float
    mean_intensity: float
    centroid_txy: tuple[float, float, float]

    @property
    def lifetime_steps(self) -> int:
        """Timesteps from genesis through termination, inclusive."""
        return self.termination_t - self.genesis_t + 1


@dataclasses.dataclass
class ConnectReport:
    """Output of a CONNECT run."""

    labels: np.ndarray
    objects: list[ConnectedObject]
    threshold: float

    @property
    def n_objects(self) -> int:
        return len(self.objects)

    def object_by_id(self, object_id: int) -> ConnectedObject:
        for obj in self.objects:
            if obj.id == object_id:
                return obj
        raise KeyError(f"no object {object_id}")


def connect_segmentation(
    ivt_volume: np.ndarray,
    threshold: float | None = None,
    threshold_percentile: float = 95.0,
    min_voxels: int = 4,
) -> ConnectReport:
    """Run CONNECT on a ``(time, lat, lon)`` IVT volume.

    Parameters
    ----------
    ivt_volume:
        The stacked IVT magnitude fields.
    threshold:
        Absolute IVT cut; when ``None``, the ``threshold_percentile`` of
        the volume is used (the CONNECT papers threshold IVT at a high
        climatological percentile).
    min_voxels:
        Objects smaller than this are discarded as noise.

    Returns
    -------
    A :class:`ConnectReport` with the label volume and per-object
    life-cycle statistics (genesis, termination, trajectory centroid).
    """
    if ivt_volume.ndim != 3:
        raise ShapeError(f"expected (time, lat, lon), got {ivt_volume.shape}")
    cut = float(
        threshold
        if threshold is not None
        else np.percentile(ivt_volume, threshold_percentile)
    )
    mask = ivt_volume >= cut
    labels, n = label_volume(mask)

    objects: list[ConnectedObject] = []
    next_id = 0
    for obj_id in range(1, n + 1):
        where = labels == obj_id
        count = int(where.sum())
        if count < min_voxels:
            labels[where] = 0
            continue
        ts, ys, xs = np.nonzero(where)
        vals = ivt_volume[where]
        next_id += 1
        labels[where] = next_id
        objects.append(
            ConnectedObject(
                id=next_id,
                genesis_t=int(ts.min()),
                termination_t=int(ts.max()),
                voxels=count,
                max_intensity=float(vals.max()),
                mean_intensity=float(vals.mean()),
                centroid_txy=(
                    float(ts.mean()),
                    float(ys.mean()),
                    float(xs.mean()),
                ),
            )
        )
    return ConnectReport(labels=labels, objects=objects, threshold=cut)
