"""FFN training: FOV patch sampling + SGD.

"Training the model relies on a labeled dataset ... a binary
representation of locations on earth where intense large-scale moisture
transport (IVT) processes exist.  The CONNECT dataset is used for
training" (§III-B).  The trainer samples FOV-sized patches centered on
object voxels (plus background patches), seeds the mask at the center,
runs one FFN step, and minimizes voxelwise sigmoid cross-entropy —
each step trained independently, as in the reference FFN.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import MLError, ShapeError
from repro.ml.ffn import FFNModel

__all__ = ["TrainingReport", "FFNTrainer"]


@dataclasses.dataclass
class TrainingReport:
    """What a training run produced."""

    steps: int
    losses: list[float]
    final_loss: float
    initial_loss: float
    patches_seen: int

    @property
    def improved(self) -> bool:
        return self.final_loss < self.initial_loss


class FFNTrainer:
    """Patch-based SGD trainer.

    Parameters
    ----------
    model:
        The :class:`FFNModel` to optimize (updated in place).
    lr / momentum:
        SGD hyperparameters.
    object_fraction:
        Fraction of sampled patches centered on labelled object voxels
        (the rest are random background, so the model learns to *not*
        flood empty air).
    seed:
        Sampling RNG seed.
    """

    def __init__(
        self,
        model: FFNModel,
        lr: float = 0.1,
        momentum: float = 0.9,
        object_fraction: float = 0.7,
        fov_steps: int = 3,
        batch_size: int = 4,
        seed: int = 0,
    ):
        if not 0.0 <= object_fraction <= 1.0:
            raise MLError("object_fraction must be in [0, 1]")
        if fov_steps < 1:
            raise MLError("fov_steps must be >= 1")
        if batch_size < 1:
            raise MLError("batch_size must be >= 1")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.object_fraction = object_fraction
        #: FFN steps iterated per patch: later steps see partially flooded
        #: masks, which is exactly what inference produces — training only
        #: on fresh seeds makes the network over-flood at inference time.
        self.fov_steps = fov_steps
        #: Patches whose gradients are accumulated per optimizer step;
        #: single-patch SGD oscillates between flooding and suppressing.
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)

    # -- sampling ----------------------------------------------------------------

    def _patch_centers(
        self, labels: np.ndarray, count: int
    ) -> list[tuple[int, int, int]]:
        fov = np.array(self.model.config.fov)
        half = fov // 2
        shape = np.array(labels.shape)
        lo, hi = half, shape - half  # valid center range (exclusive hi)
        if np.any(lo >= hi):
            raise ShapeError(
                f"volume {labels.shape} too small for FOV {tuple(fov)}"
            )
        interior = labels[tuple(slice(int(a), int(b)) for a, b in zip(lo, hi))]
        object_voxels = np.argwhere(interior > 0) + lo
        centers: list[tuple[int, int, int]] = []
        n_obj = int(round(count * self.object_fraction))
        if len(object_voxels) and n_obj:
            picks = self.rng.integers(0, len(object_voxels), size=n_obj)
            centers.extend(map(tuple, object_voxels[picks]))
        while len(centers) < count:
            centers.append(
                tuple(int(self.rng.integers(a, b)) for a, b in zip(lo, hi))
            )
        # Interleave object and background patches — a sorted curriculum
        # ends with a long background-only run and the model forgets how
        # to flood (catastrophic forgetting).
        self.rng.shuffle(centers)
        return centers

    # -- training -------------------------------------------------------------------

    def train(
        self,
        volume: np.ndarray,
        labels: np.ndarray,
        steps: int = 200,
        log_every: int = 10,
    ) -> TrainingReport:
        """Run ``steps`` minibatch SGD steps on (volume, labels).

        Each step stacks ``batch_size`` FOV patches and drives them
        through the batched FFN kernels together (one GEMM per conv
        layer per FOV step, instead of ``batch_size`` of them).

        ``labels`` is binary (object/background) with the same shape as
        ``volume`` — the paper's "576x361x240 data volume" at any scale.
        """
        if volume.shape != labels.shape:
            raise ShapeError(
                f"volume {volume.shape} and labels {labels.shape} differ"
            )
        image = volume.astype(np.float32)
        std = image.std()
        if std > 0:
            image = (image - image.mean()) / std
        cfg = self.model.config
        half = tuple(f // 2 for f in cfg.fov)
        losses: list[float] = []
        initial_loss = None
        centers = self._patch_centers(labels, steps * self.batch_size)
        grad_scale = 1.0 / (self.batch_size * self.fov_steps)
        idx = 0
        center_idx = (slice(None),) + half  # seed voxel of every batch item
        for step in range(steps):
            batch = centers[idx : idx + self.batch_size]
            idx += self.batch_size
            slices_list = [
                tuple(slice(c - h, c + h + 1) for c, h in zip(center, half))
                for center in batch
            ]
            # Real minibatches: the whole batch moves through the conv
            # stack as one set of batched kernels per FOV step.
            img_patches = np.stack([image[s] for s in slices_list])
            label_patches = np.stack(
                [(labels[s] > 0).astype(np.float32) for s in slices_list]
            )
            masks = np.full(
                (len(batch),) + cfg.fov, cfg.init_logit, dtype=np.float32
            )
            masks[center_idx] = cfg.seed_logit
            batch_loss = 0.0
            for _ in range(self.fov_steps):
                logits = self.model.forward_batch(img_patches, masks)
                item_losses, grad = FFNModel.logistic_loss_batch(
                    logits, label_patches
                )
                if initial_loss is None:
                    initial_loss = float(item_losses[0])
                batch_loss += float(item_losses.sum()) * grad_scale
                self.model.backward_batch(grad * grad_scale)
                # Next pass sees the (detached, saturated) updated masks.
                masks = np.clip(logits, -16.0, 16.0).astype(np.float32)
            self.model.sgd_step(self.lr, momentum=self.momentum)
            if step % log_every == 0 or step == steps - 1:
                losses.append(batch_loss)
        return TrainingReport(
            steps=steps,
            losses=losses,
            final_loss=losses[-1],
            initial_loss=float(initial_loss),
            patches_seen=steps * self.batch_size,
        )

    def evaluate(self, volume: np.ndarray, labels: np.ndarray,
                 n_patches: int = 50) -> float:
        """Mean loss over freshly sampled patches (no updates)."""
        image = volume.astype(np.float32)
        std = image.std()
        if std > 0:
            image = (image - image.mean()) / std
        cfg = self.model.config
        half = tuple(f // 2 for f in cfg.fov)
        slices_list = [
            tuple(slice(c - h, c + h + 1) for c, h in zip(center, half))
            for center in self._patch_centers(labels, n_patches)
        ]
        img_patches = np.stack([image[s] for s in slices_list])
        label_patches = np.stack(
            [(labels[s] > 0).astype(np.float32) for s in slices_list]
        )
        masks = np.full(
            (n_patches,) + cfg.fov, cfg.init_logit, dtype=np.float32
        )
        masks[(slice(None),) + half] = cfg.seed_logit
        logits = self.model.forward_batch(img_patches, masks)
        item_losses, _ = FFNModel.logistic_loss_batch(logits, label_patches)
        return float(item_losses.mean())
