"""FFN training: FOV patch sampling + SGD.

"Training the model relies on a labeled dataset ... a binary
representation of locations on earth where intense large-scale moisture
transport (IVT) processes exist.  The CONNECT dataset is used for
training" (§III-B).  The trainer samples FOV-sized patches centered on
object voxels (plus background patches), seeds the mask at the center,
runs one FFN step, and minimizes voxelwise sigmoid cross-entropy —
each step trained independently, as in the reference FFN.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import MLError, ShapeError
from repro.ml.ffn import FFNModel

__all__ = ["TrainingReport", "FFNTrainer"]


@dataclasses.dataclass
class TrainingReport:
    """What a training run produced."""

    steps: int
    losses: list[float]
    final_loss: float
    initial_loss: float
    patches_seen: int

    @property
    def improved(self) -> bool:
        return self.final_loss < self.initial_loss


class FFNTrainer:
    """Patch-based SGD trainer.

    Parameters
    ----------
    model:
        The :class:`FFNModel` to optimize (updated in place).
    lr / momentum:
        SGD hyperparameters.
    object_fraction:
        Fraction of sampled patches centered on labelled object voxels
        (the rest are random background, so the model learns to *not*
        flood empty air).
    seed:
        Sampling RNG seed.
    """

    def __init__(
        self,
        model: FFNModel,
        lr: float = 0.1,
        momentum: float = 0.9,
        object_fraction: float = 0.7,
        fov_steps: int = 3,
        batch_size: int = 4,
        seed: int = 0,
    ):
        if not 0.0 <= object_fraction <= 1.0:
            raise MLError("object_fraction must be in [0, 1]")
        if fov_steps < 1:
            raise MLError("fov_steps must be >= 1")
        if batch_size < 1:
            raise MLError("batch_size must be >= 1")
        self.model = model
        self.lr = lr
        self.momentum = momentum
        self.object_fraction = object_fraction
        #: FFN steps iterated per patch: later steps see partially flooded
        #: masks, which is exactly what inference produces — training only
        #: on fresh seeds makes the network over-flood at inference time.
        self.fov_steps = fov_steps
        #: Patches whose gradients are accumulated per optimizer step;
        #: single-patch SGD oscillates between flooding and suppressing.
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)

    # -- sampling ----------------------------------------------------------------

    def _patch_centers(
        self, labels: np.ndarray, count: int
    ) -> list[tuple[int, int, int]]:
        fov = np.array(self.model.config.fov)
        half = fov // 2
        shape = np.array(labels.shape)
        lo, hi = half, shape - half  # valid center range (exclusive hi)
        if np.any(lo >= hi):
            raise ShapeError(
                f"volume {labels.shape} too small for FOV {tuple(fov)}"
            )
        interior = labels[tuple(slice(int(a), int(b)) for a, b in zip(lo, hi))]
        object_voxels = np.argwhere(interior > 0) + lo
        centers: list[tuple[int, int, int]] = []
        n_obj = int(round(count * self.object_fraction))
        if len(object_voxels) and n_obj:
            picks = self.rng.integers(0, len(object_voxels), size=n_obj)
            centers.extend(map(tuple, object_voxels[picks]))
        while len(centers) < count:
            centers.append(
                tuple(int(self.rng.integers(a, b)) for a, b in zip(lo, hi))
            )
        # Interleave object and background patches — a sorted curriculum
        # ends with a long background-only run and the model forgets how
        # to flood (catastrophic forgetting).
        self.rng.shuffle(centers)
        return centers

    # -- training -------------------------------------------------------------------

    def train(
        self,
        volume: np.ndarray,
        labels: np.ndarray,
        steps: int = 200,
        log_every: int = 10,
    ) -> TrainingReport:
        """Run ``steps`` single-patch SGD steps on (volume, labels).

        ``labels`` is binary (object/background) with the same shape as
        ``volume`` — the paper's "576x361x240 data volume" at any scale.
        """
        if volume.shape != labels.shape:
            raise ShapeError(
                f"volume {volume.shape} and labels {labels.shape} differ"
            )
        image = volume.astype(np.float32)
        std = image.std()
        if std > 0:
            image = (image - image.mean()) / std
        cfg = self.model.config
        half = tuple(f // 2 for f in cfg.fov)
        losses: list[float] = []
        initial_loss = None
        centers = self._patch_centers(labels, steps * self.batch_size)
        grad_scale = 1.0 / (self.batch_size * self.fov_steps)
        idx = 0
        for step in range(steps):
            batch_loss = 0.0
            for _ in range(self.batch_size):
                center = centers[idx]
                idx += 1
                slices = tuple(
                    slice(c - h, c + h + 1) for c, h in zip(center, half)
                )
                img_patch = image[slices]
                label_patch = (labels[slices] > 0).astype(np.float32)
                mask = np.full(cfg.fov, cfg.init_logit, dtype=np.float32)
                mask[half] = cfg.seed_logit
                for _ in range(self.fov_steps):
                    logits = self.model.forward(img_patch, mask)
                    loss, grad = FFNModel.logistic_loss(logits, label_patch)
                    if initial_loss is None:
                        initial_loss = loss
                    batch_loss += loss * grad_scale
                    self.model.backward(grad * grad_scale)
                    # Next pass sees the (detached, saturated) updated mask.
                    mask = np.clip(logits, -16.0, 16.0).astype(np.float32)
            self.model.sgd_step(self.lr, momentum=self.momentum)
            if step % log_every == 0 or step == steps - 1:
                losses.append(batch_loss)
        return TrainingReport(
            steps=steps,
            losses=losses,
            final_loss=losses[-1],
            initial_loss=float(initial_loss),
            patches_seen=steps * self.batch_size,
        )

    def evaluate(self, volume: np.ndarray, labels: np.ndarray,
                 n_patches: int = 50) -> float:
        """Mean loss over freshly sampled patches (no updates)."""
        image = volume.astype(np.float32)
        std = image.std()
        if std > 0:
            image = (image - image.mean()) / std
        cfg = self.model.config
        half = tuple(f // 2 for f in cfg.fov)
        total = 0.0
        for center in self._patch_centers(labels, n_patches):
            slices = tuple(
                slice(c - h, c + h + 1) for c, h in zip(center, half)
            )
            mask = np.full(cfg.fov, cfg.init_logit, dtype=np.float32)
            mask[half] = cfg.seed_logit
            logits = self.model.forward(image[slices], mask)
            loss, _ = FFNModel.logistic_loss(
                logits, (labels[slices] > 0).astype(np.float32)
            )
            total += loss
        return total / n_patches
