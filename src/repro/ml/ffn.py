"""The Flood-Filling Network model.

A faithful, laptop-scale NumPy implementation of the FFN of Januszewski
et al. [20], which the paper applies to NASA data: a residual stack of
3-D convolutions that reads a two-channel field of view (FOV) — the image
patch and the current object-mask logits — and predicts a **logit update**
for the mask.  Iterating the network while moving the FOV floods an
object outward from a seed (the inference loop lives in
:mod:`repro.ml.inference`).

The implementation is complete: forward, full backpropagation, and SGD
with momentum, all in vectorized NumPy.  Training each FOV step
independently (no backprop through the recursion) matches the reference
FFN training scheme.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.errors import ShapeError
from repro.ml.conv3d import Conv3D

__all__ = ["FFNConfig", "FFNModel", "logit", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function.

    Preserves floating input dtypes: a float32 mask stays float32 (the
    flood-fill hot loop would otherwise double its memory traffic on
    every probability readout); integer inputs are computed in float64.
    """
    x = np.asarray(x)
    dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
    out = np.empty_like(x, dtype=dtype)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def logit(p: float) -> float:
    """Inverse sigmoid for scalar probabilities."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0,1), got {p}")
    return float(np.log(p / (1.0 - p)))


@dataclasses.dataclass(frozen=True)
class FFNConfig:
    """Architecture + flood-fill hyperparameters.

    Attributes
    ----------
    fov:
        Field-of-view shape ``(depth, height, width)`` — odd entries.
    filters:
        Conv channels per layer.
    modules:
        Number of residual modules between the input and head convs.
    kernel:
        Cubic kernel size (odd).
    init_prob / seed_prob:
        Mask initialization: everything starts at ``init_prob`` except
        the seed voxel at ``seed_prob`` (the canonical 0.05 / 0.95).
    move_threshold:
        FOV moves toward a face whose max probability exceeds this.
    segment_threshold:
        Final object membership cut on the flooded mask.
    seed:
        Weight-initialization seed.
    """

    fov: tuple[int, int, int] = (9, 9, 9)
    filters: int = 8
    modules: int = 2
    kernel: int = 3
    init_prob: float = 0.05
    seed_prob: float = 0.95
    move_threshold: float = 0.9
    segment_threshold: float = 0.6
    seed: int = 0

    def __post_init__(self) -> None:
        if any(f % 2 == 0 or f < 1 for f in self.fov):
            raise ShapeError(f"fov must be odd and positive, got {self.fov}")
        if self.modules < 1 or self.filters < 1:
            raise ShapeError("modules and filters must be >= 1")

    @property
    def init_logit(self) -> float:
        return logit(self.init_prob)

    @property
    def seed_logit(self) -> float:
        return logit(self.seed_prob)


class FFNModel:
    """The residual 3-D CNN computing mask-logit updates.

    Input: ``(2, *fov)`` — image channel + current mask-logit channel.
    Output: ``(*fov,)`` logit deltas, to be **added** to the mask.
    """

    def __init__(self, config: FFNConfig | None = None):
        self.config = config or FFNConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.conv_in = Conv3D(2, cfg.filters, cfg.kernel, rng=rng)
        self.res_convs: list[tuple[Conv3D, Conv3D]] = [
            (
                Conv3D(cfg.filters, cfg.filters, cfg.kernel, rng=rng),
                Conv3D(cfg.filters, cfg.filters, cfg.kernel, rng=rng),
            )
            for _ in range(cfg.modules)
        ]
        self.head = Conv3D(cfg.filters, 1, 1, rng=rng)
        self._cache: dict | None = None
        self._momentum: dict[int, dict] = {}

    # -- bookkeeping -----------------------------------------------------------

    @property
    def layers(self) -> list[Conv3D]:
        out = [self.conv_in]
        for a, b in self.res_convs:
            out.extend((a, b))
        out.append(self.head)
        return out

    @property
    def n_params(self) -> int:
        return sum(layer.n_params for layer in self.layers)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters (what step 2 saves to the object store:
        "all parameters and configurations needed to do inference", §III-C).
        """
        state = {}
        for i, layer in enumerate(self.layers):
            state[f"layer{i}.w"] = layer.w.copy()
            state[f"layer{i}.b"] = layer.b.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            w, b = state[f"layer{i}.w"], state[f"layer{i}.b"]
            if w.shape != layer.w.shape:
                raise ShapeError(
                    f"layer{i}: checkpoint {w.shape} != model {layer.w.shape}"
                )
            layer.w[:] = w
            layer.b[:] = b

    # -- forward / backward ------------------------------------------------------

    def forward(self, image: np.ndarray, mask_logits: np.ndarray) -> np.ndarray:
        """One FFN step: updated mask logits for this FOV."""
        fov = self.config.fov
        if image.shape != fov or mask_logits.shape != fov:
            raise ShapeError(
                f"image/mask must be {fov}, got {image.shape}/{mask_logits.shape}"
            )
        x = np.stack([image, mask_logits]).astype(np.float32)
        cache: dict = {}
        a = self.conv_in.forward(x)
        cache["z_in"] = a
        a = np.maximum(a, 0.0)
        residual_caches = []
        for conv1, conv2 in self.res_convs:
            z1 = conv1.forward(a)
            a1 = np.maximum(z1, 0.0)
            z2 = conv2.forward(a1)
            s = a + z2
            out = np.maximum(s, 0.0)
            residual_caches.append((z1, s))
            a = out
        cache["res"] = residual_caches
        delta = self.head.forward(a)[0]  # (D,H,W)
        self._cache = cache
        return mask_logits + delta

    def forward_batch(
        self, images: np.ndarray, mask_logits: np.ndarray
    ) -> np.ndarray:
        """One FFN step over a whole batch of FOVs in stacked kernels.

        Parameters
        ----------
        images / mask_logits:
            ``(N, *fov)`` stacks.  Every conv in the residual stack runs
            as one batched ``tensordot``, so an ``N``-FOV wavefront costs
            one GEMM per layer instead of ``N``.

        Returns
        -------
        Updated mask logits, ``(N, *fov)``.  Row ``i`` is bit-for-bit
        equal to ``forward(images[i], mask_logits[i])``.
        """
        fov = self.config.fov
        if (
            images.ndim != 4
            or images.shape[1:] != fov
            or mask_logits.shape != images.shape
        ):
            raise ShapeError(
                f"image/mask stacks must be (N, *{fov}), got "
                f"{images.shape}/{mask_logits.shape}"
            )
        x = np.stack([images, mask_logits], axis=1).astype(np.float32)
        cache: dict = {"batched": True}
        a = self.conv_in.forward_batch(x)
        cache["z_in"] = a
        a = np.maximum(a, 0.0)
        residual_caches = []
        for conv1, conv2 in self.res_convs:
            z1 = conv1.forward_batch(a)
            a1 = np.maximum(z1, 0.0)
            z2 = conv2.forward_batch(a1)
            s = a + z2
            out = np.maximum(s, 0.0)
            residual_caches.append((z1, s))
            a = out
        cache["res"] = residual_caches
        delta = self.head.forward_batch(a)[:, 0]  # (N, D, H, W)
        self._cache = cache
        return mask_logits + delta

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backprop ``dL/d(new_logits)`` into parameter gradients.

        The mask-input path contributes identity gradient to ``new_logits``
        but carries no parameters, so only the delta path is followed.
        """
        if self._cache is None:
            raise ShapeError("backward() before forward()")
        if self._cache.get("batched"):
            raise ShapeError(
                "backward() after forward_batch(); use backward_batch()"
            )
        grad = self.head.backward(grad_logits[None].astype(np.float32))
        for (conv1, conv2), (z1, s) in zip(
            reversed(self.res_convs), reversed(self._cache["res"])
        ):
            grad = grad * (s > 0)
            grad_z2 = grad
            grad_a1 = conv2.backward(grad_z2)
            grad_z1 = grad_a1 * (z1 > 0)
            grad = grad + conv1.backward(grad_z1)
        grad = grad * (self._cache["z_in"] > 0)
        self.conv_in.backward(grad)
        self._cache = None

    def backward_batch(self, grad_logits: np.ndarray) -> None:
        """Batched backprop: ``grad_logits`` is ``(N, *fov)``.

        Parameter gradients are summed over the batch inside the conv
        kernels (one ``tensordot`` per layer) and accumulated, mirroring
        ``N`` sequential :meth:`backward` calls.
        """
        if self._cache is None:
            raise ShapeError("backward_batch() before forward_batch()")
        if not self._cache.get("batched"):
            raise ShapeError("backward_batch() after forward(); use backward()")
        grad = self.head.backward_batch(
            grad_logits[:, None].astype(np.float32)
        )
        for (conv1, conv2), (z1, s) in zip(
            reversed(self.res_convs), reversed(self._cache["res"])
        ):
            grad = grad * (s > 0)
            grad_a1 = conv2.backward_batch(grad)
            grad_z1 = grad_a1 * (z1 > 0)
            grad = grad + conv1.backward_batch(grad_z1)
        grad = grad * (self._cache["z_in"] > 0)
        self.conv_in.backward_batch(grad)
        self._cache = None

    def sgd_step(self, lr: float, momentum: float = 0.9) -> None:
        """Apply accumulated gradients to every layer."""
        for i, layer in enumerate(self.layers):
            buf = self._momentum.setdefault(i, {})
            layer.sgd_step(lr, momentum_buf=buf, momentum=momentum)

    # -- loss -----------------------------------------------------------------------

    @staticmethod
    def logistic_loss(
        logits: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Mean sigmoid cross-entropy and its gradient w.r.t. logits."""
        labels = labels.astype(np.float64)
        probs = sigmoid(logits)
        # Stable CE: max(z,0) - z*y + log(1+exp(-|z|))
        z = logits.astype(np.float64)
        loss = np.maximum(z, 0) - z * labels + np.log1p(np.exp(-np.abs(z)))
        grad = (probs - labels) / logits.size
        return float(loss.mean()), grad.astype(np.float32)

    @staticmethod
    def logistic_loss_batch(
        logits: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-item sigmoid cross-entropy over a ``(N, *fov)`` batch.

        Returns ``(losses, grad)`` where ``losses`` is ``(N,)`` of
        per-item mean losses and ``grad`` is the ``(N, *fov)`` gradient,
        each item normalized by its own voxel count — so item ``i``
        matches an independent :meth:`logistic_loss` call on it.
        """
        if logits.ndim < 2 or logits.shape != labels.shape:
            raise ShapeError(
                f"logits/labels must be matching (N, ...) stacks, got "
                f"{logits.shape}/{labels.shape}"
            )
        labels = labels.astype(np.float64)
        probs = sigmoid(logits)
        z = logits.astype(np.float64)
        loss = np.maximum(z, 0) - z * labels + np.log1p(np.exp(-np.abs(z)))
        axes = tuple(range(1, logits.ndim))
        item_size = int(np.prod(logits.shape[1:]))
        losses = loss.mean(axis=axes)
        grad = (probs - labels) / item_size
        return losses, grad.astype(np.float32)
