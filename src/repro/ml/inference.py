"""Flood-filling inference: seeded object growth and volume segmentation.

Implements the moving field-of-view loop of the FFN [20]: starting from a
seed voxel, the network repeatedly refines the mask inside its FOV and the
FOV relocates toward faces where the predicted object probability is high,
until no face is confident — at which point the flooded region is the
segmented object.

Also provides :func:`split_shards`, the exact sharding rule the paper's
step 3 uses ("The entire 246GB ... is evenly distributed across the 50
GPUs", §III-C), and :func:`segment_volume`, which seeds objects from IVT
peaks and floods them one by one.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.errors import ShapeError
from repro.ml.ffn import FFNModel, sigmoid

__all__ = ["flood_fill", "segment_volume", "split_shards", "ShardResult"]

#: Saturation range for mask logits during flood filling.
_LOGIT_CLIP = (-16.0, 16.0)


def _normalize(volume: np.ndarray) -> np.ndarray:
    """Z-score the image volume (the FFN sees standardized inputs)."""
    v = volume.astype(np.float32)
    std = v.std()
    if std == 0:
        return np.zeros_like(v)
    return (v - v.mean()) / std


def flood_fill(
    model: FFNModel,
    volume: np.ndarray,
    seed: tuple[int, int, int],
    max_steps: int = 256,
    normalized: bool = False,
) -> np.ndarray:
    """Flood one object from ``seed``; returns the probability volume.

    Parameters
    ----------
    model:
        A trained :class:`FFNModel`.
    volume:
        The image, shape ``(D, H, W)`` (e.g. an IVT time-stack).
    seed:
        Starting voxel (must be inside the volume).
    max_steps:
        FOV relocation budget.
    normalized:
        Set when ``volume`` is already z-scored (avoids re-normalizing
        per shard).

    Returns
    -------
    A float array of object probabilities, same shape as ``volume``
    (``init_prob`` everywhere the flood never looked).
    """
    cfg = model.config
    fov = np.array(cfg.fov)
    half = fov // 2
    vol_shape = np.array(volume.shape)
    if volume.ndim != 3:
        raise ShapeError(f"volume must be 3-D, got {volume.shape}")
    if np.any(vol_shape < fov):
        raise ShapeError(f"volume {volume.shape} smaller than FOV {cfg.fov}")
    seed_arr = np.array(seed)
    if np.any(seed_arr < 0) or np.any(seed_arr >= vol_shape):
        raise ShapeError(f"seed {seed} outside volume {volume.shape}")

    image = volume if normalized else _normalize(volume)
    mask = np.full(volume.shape, cfg.init_logit, dtype=np.float32)
    mask[tuple(seed_arr)] = cfg.seed_logit

    def clamp_center(center: np.ndarray) -> tuple:
        return tuple(np.clip(center, half, vol_shape - half - 1))

    visited: set[tuple] = set()
    queue: list[tuple] = [clamp_center(seed_arr)]
    steps = 0
    while queue and steps < max_steps:
        center = queue.pop(0)
        if center in visited:
            continue
        visited.add(center)
        steps += 1
        slices = tuple(
            slice(c - h, c + h + 1) for c, h in zip(center, half)
        )
        patch_logits = model.forward(image[slices], mask[slices])
        # Clip to keep repeated FOV visits from blowing up float32 (the
        # reference FFN also saturates its mask logits).
        np.clip(patch_logits, _LOGIT_CLIP[0], _LOGIT_CLIP[1], out=patch_logits)
        mask[slices] = patch_logits
        probs = sigmoid(patch_logits)
        # Examine the six FOV faces; move toward confident ones.
        for axis in range(3):
            for direction in (-1, 1):
                face = [slice(None)] * 3
                face[axis] = -1 if direction == 1 else 0
                if probs[tuple(face)].max() >= cfg.move_threshold:
                    nxt = np.array(center)
                    nxt[axis] += direction * half[axis]
                    nxt_t = clamp_center(nxt)
                    if nxt_t not in visited:
                        queue.append(nxt_t)
    return sigmoid(mask)


def segment_volume(
    model: FFNModel,
    volume: np.ndarray,
    max_objects: int = 32,
    seed_percentile: float = 97.0,
    max_steps_per_object: int = 256,
) -> np.ndarray:
    """Segment a whole volume into labelled objects.

    Seeds are taken greedily from the highest-intensity voxels above
    ``seed_percentile`` that no earlier object claimed; each seed is
    flooded with :func:`flood_fill` and thresholded at the model's
    ``segment_threshold``.

    Returns
    -------
    An int32 label volume: 0 = background, 1..N = object ids.
    """
    labels = np.zeros(volume.shape, dtype=np.int32)
    image = _normalize(volume)
    threshold_value = np.percentile(volume, seed_percentile)
    candidates = np.argwhere(volume >= threshold_value)
    # Brightest first: flood the most confident objects before leftovers.
    order = np.argsort(-volume[tuple(candidates.T)])
    candidates = candidates[order]
    next_id = 1
    for voxel in map(tuple, candidates):
        if next_id > max_objects:
            break
        if labels[voxel] != 0:
            continue
        probs = flood_fill(
            model,
            image,
            voxel,
            max_steps=max_steps_per_object,
            normalized=True,
        )
        obj = (probs >= model.config.segment_threshold) & (labels == 0)
        if obj.sum() < 2:  # reject degenerate single-voxel floods
            continue
        labels[obj] = next_id
        next_id += 1
    return labels


@dataclasses.dataclass
class ShardResult:
    """One worker's output in the distributed-inference fan-out."""

    shard_index: int
    t_slice: tuple[int, int]
    labels: np.ndarray
    n_objects: int
    voxels: int


def split_shards(n_timesteps: int, n_workers: int) -> list[tuple[int, int]]:
    """Evenly split a time axis into ``n_workers`` contiguous slices.

    This is the paper's step-3 distribution rule: the data volume "is
    evenly distributed across the 50 GPUs".  Shards differ in length by
    at most one timestep; empty shards are never produced (workers beyond
    the timestep count get nothing).
    """
    if n_workers < 1 or n_timesteps < 1:
        raise ShapeError("need at least one worker and one timestep")
    n_workers = min(n_workers, n_timesteps)
    bounds = np.linspace(0, n_timesteps, n_workers + 1).astype(int)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_workers)
        if bounds[i + 1] > bounds[i]
    ]
