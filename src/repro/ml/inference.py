"""Flood-filling inference: seeded object growth and volume segmentation.

Implements the moving field-of-view loop of the FFN [20]: starting from a
seed voxel, the network repeatedly refines the mask inside its FOV and the
FOV relocates toward faces where the predicted object probability is high,
until no face is confident — at which point the flooded region is the
segmented object.

Flood filling is *wavefront-synchronous*: FOV centers are processed one
whole frontier (BFS level) at a time.  Every patch in a frontier reads
the mask as it stood when the frontier started, and results are written
back in frontier order (deterministic last-writer-wins where FOVs
overlap).  That definition makes the loop batchable — the ``"batched"``
engine stacks the frontier's patches and runs **one** batched FFN forward
per frontier, while the ``"serial"`` engine runs the same frontier one
patch at a time and exists as the reference implementation the batched
path is tested against, bit for bit.

Also provides :func:`split_shards`, the exact sharding rule the paper's
step 3 uses ("The entire 246GB ... is evenly distributed across the 50
GPUs", §III-C), and :func:`segment_volume`, which seeds objects from IVT
peaks and floods them one by one.
"""

from __future__ import annotations

import dataclasses
import typing as _t
from collections import deque

import numpy as np

from repro.errors import MLError, ShapeError
from repro.ml.ffn import FFNModel, sigmoid

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.tracing.span import Span, Tracer

__all__ = [
    "flood_fill",
    "flood_fill_multi",
    "segment_volume",
    "split_shards",
    "ShardResult",
]

#: Saturation range for mask logits during flood filling.
_LOGIT_CLIP = (-16.0, 16.0)

#: Recognized flood-fill engines.
_ENGINES = ("batched", "serial")


def _normalize(volume: np.ndarray) -> np.ndarray:
    """Z-score the image volume (the FFN sees standardized inputs)."""
    v = volume.astype(np.float32)
    std = v.std()
    if std == 0:
        return np.zeros_like(v)
    return (v - v.mean()) / std


def _eval_frontier(
    model: FFNModel,
    img_patches: list[np.ndarray],
    mask_patches: list[np.ndarray],
    engine: str,
):
    """Evaluate one frontier's patches; returns ``(outs, face_max)``.

    ``outs[i]`` is patch *i*'s clipped mask logits; ``face_max[i, axis,
    side]`` is the max object probability on that patch's low (side=0) /
    high (side=1) face along ``axis``.  The ``"batched"`` engine stacks
    everything into one FFN forward; ``"serial"`` runs the same patches
    one at a time.  Per-patch results are bit-identical between engines
    (and regardless of what else shares the stack — the property the
    multi-seed wavefront relies on).
    """
    if engine == "batched":
        # One batched forward for the whole frontier; clip, sigmoid,
        # and the six face maxima all run stacked too (elementwise /
        # per-row reductions, so bit-identical to per-patch).
        stacked = model.forward_batch(
            np.stack(img_patches), np.stack(mask_patches)
        )
        # Clip to keep repeated FOV visits from blowing up float32
        # (the reference FFN also saturates its mask logits).
        np.clip(stacked, _LOGIT_CLIP[0], _LOGIT_CLIP[1], out=stacked)
        probs = sigmoid(stacked)
        # face_max[i, axis, j]: max prob on patch i's low (j=0) /
        # high (j=1) face along axis.
        face_max = np.stack(
            [
                np.stack(
                    [
                        probs[(slice(None),) * (1 + axis) + (0,)].max(
                            axis=(1, 2)
                        ),
                        probs[(slice(None),) * (1 + axis) + (-1,)].max(
                            axis=(1, 2)
                        ),
                    ],
                    axis=1,
                )
                for axis in range(3)
            ],
            axis=1,
        )
        return stacked, face_max
    # Reference path: same frontier, one unbatched forward each.
    # np.stack inside forward copies the inputs, so all reads complete
    # before the caller's write-back mutates any mask.
    outs = []
    face_rows = []
    for img, msk in zip(img_patches, mask_patches):
        patch_logits = model.forward(img, np.array(msk))
        np.clip(patch_logits, _LOGIT_CLIP[0], _LOGIT_CLIP[1],
                out=patch_logits)
        p = sigmoid(patch_logits)
        face_rows.append(
            [
                [
                    p[(slice(None),) * axis + (0,)].max(),
                    p[(slice(None),) * axis + (-1,)].max(),
                ]
                for axis in range(3)
            ]
        )
        outs.append(patch_logits)
    return outs, np.array(face_rows)


def flood_fill(
    model: FFNModel,
    volume: np.ndarray,
    seed: tuple[int, int, int],
    max_steps: int = 256,
    normalized: bool = False,
    engine: str = "batched",
    window_cache: dict | None = None,
    tracer: "Tracer | None" = None,
    span_parent: "Span | None" = None,
) -> np.ndarray:
    """Flood one object from ``seed``; returns the probability volume.

    Parameters
    ----------
    model:
        A trained :class:`FFNModel`.
    volume:
        The image, shape ``(D, H, W)`` (e.g. an IVT time-stack).
    seed:
        Starting voxel (must be inside the volume).
    max_steps:
        Total FOV evaluation budget (a frontier that would exceed it is
        truncated in order).
    normalized:
        Set when ``volume`` is already z-scored (avoids re-normalizing
        per shard).
    engine:
        ``"batched"`` (default) evaluates each frontier as one stacked
        FFN forward; ``"serial"`` evaluates the same frontier one FOV at
        a time.  Both produce bit-identical output.
    window_cache:
        Optional dict mapping FOV center -> contiguous z-scored image
        window.  Pass the same dict across :func:`flood_fill` calls on
        the same (normalized) image — e.g. successive seeds in
        :func:`segment_volume` — so revisited centers reuse their image
        window and only the mask channel is re-read.
    tracer, span_parent:
        Optional :class:`~repro.tracing.span.Tracer` (+ parent span):
        the flood emits one ``compute`` span for the whole fill and one
        per frontier.  The span *sequence* (names, categories, frontier
        sizes) is identical for both engines — only the flood span's
        ``engine`` attribute differs.

    Returns
    -------
    A float32 array of object probabilities, same shape as ``volume``
    (``init_prob`` everywhere the flood never looked).
    """
    if engine not in _ENGINES:
        raise MLError(f"unknown flood-fill engine {engine!r}; use {_ENGINES}")
    cfg = model.config
    fov = np.array(cfg.fov)
    half = fov // 2
    vol_shape = np.array(volume.shape)
    if volume.ndim != 3:
        raise ShapeError(f"volume must be 3-D, got {volume.shape}")
    if np.any(vol_shape < fov):
        raise ShapeError(f"volume {volume.shape} smaller than FOV {cfg.fov}")
    seed_arr = np.array(seed)
    if np.any(seed_arr < 0) or np.any(seed_arr >= vol_shape):
        raise ShapeError(f"seed {seed} outside volume {volume.shape}")

    image = volume if normalized else _normalize(volume)
    mask = np.full(volume.shape, cfg.init_logit, dtype=np.float32)
    mask[tuple(seed_arr)] = cfg.seed_logit
    if window_cache is None:
        window_cache = {}

    lo_bound = half
    hi_bound = vol_shape - half - 1

    def clamp_center(center: np.ndarray) -> tuple:
        return tuple(int(v) for v in np.clip(center, lo_bound, hi_bound))

    def image_window(center: tuple, slices: tuple) -> np.ndarray:
        win = window_cache.get(center)
        if win is None:
            win = np.ascontiguousarray(image[slices])
            window_cache[center] = win
        return win

    flood_span = None
    if tracer is not None:
        flood_span = tracer.start(
            "flood_fill",
            "compute",
            parent=span_parent,
            attributes={
                "seed": [int(v) for v in seed_arr],
                "engine": engine,
            },
        )

    visited: set[tuple] = set()
    pending: deque[tuple] = deque([clamp_center(seed_arr)])
    steps = 0
    frontier_index = 0
    while pending and steps < max_steps:
        # Drain the whole frontier: ordered, deduplicated, unvisited.
        frontier: list[tuple] = []
        seen: set[tuple] = set()
        while pending:
            center = pending.popleft()
            if center in visited or center in seen:
                continue
            seen.add(center)
            frontier.append(center)
        if steps + len(frontier) > max_steps:
            frontier = frontier[: max_steps - steps]
        if not frontier:
            break
        steps += len(frontier)
        visited.update(frontier)
        frontier_span = None
        if tracer is not None:
            frontier_span = tracer.start(
                f"frontier:{frontier_index}",
                "compute",
                parent=flood_span,
                attributes={"patches": len(frontier)},
            )
        frontier_index += 1

        slices_list = [
            tuple(slice(c - h, c + h + 1) for c, h in zip(center, half))
            for center in frontier
        ]
        # Snapshot reads: every patch sees the mask as of frontier start.
        img_patches = [
            image_window(center, slc)
            for center, slc in zip(frontier, slices_list)
        ]
        mask_patches = [mask[slc] for slc in slices_list]
        outs, face_max = _eval_frontier(model, img_patches, mask_patches, engine)
        # Deterministic last-writer-wins write-back in frontier order.
        for slc, patch_logits in zip(slices_list, outs):
            mask[slc] = patch_logits
        # Each patch's own output decides its FOV moves; next-frontier
        # order is frontier order x (axis, direction), so it is identical
        # for both engines.
        for i, center in enumerate(frontier):
            for axis in range(3):
                for direction in (-1, 1):
                    side = 0 if direction == -1 else 1
                    if face_max[i, axis, side] >= cfg.move_threshold:
                        nxt = np.array(center)
                        nxt[axis] += direction * half[axis]
                        nxt_t = clamp_center(nxt)
                        if nxt_t not in visited:
                            pending.append(nxt_t)
        if tracer is not None and frontier_span is not None:
            tracer.finish(frontier_span)
    if tracer is not None and flood_span is not None:
        tracer.finish(flood_span, attributes={"steps": steps})
    return sigmoid(mask)


def flood_fill_multi(
    model: FFNModel,
    volume: np.ndarray,
    seeds: _t.Sequence[tuple[int, int, int]],
    max_steps: int = 256,
    normalized: bool = False,
    engine: str = "batched",
    window_cache: dict | None = None,
    tracer: "Tracer | None" = None,
    span_parent: "Span | None" = None,
) -> list[np.ndarray]:
    """Flood several seeds as one merged wavefront; one result per seed.

    Each seed grows its **own** independent flood (own mask, own visited
    set, own step budget) — floods never read each other's state — but
    every wave stacks *all* live floods' frontier patches into a single
    ``forward_batch``, so the GEMM stays fat even when individual
    frontiers are thin.  Because :meth:`FFNModel.forward_batch` is
    per-item bit-identical to the unbatched forward, each flood's output
    is **bit-identical** to running :func:`flood_fill` on its seed alone
    — the parity suite asserts exactly that.

    Span schema: one ``compute`` span named ``flood_fill_multi`` for the
    batch, with one child ``compute`` span per merged wave
    (``wave:{i}``, attributes ``patches`` = stacked batch size and
    ``floods`` = live flood count).

    Returns a list of probability volumes in seed order (same contract
    as :func:`flood_fill`).
    """
    if engine not in _ENGINES:
        raise MLError(f"unknown flood-fill engine {engine!r}; use {_ENGINES}")
    cfg = model.config
    fov = np.array(cfg.fov)
    half = fov // 2
    vol_shape = np.array(volume.shape)
    if volume.ndim != 3:
        raise ShapeError(f"volume must be 3-D, got {volume.shape}")
    if np.any(vol_shape < fov):
        raise ShapeError(f"volume {volume.shape} smaller than FOV {cfg.fov}")
    seed_arrs = [np.array(seed) for seed in seeds]
    for seed, seed_arr in zip(seeds, seed_arrs):
        if np.any(seed_arr < 0) or np.any(seed_arr >= vol_shape):
            raise ShapeError(f"seed {tuple(seed)} outside volume {volume.shape}")
    if not seed_arrs:
        return []

    image = volume if normalized else _normalize(volume)
    if window_cache is None:
        window_cache = {}
    lo_bound = half
    hi_bound = vol_shape - half - 1

    def clamp_center(center: np.ndarray) -> tuple:
        return tuple(int(v) for v in np.clip(center, lo_bound, hi_bound))

    def image_window(center: tuple, slices: tuple) -> np.ndarray:
        win = window_cache.get(center)
        if win is None:
            win = np.ascontiguousarray(image[slices])
            window_cache[center] = win
        return win

    multi_span = None
    if tracer is not None:
        multi_span = tracer.start(
            "flood_fill_multi",
            "compute",
            parent=span_parent,
            attributes={
                "seeds": [[int(v) for v in s] for s in seed_arrs],
                "engine": engine,
            },
        )

    n = len(seed_arrs)
    masks = []
    for seed_arr in seed_arrs:
        mask = np.full(volume.shape, cfg.init_logit, dtype=np.float32)
        mask[tuple(seed_arr)] = cfg.seed_logit
        masks.append(mask)
    visited: list[set[tuple]] = [set() for _ in range(n)]
    pending: list[deque[tuple]] = [
        deque([clamp_center(seed_arr)]) for seed_arr in seed_arrs
    ]
    steps = [0] * n
    wave_index = 0
    while True:
        # Per flood: drain its whole frontier exactly as flood_fill does
        # (ordered, deduplicated, unvisited, truncated to its budget).
        waves: list[tuple[int, list[tuple], list[tuple]]] = []
        for fi in range(n):
            if not pending[fi] or steps[fi] >= max_steps:
                continue
            frontier: list[tuple] = []
            seen: set[tuple] = set()
            while pending[fi]:
                center = pending[fi].popleft()
                if center in visited[fi] or center in seen:
                    continue
                seen.add(center)
                frontier.append(center)
            if steps[fi] + len(frontier) > max_steps:
                frontier = frontier[: max_steps - steps[fi]]
            if not frontier:
                continue
            steps[fi] += len(frontier)
            visited[fi].update(frontier)
            slices_list = [
                tuple(slice(c - h, c + h + 1) for c, h in zip(center, half))
                for center in frontier
            ]
            waves.append((fi, frontier, slices_list))
        if not waves:
            break
        # Stack every live flood's frontier into ONE forward batch.
        img_patches: list[np.ndarray] = []
        mask_patches: list[np.ndarray] = []
        for fi, frontier, slices_list in waves:
            for center, slc in zip(frontier, slices_list):
                img_patches.append(image_window(center, slc))
                mask_patches.append(masks[fi][slc])
        wave_span = None
        if tracer is not None:
            wave_span = tracer.start(
                f"wave:{wave_index}",
                "compute",
                parent=multi_span,
                attributes={"patches": len(img_patches), "floods": len(waves)},
            )
        wave_index += 1
        outs, face_max = _eval_frontier(model, img_patches, mask_patches, engine)
        # Write back + expand per flood, each in its own frontier order —
        # identical to what flood_fill would do with that flood alone.
        offset = 0
        for fi, frontier, slices_list in waves:
            for j, slc in enumerate(slices_list):
                masks[fi][slc] = outs[offset + j]
            for j, center in enumerate(frontier):
                for axis in range(3):
                    for direction in (-1, 1):
                        side = 0 if direction == -1 else 1
                        if face_max[offset + j, axis, side] >= cfg.move_threshold:
                            nxt = np.array(center)
                            nxt[axis] += direction * half[axis]
                            nxt_t = clamp_center(nxt)
                            if nxt_t not in visited[fi]:
                                pending[fi].append(nxt_t)
            offset += len(frontier)
        if tracer is not None and wave_span is not None:
            tracer.finish(wave_span)
    if tracer is not None and multi_span is not None:
        tracer.finish(multi_span, attributes={"steps": steps})
    return [sigmoid(mask) for mask in masks]


def segment_volume(
    model: FFNModel,
    volume: np.ndarray,
    max_objects: int = 32,
    seed_percentile: float = 97.0,
    max_steps_per_object: int = 256,
    engine: str = "batched",
    seed_batch: int = 1,
    tracer: "Tracer | None" = None,
    span_parent: "Span | None" = None,
) -> np.ndarray:
    """Segment a whole volume into labelled objects.

    Seeds are taken greedily from the highest-intensity voxels above
    ``seed_percentile`` that no earlier object claimed; each seed is
    flooded with :func:`flood_fill` and thresholded at the model's
    ``segment_threshold``.  A z-scored image-window cache is shared
    across floods, so centers revisited by later objects skip the window
    extraction.

    ``seed_batch > 1`` floods up to that many seeds **speculatively** in
    one merged wavefront (:func:`flood_fill_multi`), keeping the FFN
    batch dimension fat when individual frontiers are thin.  Speculation
    is safe because a flood depends only on the image and its seed,
    never on ``labels``: results are *committed* strictly in the serial
    candidate order with the serial path's exact skip/reject rules, so a
    batch member whose seed gets claimed by an earlier commit is simply
    discarded — wasted compute, never a changed output.  To keep that
    waste low, gathering prefers seeds at least one FOV apart (brightness
    ranks cluster inside a single object); which seeds flood together
    changes only the timing, so the label volume is **bit-identical**
    for every ``seed_batch`` value.

    Returns
    -------
    An int32 label volume: 0 = background, 1..N = object ids.
    """
    if seed_batch < 1:
        raise ShapeError("seed_batch must be >= 1")
    labels = np.zeros(volume.shape, dtype=np.int32)
    segment_span = None
    if tracer is not None:
        attributes = {"shape": list(volume.shape), "engine": engine}
        if seed_batch > 1:
            attributes["seed_batch"] = seed_batch
        segment_span = tracer.start(
            "segment_volume",
            "compute",
            parent=span_parent,
            attributes=attributes,
        )
    image = _normalize(volume)
    threshold_value = np.percentile(volume, seed_percentile)
    candidates = np.argwhere(volume >= threshold_value)
    # Brightest first: flood the most confident objects before leftovers.
    order = np.argsort(-volume[tuple(candidates.T)])
    candidates = candidates[order]
    next_id = 1
    window_cache: dict = {}
    if seed_batch == 1:
        for voxel in map(tuple, candidates):
            if next_id > max_objects:
                break
            if labels[voxel] != 0:
                continue
            probs = flood_fill(
                model,
                image,
                voxel,
                max_steps=max_steps_per_object,
                normalized=True,
                engine=engine,
                window_cache=window_cache,
                tracer=tracer,
                span_parent=segment_span,
            )
            obj = (probs >= model.config.segment_threshold) & (labels == 0)
            if obj.sum() < 2:  # reject degenerate single-voxel floods
                continue
            labels[obj] = next_id
            next_id += 1
    else:
        voxels = [tuple(v) for v in candidates]
        n = len(voxels)
        # Gather-time diversity: candidate brightness ranks cluster
        # inside one object, and two seeds of the same object cost a
        # whole wasted flood (the first commit claims the second seed).
        # Batch members are therefore kept at least a FOV apart; a
        # skipped candidate stays in the queue and is usually claimed by
        # the time the cursor reaches it.
        min_sep = max(model.config.fov)
        flooded: dict[int, np.ndarray] = {}
        pos = 0
        while pos < n and next_id <= max_objects:
            if labels[voxels[pos]] != 0:  # claimed by an earlier commit
                flooded.pop(pos, None)
                pos += 1
                continue
            if pos not in flooded:
                # Flood the cursor seed plus up to seed_batch-1 diverse,
                # currently-unclaimed seeds ahead of it in one merged
                # wavefront.
                batch = [pos]
                for j in range(pos + 1, n):
                    if len(batch) == seed_batch:
                        break
                    if j in flooded or labels[voxels[j]] != 0:
                        continue
                    if any(
                        max(
                            abs(a - b)
                            for a, b in zip(voxels[j], voxels[k])
                        ) < min_sep
                        for k in batch
                    ):
                        continue
                    batch.append(j)
                probs_list = flood_fill_multi(
                    model,
                    image,
                    [voxels[j] for j in batch],
                    max_steps=max_steps_per_object,
                    normalized=True,
                    engine=engine,
                    window_cache=window_cache,
                    tracer=tracer,
                    span_parent=segment_span,
                )
                for j, probs in zip(batch, probs_list):
                    flooded[j] = probs
            # Commit the cursor's flood with the serial rules verbatim.
            probs = flooded.pop(pos)
            pos += 1
            obj = (probs >= model.config.segment_threshold) & (labels == 0)
            if obj.sum() < 2:  # reject degenerate single-voxel floods
                continue
            labels[obj] = next_id
            next_id += 1
    if tracer is not None and segment_span is not None:
        tracer.finish(segment_span, attributes={"objects": next_id - 1})
    return labels


@dataclasses.dataclass
class ShardResult:
    """One worker's output in the distributed-inference fan-out."""

    shard_index: int
    t_slice: tuple[int, int]
    labels: np.ndarray
    n_objects: int
    voxels: int


def split_shards(n_timesteps: int, n_workers: int) -> list[tuple[int, int]]:
    """Evenly split a time axis into ``n_workers`` contiguous slices.

    This is the paper's step-3 distribution rule: the data volume "is
    evenly distributed across the 50 GPUs".  Shards differ in length by
    at most one timestep; empty shards are never produced (workers beyond
    the timestep count get nothing).
    """
    if n_workers < 1 or n_timesteps < 1:
        raise ShapeError("need at least one worker and one timestep")
    n_workers = min(n_workers, n_timesteps)
    bounds = np.linspace(0, n_timesteps, n_workers + 1).astype(int)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(n_workers)
        if bounds[i + 1] > bounds[i]
    ]
