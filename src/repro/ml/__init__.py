"""Machine-learning substrate: the FFN, the CONNECT baseline, and timing.

The case study replaces "MATLAB functions that use a single CPU" (the
CONNECT algorithm) with "a new algorithm, Flood-Filling Network (FFN) ...
applied to NASA data using 50 NVIDIA 1080ti GPUs based on Tensorflow"
(§III).  Both sides are implemented here, for real, in NumPy:

- :mod:`repro.ml.conv3d` — vectorized 3-D convolution with full
  backpropagation (the compute kernel of the FFN), batched
  (``(N,C,D,H,W)``) and unbatched; the unbatched API is an ``N=1``
  wrapper so both paths share one numerical behaviour.
- :mod:`repro.ml.ffn` — a faithful small-scale flood-filling network:
  residual conv stack over a two-channel (image, current-mask) input,
  logit-delta output, and the moving field-of-view (FOV) inference loop
  of Januszewski et al. [20].
- :mod:`repro.ml.training` — patch-sampling SGD trainer.
- :mod:`repro.ml.inference` — whole-volume segmentation by seeded flood
  filling (wavefront-batched: one stacked FFN forward per BFS frontier,
  with a bit-identical serial reference engine), plus the shard splitter
  used by the 50-GPU fan-out.
- :mod:`repro.ml.connect` — the CONNECT baseline: threshold + union-find
  connected-component labelling in time and space, with object life-cycle
  statistics [21][22].
- :mod:`repro.ml.segmetrics` — voxel and object-level segmentation metrics.
- :mod:`repro.ml.perfmodel` — the 1080ti throughput model calibrated to
  the paper's reported step times (306 min training, 1133 min inference
  on 2.3e10 voxels / 50 GPUs), used when running at paper scale.
"""

from repro.ml.conv3d import (
    conv3d_forward,
    conv3d_backward,
    conv3d_forward_batch,
    conv3d_backward_batch,
    Conv3D,
)
from repro.ml.ffn import FFNConfig, FFNModel
from repro.ml.training import FFNTrainer, TrainingReport
from repro.ml.inference import (
    flood_fill,
    flood_fill_multi,
    segment_volume,
    split_shards,
    ShardResult,
)
from repro.ml.distributed_inference import (
    distributed_segment,
    stitch_labels,
    ShardSegmentation,
)
from repro.ml.shm_pool import SharedMemoryPool, ShardSpec, ShardReceipt
from repro.ml.connect import connect_segmentation, ConnectedObject, ConnectReport
from repro.ml.segmetrics import (
    voxel_metrics,
    object_level_metrics,
    adapted_rand_error,
    SegmentationScores,
)
from repro.ml.validation import (
    TemporalSplit,
    temporal_holdout,
    rolling_folds,
    Region,
    NAMED_REGIONS,
    regional_scores,
    evaluate_events,
)
from repro.ml.perfmodel import GPUPerfModel, GTX1080TI

__all__ = [
    "conv3d_forward",
    "conv3d_backward",
    "conv3d_forward_batch",
    "conv3d_backward_batch",
    "Conv3D",
    "FFNConfig",
    "FFNModel",
    "FFNTrainer",
    "TrainingReport",
    "flood_fill",
    "flood_fill_multi",
    "segment_volume",
    "split_shards",
    "ShardResult",
    "distributed_segment",
    "stitch_labels",
    "ShardSegmentation",
    "SharedMemoryPool",
    "ShardSpec",
    "ShardReceipt",
    "connect_segmentation",
    "ConnectedObject",
    "ConnectReport",
    "voxel_metrics",
    "object_level_metrics",
    "adapted_rand_error",
    "SegmentationScores",
    "TemporalSplit",
    "temporal_holdout",
    "rolling_folds",
    "Region",
    "NAMED_REGIONS",
    "regional_scores",
    "evaluate_events",
    "GPUPerfModel",
    "GTX1080TI",
]
