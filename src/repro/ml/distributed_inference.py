"""Distributed inference with cross-shard object stitching.

Paper §III-C shards the 112,249-timestep volume evenly across 50 GPUs.
But CONNECT-style objects are connected **in time** — an atmospheric
river alive at a shard boundary exists in two shards and would be
reported twice.  A correct distributed segmentation therefore needs:

1. **halo regions** — each shard is segmented with a few timesteps of
   overlap into its neighbor, so boundary objects are seen whole by at
   least one worker;
2. **label stitching** — after the fan-out, labels that touch across the
   boundary plane are merged with a union-find pass, and every object id
   is made globally unique.

This module implements that algorithm for real (NumPy + the disjoint-set
forest from :mod:`repro.ml.connect`) and is validated against the
monolithic segmentation in the test suite.

The fan-out itself runs either in-process (``max_workers=1``, the
default) or on a pool of worker processes (``max_workers>1``).  The
default pool is the zero-copy :class:`~repro.ml.shm_pool.
SharedMemoryPool` — long-lived workers over shared numpy buffers, so
per-task traffic is a handful of integers instead of pickled shard
slices (``pool_mode="pickle"`` keeps the old ``concurrent.futures``
path as the reference the shared-memory engine is benchmarked against).
Results are stitched in shard order regardless of completion order, so
the output is identical for every worker count and engine.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import typing as _t

import numpy as np

from repro.errors import ShapeError
from repro.ml.connect import _DisjointSet
from repro.ml.ffn import FFNModel
from repro.ml.inference import segment_volume, split_shards
from repro.ml.shm_pool import SharedMemoryPool, ShardSpec

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.tracing.span import Span, Tracer

__all__ = ["ShardSegmentation", "distributed_segment", "stitch_labels"]


@dataclasses.dataclass
class ShardSegmentation:
    """One worker's output: labels for its *owned* slice plus halo info.

    ``labels`` covers ``[t0, t1)`` (the owned region only); halo voxels
    are used during the shard's own segmentation and for stitching but
    are not part of the owned output.
    """

    shard_index: int
    t0: int
    t1: int
    labels: np.ndarray  # (t1 - t0, H, W) int32, local ids from 1
    n_objects: int


def _halo_bounds(
    n_timesteps: int, t0: int, t1: int, halo: int, fov_t: int
) -> tuple[int, int]:
    """Shard slice bounds with halo, widened to at least one FOV of time."""
    lo = max(0, t0 - halo)
    hi = min(n_timesteps, t1 + halo)
    while hi - lo < fov_t and (lo > 0 or hi < n_timesteps):
        lo = max(0, lo - 1)
        hi = min(n_timesteps, hi + 1)
    return lo, hi


def _compact_labels(owned: np.ndarray) -> tuple[np.ndarray, int]:
    """Renumber a label slab so its nonzero ids run 1..n (vectorized)."""
    ids = np.unique(owned)
    ids = ids[ids != 0]
    if len(ids) == 0:
        return np.zeros(owned.shape, dtype=np.int32), 0
    compact = (np.searchsorted(ids, owned) + 1).astype(np.int32)
    compact[owned == 0] = 0
    return compact, len(ids)


def _segment_shard_task(
    payload: tuple,
) -> ShardSegmentation:
    """Process-pool task: segment one shard slice.

    Module-level (picklable) and self-contained: it rebuilds the model
    from its pickled config + state, so it runs identically in-process
    and in a forked/spawned worker.
    """
    (config, state, sub, lo, t0, t1, shard_index, max_objects,
     seed_percentile, engine, seed_batch) = payload
    model = FFNModel(config)
    model.load_state_dict(state)
    local = segment_volume(
        model,
        sub,
        max_objects=max_objects,
        seed_percentile=seed_percentile,
        engine=engine,
        seed_batch=seed_batch,
    )
    owned = local[t0 - lo : t1 - lo]
    compact, n_objects = _compact_labels(owned)
    return ShardSegmentation(
        shard_index=shard_index,
        t0=t0,
        t1=t1,
        labels=compact,
        n_objects=n_objects,
    )


def stitch_labels(shards: _t.Sequence[ShardSegmentation]) -> np.ndarray:
    """Merge per-shard labels into one globally consistent volume.

    Objects touching across a shard boundary (same spatial pixel lit in
    the last owned timestep of shard *k* and the first of shard *k+1* —
    the 6-connectivity CONNECT uses) are unioned into one id.
    """
    if not shards:
        raise ShapeError("no shards to stitch")
    ordered = sorted(shards, key=lambda s: s.t0)
    for a, b in zip(ordered, ordered[1:]):
        if a.t1 != b.t0:
            raise ShapeError(
                f"shards [{a.t0},{a.t1}) and [{b.t0},{b.t1}) are not contiguous"
            )
        if a.labels.shape[1:] != b.labels.shape[1:]:
            raise ShapeError("shards disagree on spatial shape")

    # Global id space: offset each shard's local ids.
    offsets = []
    total = 0
    for shard in ordered:
        offsets.append(total)
        total += shard.n_objects
    dsu = _DisjointSet(total + 1)

    # Union across each boundary plane (vectorized pair extraction).
    for k in range(len(ordered) - 1):
        left, right = ordered[k], ordered[k + 1]
        if left.labels.shape[0] == 0 or right.labels.shape[0] == 0:
            continue
        plane_a = left.labels[-1]
        plane_b = right.labels[0]
        both = (plane_a > 0) & (plane_b > 0)
        a_ids = plane_a[both] + offsets[k]
        b_ids = plane_b[both] + offsets[k + 1]
        for a, b in zip(a_ids.tolist(), b_ids.tolist()):
            dsu.union(a, b)

    # Compact the merged ids.
    roots = {}
    next_id = 0
    out = np.zeros(
        (ordered[-1].t1 - ordered[0].t0,) + ordered[0].labels.shape[1:],
        dtype=np.int32,
    )
    base_t = ordered[0].t0
    for k, shard in enumerate(ordered):
        if shard.n_objects == 0:
            continue
        # Map this shard's local ids -> global compact ids in one take.
        local_ids = np.arange(1, shard.n_objects + 1)
        mapping = np.zeros(shard.n_objects + 1, dtype=np.int32)
        for local in local_ids:
            root = dsu.find(int(local + offsets[k]))
            if root not in roots:
                next_id += 1
                roots[root] = next_id
            mapping[local] = roots[root]
        out[shard.t0 - base_t : shard.t1 - base_t] = mapping[shard.labels]
    return out


def distributed_segment(
    model: FFNModel,
    volume: np.ndarray,
    n_workers: int,
    halo: int = 2,
    max_objects_per_shard: int = 16,
    seed_percentile: float = 97.0,
    max_workers: int | None = None,
    engine: str = "batched",
    seed_batch: int = 1,
    pool: SharedMemoryPool | None = None,
    pool_mode: str = "shm",
    tracer: "Tracer | None" = None,
    span_parent: "Span | None" = None,
) -> tuple[np.ndarray, list[ShardSegmentation]]:
    """Segment ``volume`` as the paper's GPU fan-out would: shard the
    time axis, segment each shard (with halo), stitch.

    Parameters
    ----------
    n_workers:
        Number of logical shards (the paper's "50 GPUs").
    max_workers:
        Degree of *actual* parallelism: ``None`` or ``1`` segments the
        shards in-process; ``>1`` fans them out across worker processes.
        Results are gathered in shard order, so the stitched output is
        identical for every ``max_workers`` value.
    engine:
        Flood-fill engine forwarded to :func:`segment_volume`.
    seed_batch:
        Multi-seed wavefront width forwarded to :func:`segment_volume`
        (output is bit-identical for every value).
    pool:
        An already-running :class:`~repro.ml.shm_pool.SharedMemoryPool`
        to reuse across calls (the caller keeps ownership; repeated
        inference amortizes worker spawn to zero).  When ``None`` and
        ``max_workers > 1``, an ephemeral pool is spun up and torn down
        inside the call.
    pool_mode:
        ``"shm"`` (default) fans out on the zero-copy shared-memory
        pool; ``"pickle"`` keeps the legacy ``concurrent.futures`` path
        that pickles each shard slice per task — the baseline the pool
        is benchmarked against.
    tracer, span_parent:
        Optional :class:`~repro.tracing.span.Tracer` (+ parent span):
        one ``compute`` span per shard plus a ``stitch`` span.  Spans are
        always emitted in the **parent** process in shard order (a tracer
        does not cross the process boundary), so the trace is identical
        for every ``max_workers`` value and pool mode.

    Returns ``(global_labels, shard_outputs)``.
    """
    if volume.ndim != 3:
        raise ShapeError(f"volume must be (T, H, W), got {volume.shape}")
    if halo < 0:
        raise ShapeError("halo must be >= 0")
    if max_workers is not None and max_workers < 1:
        raise ShapeError("max_workers must be >= 1")
    if pool_mode not in ("shm", "pickle"):
        raise ShapeError(f"unknown pool_mode {pool_mode!r}; use 'shm'/'pickle'")
    bounds = split_shards(volume.shape[0], n_workers)
    fov_t = model.config.fov[0]
    shard_geometry = []
    for i, (t0, t1) in enumerate(bounds):
        lo, hi = _halo_bounds(volume.shape[0], t0, t1, halo, fov_t)
        shard_geometry.append((i, lo, hi, t0, t1))
    fanout_span = None
    if tracer is not None:
        fanout_span = tracer.start(
            "distributed_segment",
            "compute",
            parent=span_parent,
            attributes={"shards": len(shard_geometry), "engine": engine},
        )

    def _shard_span(index: int, t0: int, t1: int) -> "Span | None":
        if tracer is None:
            return None
        return tracer.start(
            f"shard:{index}",
            "compute",
            parent=fanout_span,
            attributes={"t0": t0, "t1": t1},
        )

    use_pool = pool is not None or (
        max_workers is not None and max_workers > 1 and len(shard_geometry) > 1
    )
    # A caller-supplied pool always wins; pool_mode only picks the
    # engine for ephemeral fan-outs.
    use_pickle = use_pool and pool_mode == "pickle" and pool is None
    if not use_pool or use_pickle:
        config = model.config
        state = model.state_dict()
        payloads = []
        for i, lo, hi, t0, t1 in shard_geometry:
            # Ship a contiguous copy of just this shard's slice (what a
            # real worker would receive over the wire).
            sub = np.ascontiguousarray(volume[lo:hi])
            payloads.append(
                (config, state, sub, lo, t0, t1, i,
                 max_objects_per_shard, seed_percentile, engine, seed_batch)
            )
    if not use_pool:
        shard_outputs = []
        for p in payloads:
            span = _shard_span(p[6], p[4], p[5])
            result = _segment_shard_task(p)
            if tracer is not None and span is not None:
                tracer.finish(span, attributes={"objects": result.n_objects})
            shard_outputs.append(result)
    elif use_pickle:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(max_workers, len(payloads))
        ) as executor:
            futures = [
                executor.submit(_segment_shard_task, p) for p in payloads
            ]
            # Gather in submission (= shard) order: completion order is
            # nondeterministic, the stitch input must not be.
            shard_outputs = []
            for p, f in zip(payloads, futures):
                span = _shard_span(p[6], p[4], p[5])
                result = f.result()
                if tracer is not None and span is not None:
                    tracer.finish(span, attributes={"objects": result.n_objects})
                shard_outputs.append(result)
    else:
        specs = [
            ShardSpec(shard_index=i, lo=lo, hi=hi, t0=t0, t1=t1)
            for i, lo, hi, t0, t1 in shard_geometry
        ]
        owned_pool = pool
        if owned_pool is None:
            owned_pool = SharedMemoryPool(
                model, n_workers=min(max_workers, len(specs))
            )
        try:
            slabs, receipts = owned_pool.segment_shards(
                volume,
                specs,
                max_objects=max_objects_per_shard,
                seed_percentile=seed_percentile,
                engine=engine,
                seed_batch=seed_batch,
            )
        finally:
            if pool is None:
                owned_pool.close()
        # Results are complete; emit shard spans in shard order with the
        # exact start/finish interleaving of the in-process path, so the
        # span sequence stays identical across engines and worker counts.
        shard_outputs = []
        for spec, slab, receipt in zip(specs, slabs, receipts):
            span = _shard_span(spec.shard_index, spec.t0, spec.t1)
            result = ShardSegmentation(
                shard_index=spec.shard_index,
                t0=spec.t0,
                t1=spec.t1,
                labels=slab,
                n_objects=receipt.n_objects,
            )
            if tracer is not None and span is not None:
                tracer.finish(span, attributes={"objects": result.n_objects})
            shard_outputs.append(result)
    if tracer is None:
        stitched = stitch_labels(shard_outputs)
    else:
        with tracer.span(
            "stitch", "compute", parent=fanout_span,
            attributes={"shards": len(shard_outputs)},
        ):
            stitched = stitch_labels(shard_outputs)
        if fanout_span is not None:
            tracer.finish(fanout_span)
    return stitched, shard_outputs
