"""Validation methodologies: splits, regions, and event-level evaluation.

Paper §III-E.3: "When doing machine learning, it is important to separate
training and test data ... A Redis queue is being developed to store
model training/testing validation split methodologies and parameters
sets to be used in multi-model validation.  A full object segmentation
comparison is being actively worked on ... including developing new
validation data sets, looking at specific events in time and geographic
regions."

This module supplies those pieces:

- split methodologies over the time axis (temporal holdout, rolling
  k-fold) that guarantee train/test disjointness;
- geographic **regions** (lat/lon boxes on the MERRA grid) so metrics can
  be reported per region;
- **event-level** evaluation: CONNECT-style life-cycle objects in the
  truth are matched against predictions, giving per-event detection with
  time/region attribution.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.data.merra import GridSpec
from repro.errors import ShapeError, ValidationError
from repro.ml.connect import ConnectedObject, connect_segmentation
from repro.ml.segmetrics import SegmentationScores, voxel_metrics

__all__ = [
    "TemporalSplit",
    "temporal_holdout",
    "rolling_folds",
    "Region",
    "NAMED_REGIONS",
    "region_mask",
    "regional_scores",
    "EventMatch",
    "evaluate_events",
]


# ----------------------------------------------------------------- splits


@dataclasses.dataclass(frozen=True)
class TemporalSplit:
    """Disjoint train/validation windows over the time axis."""

    train: tuple[int, int]
    validation: tuple[int, int]

    def __post_init__(self) -> None:
        t0, t1 = self.train
        v0, v1 = self.validation
        if t0 >= t1 or v0 >= v1:
            raise ValidationError("windows must be non-empty (start < end)")
        if not (t1 <= v0 or v1 <= t0):
            raise ValidationError(
                f"train {self.train} and validation {self.validation} overlap"
            )

    @property
    def train_steps(self) -> int:
        return self.train[1] - self.train[0]

    @property
    def validation_steps(self) -> int:
        return self.validation[1] - self.validation[0]


def temporal_holdout(
    n_timesteps: int, validation_fraction: float = 0.25
) -> TemporalSplit:
    """The simplest methodology: the last fraction of time is held out
    (never train on the future you evaluate)."""
    if not 0.0 < validation_fraction < 1.0:
        raise ValidationError("validation_fraction must be in (0, 1)")
    cut = int(round(n_timesteps * (1.0 - validation_fraction)))
    cut = min(max(cut, 1), n_timesteps - 1)
    return TemporalSplit(train=(0, cut), validation=(cut, n_timesteps))


def rolling_folds(n_timesteps: int, n_folds: int) -> list[TemporalSplit]:
    """Rolling-origin k-fold: fold *k* trains on everything before its
    validation window — each fold respects causality."""
    if n_folds < 2:
        raise ValidationError("need at least 2 folds")
    if n_timesteps < 2 * n_folds:
        raise ValidationError(
            f"{n_timesteps} steps cannot support {n_folds} causal folds"
        )
    bounds = np.linspace(0, n_timesteps, n_folds + 1).astype(int)
    splits = []
    for k in range(1, n_folds):
        splits.append(
            TemporalSplit(
                train=(0, int(bounds[k])),
                validation=(int(bounds[k]), int(bounds[k + 1])),
            )
        )
    return splits


# ----------------------------------------------------------------- regions


@dataclasses.dataclass(frozen=True)
class Region:
    """A geographic lat/lon box."""

    name: str
    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def __post_init__(self) -> None:
        if self.lat_min >= self.lat_max:
            raise ValidationError(f"{self.name}: empty latitude range")

    def contains(self, lat: np.ndarray, lon: np.ndarray) -> np.ndarray:
        """Boolean mask for (lat, lon) arrays (handles date-line wrap)."""
        lat_ok = (lat >= self.lat_min) & (lat <= self.lat_max)
        if self.lon_min <= self.lon_max:
            lon_ok = (lon >= self.lon_min) & (lon <= self.lon_max)
        else:  # wraps the date line
            lon_ok = (lon >= self.lon_min) | (lon <= self.lon_max)
        return lat_ok & lon_ok


#: Atmospheric-river-relevant study regions (the CONNECT papers focus on
#: landfalling moisture transport in these basins).
NAMED_REGIONS: dict[str, Region] = {
    "north-pacific": Region("north-pacific", 20.0, 60.0, 140.0, -120.0),
    "north-atlantic": Region("north-atlantic", 20.0, 60.0, -80.0, 0.0),
    "southern-ocean": Region("southern-ocean", -65.0, -30.0, -180.0, 180.0),
    "tropics": Region("tropics", -20.0, 20.0, -180.0, 180.0),
}


def region_mask(region: Region, grid: GridSpec) -> np.ndarray:
    """2-D boolean mask of the region on a grid."""
    lat2d, lon2d = np.meshgrid(grid.lats, grid.lons, indexing="ij")
    return region.contains(lat2d, lon2d)


def regional_scores(
    predicted: np.ndarray,
    truth: np.ndarray,
    grid: GridSpec,
    regions: _t.Mapping[str, Region] | None = None,
) -> dict[str, SegmentationScores]:
    """Voxel metrics restricted to each region ("looking at ... specific
    geographic regions")."""
    if predicted.ndim != 3 or predicted.shape != truth.shape:
        raise ShapeError("predicted/truth must be equal 3-D volumes")
    if predicted.shape[1:] != (grid.nlat, grid.nlon):
        raise ShapeError(
            f"volume spatial shape {predicted.shape[1:]} != grid "
            f"({grid.nlat}, {grid.nlon})"
        )
    out: dict[str, SegmentationScores] = {}
    for name, region in (regions or NAMED_REGIONS).items():
        mask = region_mask(region, grid)
        if not mask.any():
            continue
        out[name] = voxel_metrics(
            predicted[:, mask], truth[:, mask]
        )
    return out


# ------------------------------------------------------------ event level


@dataclasses.dataclass
class EventMatch:
    """One ground-truth event and whether/how it was detected."""

    event: ConnectedObject
    detected: bool
    overlap_voxels: int
    regions: list[str]


def evaluate_events(
    predicted_labels: np.ndarray,
    truth_volume: np.ndarray,
    grid: GridSpec,
    truth_threshold: float | None = None,
    min_overlap_fraction: float = 0.25,
    regions: _t.Mapping[str, Region] | None = None,
) -> dict[str, object]:
    """Event-level validation: "looking at specific events in time".

    Ground-truth *events* are CONNECT life-cycle objects extracted from
    the truth volume; an event counts as detected when predictions cover
    at least ``min_overlap_fraction`` of its voxels.  Each event is
    attributed to the named regions its centroid falls in, enabling
    per-region detection rates.
    """
    report = connect_segmentation(
        truth_volume,
        threshold=truth_threshold,
        threshold_percentile=95.0,
        min_voxels=4,
    )
    region_map = {
        name: region_mask(region, grid)
        for name, region in (regions or NAMED_REGIONS).items()
    }
    matches: list[EventMatch] = []
    predicted_fg = predicted_labels > 0
    for event in report.objects:
        event_mask = report.labels == event.id
        overlap = int(np.count_nonzero(event_mask & predicted_fg))
        detected = overlap >= min_overlap_fraction * event.voxels
        _t_c, lat_idx, lon_idx = event.centroid_txy
        in_regions = [
            name
            for name, mask in region_map.items()
            if mask[int(round(lat_idx)) % grid.nlat,
                    int(round(lon_idx)) % grid.nlon]
        ]
        matches.append(
            EventMatch(
                event=event,
                detected=detected,
                overlap_voxels=overlap,
                regions=in_regions,
            )
        )
    detected_count = sum(m.detected for m in matches)
    per_region: dict[str, dict[str, float]] = {}
    for name in region_map:
        in_region = [m for m in matches if name in m.regions]
        if in_region:
            per_region[name] = {
                "events": float(len(in_region)),
                "detected": float(sum(m.detected for m in in_region)),
                "detection_rate": sum(m.detected for m in in_region)
                / len(in_region),
            }
    return {
        "events": len(matches),
        "detected": detected_count,
        "detection_rate": detected_count / len(matches) if matches else 0.0,
        "matches": matches,
        "per_region": per_region,
    }
