"""Vectorized 3-D convolution with backpropagation, batched and unbatched.

The FFN is "a 3D convolution neural network (3D CNN) ... able to separate
objects within a 3D volume of spatial data or images by using a deep
stack of 3D convolutions" (§III-B).  This module supplies that kernel:
``same``-padded, stride-1, cross-correlation convention (as every DL
framework uses), implemented with :func:`numpy.lib.stride_tricks.
sliding_window_view` + ``tensordot`` so the hot loop is one BLAS call —
views, not copies, per the HPC guide.

The batched entry points carry a leading batch axis ``N`` and contract
all ``N`` items in a single ``tensordot``; this is what makes wavefront
flood filling (:mod:`repro.ml.inference`) and minibatch training
(:mod:`repro.ml.training`) fast.  The unbatched functions are thin
``N=1`` wrappers, so both paths share one code path and one numerical
behaviour: per item, the contraction axes and their order are identical,
which keeps batched and unbatched results bit-for-bit equal (the parity
suite asserts this).

Shapes
------
Unbatched:

- input   ``x``: ``(C_in, D, H, W)``
- weights ``w``: ``(C_out, C_in, k, k, k)`` (odd ``k``)
- bias    ``b``: ``(C_out,)``
- output  ``y``: ``(C_out, D, H, W)``

Batched: ``x``: ``(N, C_in, D, H, W)`` and ``y``: ``(N, C_out, D, H, W)``.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ShapeError

__all__ = [
    "conv3d_forward",
    "conv3d_backward",
    "conv3d_forward_batch",
    "conv3d_backward_batch",
    "Conv3D",
]


def _check_shapes_batch(x: np.ndarray, w: np.ndarray, b: np.ndarray) -> int:
    if x.ndim != 5:
        raise ShapeError(f"x must be (N,C,D,H,W), got {x.shape}")
    if w.ndim != 5 or w.shape[2] != w.shape[3] or w.shape[3] != w.shape[4]:
        raise ShapeError(f"w must be (O,C,k,k,k) with cubic kernel, got {w.shape}")
    if w.shape[1] != x.shape[1]:
        raise ShapeError(
            f"channel mismatch: x has {x.shape[1]}, w expects {w.shape[1]}"
        )
    if b.shape != (w.shape[0],):
        raise ShapeError(f"b must be ({w.shape[0]},), got {b.shape}")
    k = w.shape[2]
    if k % 2 != 1:
        raise ShapeError(f"kernel size must be odd, got {k}")
    return k


def _windows_batch(x: np.ndarray, k: int) -> np.ndarray:
    """Same-padded sliding windows: ``(N, C, D, H, W, k, k, k)`` view."""
    pad = k // 2
    xp = np.pad(
        x,
        ((0, 0), (0, 0), (pad, pad), (pad, pad), (pad, pad)),
        mode="constant",
    )
    return sliding_window_view(xp, (k, k, k), axis=(2, 3, 4))


def conv3d_forward_batch(
    x: np.ndarray, w: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Same-padded stride-1 3-D convolution over a batch ``(N,C,D,H,W)``.

    The whole batch is one ``np.matmul`` call with the batch as the
    gufunc stack axis: numpy runs an *identically shaped* GEMM per item,
    so item ``i`` of the result is bit-for-bit the ``N=1`` result.  (A
    single fused GEMM over ``N * D * H * W`` columns would be marginally
    faster but is **not** per-item reproducible — BLAS edge-column
    kernels change with the total column count, and the flood-fill
    engines rely on exact batched/serial equivalence.)
    """
    k = _check_shapes_batch(x, w, b)
    n, c = x.shape[:2]
    spatial = x.shape[2:]
    win = _windows_batch(x, k)  # (N, C, D, H, W, k, k, k) view
    # (N, C*k^3, D*H*W): contraction axes (C, kz, ky, kx) ordered to
    # match the weight layout; the reshape materializes the im2col copy.
    win_mat = win.transpose(0, 1, 5, 6, 7, 2, 3, 4).reshape(
        n, c * k**3, -1
    )
    w_mat = w.reshape(w.shape[0], c * k**3)
    y = np.matmul(w_mat, win_mat)  # (N, O, D*H*W)
    y = y.reshape(n, w.shape[0], *spatial)
    return y + b[None, :, None, None, None]


def conv3d_forward(
    x: np.ndarray, w: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Same-padded stride-1 3-D convolution (cross-correlation).

    Thin ``N=1`` wrapper over :func:`conv3d_forward_batch`.
    """
    if x.ndim != 4:
        raise ShapeError(f"x must be (C,D,H,W), got {x.shape}")
    return conv3d_forward_batch(x[None], w, b)[0]


def conv3d_backward_batch(
    x: np.ndarray,
    w: np.ndarray,
    grad_y: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of a batched same-padded conv w.r.t. input, weights, bias.

    Parameters
    ----------
    x:
        The forward input ``(N, C, D, H, W)``.
    w:
        The forward weights ``(O, C, k, k, k)``.
    grad_y:
        Upstream gradient ``(N, O, D, H, W)``.

    Returns
    -------
    ``(grad_x, grad_w, grad_b)`` where ``grad_x`` has the batch axis and
    ``grad_w`` / ``grad_b`` are summed over the batch (minibatch
    accumulation happens inside the ``tensordot``, not in Python).
    """
    k = w.shape[2]
    if grad_y.shape != (x.shape[0], w.shape[0]) + x.shape[2:]:
        raise ShapeError(
            f"grad_y must be {(x.shape[0], w.shape[0]) + x.shape[2:]}, "
            f"got {grad_y.shape}"
        )
    # dL/dw[o,c,a,b,g] = sum_{n,voxels} grad_y[n,o,...] * window(x)[n,c,...,a,b,g]
    win = _windows_batch(x, k)
    grad_w = np.tensordot(grad_y, win, axes=([0, 2, 3, 4], [0, 2, 3, 4]))
    # tensordot leaves axes (O, C, k, k, k) already in the right order.
    grad_b = grad_y.sum(axis=(0, 2, 3, 4))
    # dL/dx is a full correlation of grad_y with spatially flipped kernels,
    # with in/out channels swapped — i.e. another same-padded conv.
    w_flip = w[:, :, ::-1, ::-1, ::-1].transpose(1, 0, 2, 3, 4)
    grad_x = conv3d_forward_batch(
        grad_y, np.ascontiguousarray(w_flip), np.zeros(w.shape[1], dtype=w.dtype)
    )
    return grad_x, grad_w, grad_b


def conv3d_backward(
    x: np.ndarray,
    w: np.ndarray,
    grad_y: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gradients of a same-padded conv w.r.t. input, weights, bias.

    Thin ``N=1`` wrapper over :func:`conv3d_backward_batch`.

    Parameters
    ----------
    x:
        The forward input ``(C, D, H, W)``.
    w:
        The forward weights ``(O, C, k, k, k)``.
    grad_y:
        Upstream gradient ``(O, D, H, W)``.

    Returns
    -------
    (grad_x, grad_w, grad_b)
    """
    if grad_y.shape != (w.shape[0],) + x.shape[1:]:
        raise ShapeError(
            f"grad_y must be {(w.shape[0],) + x.shape[1:]}, got {grad_y.shape}"
        )
    grad_x, grad_w, grad_b = conv3d_backward_batch(x[None], w, grad_y[None])
    return grad_x[0], grad_w, grad_b


class Conv3D:
    """A learnable conv layer: parameters + forward/backward + SGD step."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        rng: np.random.Generator | None = None,
        dtype: str = "float32",
    ):
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel**3
        scale = np.sqrt(2.0 / fan_in)  # He init for ReLU stacks
        self.w = rng.normal(0.0, scale, size=(out_channels, in_channels,
                                              kernel, kernel, kernel)).astype(dtype)
        self.b = np.zeros(out_channels, dtype=dtype)
        self._x: np.ndarray | None = None
        self.grad_w = np.zeros_like(self.w)
        self.grad_b = np.zeros_like(self.b)

    @property
    def n_params(self) -> int:
        return self.w.size + self.b.size

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return conv3d_forward(x, self.w, self.b)

    def forward_batch(self, x: np.ndarray) -> np.ndarray:
        """Batched forward over ``(N, C, D, H, W)``."""
        self._x = x
        return conv3d_forward_batch(x, self.w, self.b)

    def backward(self, grad_y: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ShapeError("backward() before forward()")
        if self._x.ndim != 4:
            raise ShapeError("backward() after forward_batch(); use backward_batch()")
        grad_x, gw, gb = conv3d_backward(self._x, self.w, grad_y)
        # Accumulate (zeroed by the optimizer step).
        self.grad_w += gw
        self.grad_b += gb
        return grad_x

    def backward_batch(self, grad_y: np.ndarray) -> np.ndarray:
        """Batched backward; accumulates batch-summed parameter grads."""
        if self._x is None:
            raise ShapeError("backward_batch() before forward_batch()")
        if self._x.ndim != 5:
            raise ShapeError("backward_batch() after forward(); use backward()")
        grad_x, gw, gb = conv3d_backward_batch(self._x, self.w, grad_y)
        self.grad_w += gw
        self.grad_b += gb
        return grad_x

    def sgd_step(self, lr: float, momentum_buf: dict | None = None,
                 momentum: float = 0.9) -> None:
        """In-place SGD (with optional momentum) and gradient reset."""
        if momentum_buf is not None:
            vw = momentum_buf.setdefault("w", np.zeros_like(self.w))
            vb = momentum_buf.setdefault("b", np.zeros_like(self.b))
            vw *= momentum
            vw += self.grad_w
            vb *= momentum
            vb += self.grad_b
            self.w -= lr * vw
            self.b -= lr * vb
        else:
            self.w -= lr * self.grad_w
            self.b -= lr * self.grad_b
        self.grad_w[:] = 0
        self.grad_b[:] = 0
