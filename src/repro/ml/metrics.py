"""Deprecated alias for :mod:`repro.ml.segmetrics`.

.. deprecated::
    The segmentation-metric implementations moved to
    :mod:`repro.ml.segmetrics`; the unified observability facade
    re-exports them from :mod:`repro.obs.metrics`.  This module keeps
    the old import path working with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import importlib
import warnings

__all__ = [
    "SegmentationScores",
    "voxel_metrics",
    "object_level_metrics",
    "adapted_rand_error",
]


def __getattr__(name: str):  # PEP 562 deprecation shim
    impl = importlib.import_module("repro.ml.segmetrics")
    if hasattr(impl, name):
        warnings.warn(
            f"repro.ml.metrics is deprecated; import {name} from "
            "repro.ml.segmetrics (or repro.obs.metrics)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(impl, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    impl = importlib.import_module("repro.ml.segmetrics")
    return sorted(set(globals()) | set(dir(impl)))
