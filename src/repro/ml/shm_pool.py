"""Persistent shared-memory worker pool for the shard fan-out.

The first process-pool fan-out (``concurrent.futures``) *lost* to the
in-process shard loop on the committed trajectory (BENCH_2026-08-06:
0.86x) because every task pickled its whole shard slice out and its
whole label slab back, plus the model state — per task, every time.
This module is the standard fix from container-HPC practice: **spawn
the workers once, move the data never.**

- The input volume lives in one ``multiprocessing.shared_memory``
  segment; workers map it and slice **zero-copy views** of their shard
  (halo included).
- The model config + state cross the process boundary exactly once, at
  worker startup, not per task.
- Results are written **in place** into a shared int32 label buffer;
  the only per-task traffic is a few-int task descriptor and a
  (shard_index, n_objects) receipt.
- Workers are long-lived: a pool amortizes its spawn cost over every
  ``segment_shards`` call of its lifetime, which is what makes it a
  drop-in engine for repeated inference (parameter sweeps, benchmark
  repeats, many volumes).

Determinism contract: tasks are *submitted* in shard order and results
are *committed* in shard order regardless of completion order, so the
stitched output is bit-identical to the in-process loop for every
worker count — the parity suite holds the pool to that.

Fault contract: a worker that dies mid-shard (OOM kill, segfault) is
detected by the dispatcher, its in-flight shard is **retried on a live
worker**, and the dead process is never handed work again.  The pool
raises :class:`~repro.errors.PoolError` only when no live worker
remains.  ``close()`` is leak-free: every worker is joined (terminated
if unresponsive) and every shared-memory segment is closed and
unlinked — the test suite asserts the ``resource_tracker`` ledger
balances.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import queue as _queue
import typing as _t
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import PoolError, ShapeError
from repro.ml.ffn import FFNModel

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.ml.ffn import FFNConfig

__all__ = ["SharedMemoryPool", "ShardSpec", "ShardReceipt"]

#: Dispatcher poll interval while waiting on the result queue (seconds).
#: Only bounds crash-detection latency; results arrive event-driven.
_POLL_S = 0.05


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One shard task: where to read, what to own, where to write.

    All bounds index the *time axis* of the shared volume.  The worker
    segments ``volume[lo:hi]`` (the halo-widened slice), keeps the
    ``[t0, t1)`` owned region, compacts its labels to 1..n, and writes
    them into ``labels[t0:t1]`` of the shared output buffer.
    """

    shard_index: int
    lo: int
    hi: int
    t0: int
    t1: int


@dataclasses.dataclass
class ShardReceipt:
    """What comes back over the wire per shard: a few integers."""

    shard_index: int
    n_objects: int
    worker: int
    retried: bool = False


@dataclasses.dataclass(frozen=True)
class _SegmentRef:
    """Enough to rebuild a numpy view onto a shared segment anywhere."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    def view(self, shm: shared_memory.SharedMemory) -> np.ndarray:
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=shm.buf)


def _tracker_running() -> bool:
    """Whether this process already has a live resource tracker."""
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    return tracker is not None and getattr(tracker, "_fd", None) is not None


def _attach(
    cache: dict[str, shared_memory.SharedMemory],
    ref: _SegmentRef,
    own_tracker: bool,
) -> np.ndarray:
    shm = cache.get(ref.name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=ref.name)
        # Python < 3.13 registers even *attached* segments with the
        # resource_tracker as if this process owned them; the parent is
        # the sole owner (it created them and unlinks them in close()).
        # Forked workers share the parent's tracker (the pool starts it
        # pre-fork), where the duplicate registration is an idempotent
        # no-op — but a spawned worker gets its own tracker, which would
        # report (and try to clean) phantom leaks at exit, so there the
        # duplicate claim is dropped immediately.
        if own_tracker:
            try:
                resource_tracker.unregister(
                    getattr(shm, "_name", "/" + ref.name), "shared_memory"
                )
            except Exception:  # pragma: no cover - tracker API drift
                pass
        cache[ref.name] = shm
    return ref.view(shm)


def _compact_labels(owned: np.ndarray) -> tuple[np.ndarray, int]:
    """Renumber a label slab so its nonzero ids run 1..n (vectorized)."""
    ids = np.unique(owned)
    ids = ids[ids != 0]
    if len(ids) == 0:
        return np.zeros(owned.shape, dtype=np.int32), 0
    compact = (np.searchsorted(ids, owned) + 1).astype(np.int32)
    compact[owned == 0] = 0
    return compact, len(ids)


def _worker_main(
    worker_index: int,
    config: "FFNConfig",
    state: dict,
    task_queue,
    result_queue,
) -> None:
    """Long-lived worker loop: attach, segment, write in place, repeat.

    Module-level so it pickles under every start method.  The model is
    rebuilt exactly once; shared segments are attached on first use and
    cached by name for the worker's lifetime.
    """
    from repro.ml.inference import segment_volume  # local: import cycle

    model = FFNModel(config)
    model.load_state_dict(state)
    attached: dict[str, shared_memory.SharedMemory] = {}
    # Decided once, at startup: a worker that did NOT inherit the
    # parent's tracker will lazily start its own on first attach.
    own_tracker = not _tracker_running()
    try:
        while True:
            message = task_queue.get()
            if message is None:  # shutdown sentinel
                break
            kind = message[0]
            if kind == "crash":  # test hook: simulate a hard worker death
                os._exit(17)
            (_, generation, volume_ref, labels_ref, spec, options) = message
            try:
                volume = _attach(attached, volume_ref, own_tracker)
                labels_out = _attach(attached, labels_ref, own_tracker)
                sub = volume[spec.lo : spec.hi]  # zero-copy view
                local = segment_volume(
                    model,
                    sub,
                    max_objects=options["max_objects"],
                    seed_percentile=options["seed_percentile"],
                    engine=options["engine"],
                    seed_batch=options["seed_batch"],
                )
                owned = local[spec.t0 - spec.lo : spec.t1 - spec.lo]
                compact, n_objects = _compact_labels(owned)
                labels_out[spec.t0 : spec.t1] = compact  # in-place result
                result_queue.put(
                    ("ok", generation, spec.shard_index, n_objects, worker_index)
                )
            except Exception as exc:  # noqa: BLE001 - forwarded to parent
                result_queue.put(
                    ("err", generation, spec.shard_index, repr(exc), worker_index)
                )
    finally:
        for shm in attached.values():
            shm.close()


class SharedMemoryPool:
    """Long-lived shard-segmentation workers over shared numpy buffers.

    Parameters
    ----------
    model:
        The trained :class:`~repro.ml.ffn.FFNModel`; its config and
        state cross to each worker once, at spawn.
    n_workers:
        Worker process count (>= 1).
    start_method:
        ``multiprocessing`` start method; default ``"fork"`` where
        available (fast spawn, which the bench amortizes anyway),
        ``"spawn"`` otherwise.

    Use as a context manager or call :meth:`close` — the pool owns OS
    resources (processes, ``/dev/shm`` segments) that must be released
    deliberately, not by garbage collection.
    """

    def __init__(
        self,
        model: FFNModel,
        n_workers: int,
        start_method: str | None = None,
    ):
        if n_workers < 1:
            raise ShapeError("SharedMemoryPool needs n_workers >= 1")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.n_workers = n_workers
        self.start_method = start_method
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._seq = 0
        self._closed = False
        #: receipts of tasks that had to move off a dead worker
        self.retried: list[ShardReceipt] = []
        #: workers that died and were retired from dispatch
        self.dead_workers: list[int] = []
        # A full Queue (not SimpleQueue): the dispatcher needs a timed
        # ``get`` so it can interleave worker-liveness checks — a dead
        # worker never wakes the queue.
        self._result_queue = self._ctx.Queue()
        self._task_queues = [self._ctx.SimpleQueue() for _ in range(n_workers)]
        self._generation = 0
        # Start the resource tracker BEFORE forking, so forked workers
        # inherit it and their attach-time registrations are idempotent
        # no-ops on the shared ledger (see _attach).
        resource_tracker.ensure_running()
        self._procs = []
        config = model.config
        state = model.state_dict()
        for index in range(n_workers):
            proc = self._ctx.Process(
                target=_worker_main,
                args=(index, config, state,
                      self._task_queues[index], self._result_queue),
                name=f"repro-shm-worker-{index}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    # -- shared segments ----------------------------------------------------

    def _new_segment(self, nbytes: int) -> shared_memory.SharedMemory:
        """Create (and track) a fresh named segment."""
        while True:
            name = f"repro-pool-{os.getpid()}-{id(self):x}-{self._seq}"
            self._seq += 1
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, nbytes)
                )
            except FileExistsError:  # stale segment from a crashed run
                continue
            self._segments[name] = shm
            return shm

    def _share_array(self, array: np.ndarray) -> _SegmentRef:
        """Copy ``array`` into a shared segment once; return its ref."""
        shm = self._new_segment(array.nbytes)
        ref = _SegmentRef(shm.name, tuple(array.shape), str(array.dtype))
        ref.view(shm)[...] = array
        return ref

    def _release_segment(self, name: str) -> None:
        shm = self._segments.pop(name, None)
        if shm is not None:
            shm.close()
            shm.unlink()

    # -- dispatch -----------------------------------------------------------

    def live_workers(self) -> list[int]:
        return [
            i
            for i, proc in enumerate(self._procs)
            if proc.is_alive() and i not in self.dead_workers
        ]

    def inject_crash(self, worker_index: int) -> None:
        """Test hook: make one worker die hard on its next dequeue."""
        self._task_queues[worker_index].put(("crash",))

    def segment_shards(
        self,
        volume: np.ndarray,
        specs: _t.Sequence[ShardSpec],
        *,
        max_objects: int = 16,
        seed_percentile: float = 97.0,
        engine: str = "batched",
        seed_batch: int = 1,
    ) -> tuple[list[np.ndarray], list[ShardReceipt]]:
        """Segment every shard on the pool; returns owned label slabs.

        The volume is copied into shared memory **once**; each task then
        moves only its :class:`ShardSpec`.  Slabs come back as ordinary
        arrays copied out of the shared output buffer in shard order, so
        callers (and the stitcher) never see the buffer being reused.
        """
        if self._closed:
            raise PoolError("pool is closed")
        if volume.ndim != 3:
            raise ShapeError(f"volume must be (T, H, W), got {volume.shape}")
        if not specs:
            return [], []
        # Share in the caller's dtype: segment_volume seeds from a
        # percentile of the *raw* values, so a float64 -> float32 cast
        # here could move the threshold and break bit-parity.
        volume_ref = self._share_array(np.ascontiguousarray(volume))
        labels_shm = self._new_segment(int(np.prod(volume.shape)) * 4)
        labels_ref = _SegmentRef(
            labels_shm.name, tuple(volume.shape), "int32"
        )
        labels_ref.view(labels_shm)[...] = 0
        options = {
            "max_objects": max_objects,
            "seed_percentile": seed_percentile,
            "engine": engine,
            "seed_batch": seed_batch,
        }
        try:
            receipts = self._run_tasks(volume_ref, labels_ref, specs, options)
            labels = labels_ref.view(labels_shm)
            slabs = [
                np.array(labels[spec.t0 : spec.t1], dtype=np.int32)
                for spec in specs
            ]
            return slabs, receipts
        finally:
            self._release_segment(volume_ref.name)
            self._release_segment(labels_ref.name)

    def _run_tasks(
        self,
        volume_ref: _SegmentRef,
        labels_ref: _SegmentRef,
        specs: _t.Sequence[ShardSpec],
        options: dict,
    ) -> list[ShardReceipt]:
        """Feed tasks to live workers; retry shards off dead ones.

        Dynamic dispatch: each live worker holds at most one in-flight
        shard and is fed the next backlog entry as soon as its result
        lands (natural load balancing — a worker with a heavy shard is
        simply not fed again until it finishes).  Results are tagged
        with a per-call generation so a straggler finishing after the
        call returns (possible only in crash-retry races, where the
        duplicate writes identical bytes) can never be mistaken for a
        result of a later call.
        """
        self._generation += 1
        generation = self._generation
        backlog: list[tuple[ShardSpec, bool]] = [
            (spec, False) for spec in specs
        ]
        backlog.reverse()  # pop() serves tasks in shard-submission order
        inflight: dict[int, tuple[ShardSpec, bool]] = {}
        receipts: dict[int, ShardReceipt] = {}

        def feed() -> None:
            for worker in self.live_workers():
                if worker in inflight or not backlog:
                    continue
                spec, retried = backlog.pop()
                inflight[worker] = (spec, retried)
                self._task_queues[worker].put(
                    ("segment", generation, volume_ref, labels_ref, spec,
                     options)
                )

        feed()
        while len(receipts) < len(specs):
            try:
                message = self._result_queue.get(timeout=_POLL_S)
            except _queue.Empty:
                self._reap_dead(inflight, backlog, receipts)
                feed()
                continue
            except (EOFError, OSError) as exc:  # pragma: no cover - teardown
                raise PoolError(f"pool result channel broke: {exc!r}") from exc
            kind, msg_generation, shard_index, payload, worker = message
            if msg_generation != generation:  # straggler from a prior call
                continue
            entry = inflight.pop(worker, None)
            if kind == "err":
                raise PoolError(
                    f"shard {shard_index} failed on worker {worker}: {payload}"
                )
            if shard_index in receipts:
                # Crash-retry race: the "dead" worker had already sent
                # its result.  The duplicate run wrote identical bytes;
                # drop the spare receipt and scrub any queued duplicate.
                backlog[:] = [
                    e for e in backlog if e[0].shard_index != shard_index
                ]
            else:
                retried = bool(entry[1]) if entry is not None else False
                receipt = ShardReceipt(
                    shard_index=shard_index,
                    n_objects=int(payload),
                    worker=worker,
                    retried=retried,
                )
                receipts[shard_index] = receipt
                if retried:
                    self.retried.append(receipt)
            self._reap_dead(inflight, backlog, receipts)
            feed()
        return [receipts[spec.shard_index] for spec in specs]

    def _reap_dead(
        self,
        inflight: dict[int, tuple["ShardSpec", bool]],
        backlog: list,
        receipts: dict[int, ShardReceipt],
    ) -> None:
        """Retire dead workers; put their unfinished shards back on the
        backlog (flagged as retries)."""
        for worker, proc in enumerate(self._procs):
            if worker in self.dead_workers or proc.is_alive():
                continue
            self.dead_workers.append(worker)
            entry = inflight.pop(worker, None)
            if entry is not None:
                spec, _retried = entry
                if spec.shard_index not in receipts:
                    backlog.append((spec, True))
            if not self.live_workers():
                raise PoolError(
                    f"all {self.n_workers} pool workers are dead "
                    f"(last exit code {proc.exitcode})"
                )

    # -- lifecycle ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, join_timeout_s: float = 5.0) -> None:
        """Shut the pool down leak-free (idempotent).

        Sends each live worker the shutdown sentinel, joins it
        (terminating on timeout), and closes **and unlinks** every
        shared segment the pool still owns, so nothing survives in
        ``/dev/shm`` and the ``resource_tracker`` ledger balances.
        """
        if self._closed:
            return
        self._closed = True
        for worker, proc in enumerate(self._procs):
            if proc.is_alive():
                try:
                    self._task_queues[worker].put(None)
                except (OSError, ValueError):  # pragma: no cover - defensive
                    pass
        for proc in self._procs:
            proc.join(timeout=join_timeout_s)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=join_timeout_s)
        self._result_queue.close()
        self._result_queue.join_thread()
        for name in list(self._segments):
            self._release_segment(name)

    def __enter__(self) -> "SharedMemoryPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        state = "closed" if self._closed else f"{len(self.live_workers())} live"
        return f"<SharedMemoryPool {self.n_workers} workers ({state})>"
