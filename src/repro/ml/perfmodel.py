"""GPU performance model calibrated to the paper's reported times.

We have no 1080ti cluster, so paper-scale runs use a throughput model
(DESIGN.md substitution table).  Calibration anchors, all from §III:

- **Training** (step 2): 306 minutes total on one 1080ti for a
  576×361×240-voxel volume (~4.99e7 voxels), of which the data-prep
  phase (building partition volumes and coordinates, the purple band of
  Figure 5) takes roughly the first fifth of the job.
- **Inference** (step 3): 2.3e10 voxels over 50 GPUs in 1133 minutes
  → an effective per-GPU flood-fill throughput of ≈6.8k voxels/s (each
  voxel is visited by many overlapping FOVs, hence far below raw FLOPS).
- **Data prep throughput** (step 1 merging / protobuf generation) uses a
  CPU byte rate, not the GPU.

Workers draw a small deterministic speed factor (±5%) from their name, so
fan-outs exhibit the straggler behaviour visible in the paper's Grafana
plots without breaking reproducibility.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import MLError
from repro.sim.rng import derive_seed

__all__ = ["GPUPerfModel", "GTX1080TI", "PAPER_TRAIN_VOXELS", "PAPER_INFER_VOXELS"]

#: The paper's training volume: 576 x 361 x 240 voxels (§III-B).
PAPER_TRAIN_VOXELS = 576 * 361 * 240
#: The paper's inference volume: 576 x 361 x 112,249 ≈ 2.3e10 voxels (§III-C).
PAPER_INFER_VOXELS = 576 * 361 * 112_249

_PAPER_TRAIN_MINUTES = 306.0
_PAPER_INFER_MINUTES = 1133.0
_PAPER_INFER_GPUS = 50
#: Fraction of the 306-minute training job spent in pre-training data prep
#: (Figure 5's purple band precedes the green training band).
_TRAIN_PREP_FRACTION = 0.2


@dataclasses.dataclass(frozen=True)
class GPUPerfModel:
    """Throughputs of one GPU model for the FFN workload.

    Attributes
    ----------
    name:
        Device name (informational).
    train_voxels_per_s:
        Effective wall-clock voxel rate of FFN *training* (SGD over FOV
        patches covering the volume, including host I/O stalls).
    infer_voxels_per_s:
        Effective flood-fill inference rate (overlapping-FOV visits
        amortized in).
    prep_bytes_per_s:
        CPU-side data-prep rate (NetCDF → protobuf conversion).
    jitter:
        Max fractional per-worker speed variation.
    """

    name: str
    train_voxels_per_s: float
    infer_voxels_per_s: float
    prep_bytes_per_s: float = 80e6
    jitter: float = 0.05

    def worker_speed(self, worker: str, seed: int = 0) -> float:
        """Deterministic per-worker speed factor in [1-jitter, 1+jitter]."""
        rng = np.random.default_rng(derive_seed(seed, "gpu-speed", worker))
        return float(1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    # -- step timings ---------------------------------------------------------------

    def training_seconds(
        self, voxels: float, worker: str = "trainer", seed: int = 0
    ) -> float:
        """Wall-clock seconds to train on a volume of ``voxels`` voxels
        (excluding the data-prep phase)."""
        if voxels <= 0:
            raise MLError("voxels must be positive")
        return voxels / (self.train_voxels_per_s * self.worker_speed(worker, seed))

    def train_prep_seconds(self, voxels: float) -> float:
        """The pre-training partition/coordinate build (Figure 5, purple)."""
        full_train = voxels / self.train_voxels_per_s
        return full_train * _TRAIN_PREP_FRACTION / (1 - _TRAIN_PREP_FRACTION)

    def inference_seconds(
        self, voxels: float, worker: str = "inf", seed: int = 0
    ) -> float:
        """Wall-clock seconds for one GPU to flood-fill ``voxels`` voxels."""
        if voxels <= 0:
            raise MLError("voxels must be positive")
        return voxels / (self.infer_voxels_per_s * self.worker_speed(worker, seed))

    def prep_seconds(self, nbytes: float) -> float:
        """CPU data-prep (serial protobuf generation, §III-E.1)."""
        return nbytes / self.prep_bytes_per_s


def _calibrated_1080ti() -> GPUPerfModel:
    train_rate = PAPER_TRAIN_VOXELS / (
        _PAPER_TRAIN_MINUTES * 60.0 * (1 - _TRAIN_PREP_FRACTION)
    )
    infer_rate = PAPER_INFER_VOXELS / (
        _PAPER_INFER_MINUTES * 60.0 * _PAPER_INFER_GPUS
    )
    return GPUPerfModel(
        name="NVIDIA GTX 1080 Ti",
        train_voxels_per_s=train_rate,
        infer_voxels_per_s=infer_rate,
    )


#: The paper's GPU ("50 NVIDIA 1080ti GPUs", CUDA 9, TF 1.13.0-rc1).
GTX1080TI = _calibrated_1080ti()
