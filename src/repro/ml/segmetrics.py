"""Segmentation quality metrics (voxel- and object-level).

"Note that the training volume is removed from the test data volume for
all validation metrics" (§III-C) — the callers enforce the split; this
module scores predictions: voxelwise precision/recall/F1/IoU, plus
object-level detection metrics that match predicted components against
ground-truth components by IoU.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "SegmentationScores",
    "voxel_metrics",
    "object_level_metrics",
    "adapted_rand_error",
]


@dataclasses.dataclass
class SegmentationScores:
    """Voxel-level confusion summary."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 0.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def iou(self) -> float:
        union = self.tp + self.fp + self.fn
        return self.tp / union if union else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.fn + self.tn
        return (self.tp + self.tn) / total if total else 0.0


def voxel_metrics(predicted: np.ndarray, truth: np.ndarray) -> SegmentationScores:
    """Binary voxelwise scores (any nonzero voxel counts as foreground)."""
    if predicted.shape != truth.shape:
        raise ShapeError(
            f"predicted {predicted.shape} and truth {truth.shape} differ"
        )
    p = predicted > 0
    t = truth > 0
    return SegmentationScores(
        tp=int(np.count_nonzero(p & t)),
        fp=int(np.count_nonzero(p & ~t)),
        fn=int(np.count_nonzero(~p & t)),
        tn=int(np.count_nonzero(~p & ~t)),
    )


def object_level_metrics(
    predicted_labels: np.ndarray,
    truth_labels: np.ndarray,
    iou_threshold: float = 0.3,
) -> dict[str, float]:
    """Detection-style scores over labelled components.

    A ground-truth object counts as detected when some predicted object
    overlaps it with IoU ≥ ``iou_threshold``; each predicted object may
    detect at most one truth object (greedy best-overlap matching).

    Returns a dict with ``detected``, ``truth_objects``,
    ``predicted_objects``, ``object_recall``, ``object_precision``.
    """
    if predicted_labels.shape != truth_labels.shape:
        raise ShapeError("label volumes differ in shape")
    truth_ids = [i for i in np.unique(truth_labels) if i != 0]
    pred_ids = [i for i in np.unique(predicted_labels) if i != 0]
    pairs: list[tuple[float, int, int]] = []
    for t_id in truth_ids:
        t_mask = truth_labels == t_id
        overlapping = np.unique(predicted_labels[t_mask])
        for p_id in overlapping:
            if p_id == 0:
                continue
            p_mask = predicted_labels == p_id
            inter = np.count_nonzero(t_mask & p_mask)
            union = np.count_nonzero(t_mask | p_mask)
            iou = inter / union if union else 0.0
            if iou >= iou_threshold:
                pairs.append((iou, int(t_id), int(p_id)))
    pairs.sort(reverse=True)
    matched_truth: set[int] = set()
    matched_pred: set[int] = set()
    for _iou, t_id, p_id in pairs:
        if t_id in matched_truth or p_id in matched_pred:
            continue
        matched_truth.add(t_id)
        matched_pred.add(p_id)
    detected = len(matched_truth)
    return {
        "detected": float(detected),
        "truth_objects": float(len(truth_ids)),
        "predicted_objects": float(len(pred_ids)),
        "object_recall": detected / len(truth_ids) if truth_ids else 0.0,
        "object_precision": (
            len(matched_pred) / len(pred_ids) if pred_ids else 0.0
        ),
    }


def adapted_rand_error(
    predicted_labels: np.ndarray, truth_labels: np.ndarray
) -> dict[str, float]:
    """Adapted Rand error — the FFN literature's segmentation metric [20].

    Computes the Rand-index F-score over voxel pairs via the label
    contingency table, ignoring truth background (label 0), and returns
    ``{"are": 1 - F, "precision": P, "recall": R}``.  0 is a perfect
    segmentation; splits hurt recall, mergers hurt precision.
    """
    if predicted_labels.shape != truth_labels.shape:
        raise ShapeError("label volumes differ in shape")
    pred = np.asarray(predicted_labels).ravel()
    truth = np.asarray(truth_labels).ravel()
    keep = truth != 0  # standard convention: truth background pairs ignored
    pred = pred[keep]
    truth = truth[keep]
    if pred.size == 0:
        return {"are": 0.0, "precision": 1.0, "recall": 1.0}
    # Contingency table via joint codes (vectorized).
    pred_ids, pred_inv = np.unique(pred, return_inverse=True)
    truth_ids, truth_inv = np.unique(truth, return_inverse=True)
    joint = pred_inv.astype(np.int64) * len(truth_ids) + truth_inv
    counts = np.bincount(joint, minlength=len(pred_ids) * len(truth_ids))
    table = counts.reshape(len(pred_ids), len(truth_ids)).astype(np.float64)
    sum_p2 = float((table.sum(axis=1) ** 2).sum())
    sum_t2 = float((table.sum(axis=0) ** 2).sum())
    sum_pt2 = float((table**2).sum())
    precision = sum_pt2 / sum_p2 if sum_p2 else 0.0
    recall = sum_pt2 / sum_t2 if sum_t2 else 0.0
    if precision + recall == 0:
        return {"are": 1.0, "precision": 0.0, "recall": 0.0}
    f_score = 2.0 * precision * recall / (precision + recall)
    return {"are": 1.0 - f_score, "precision": precision, "recall": recall}
