"""Macro-benchmark harness: the batched compute engine vs its serial path.

``python -m repro bench`` runs the three macro-benchmarks of the batched
FFN compute engine —

- ``conv3d_batched``: one batched ``conv3d_forward_batch`` over ``N``
  FOV-sized inputs vs ``N`` unbatched ``conv3d_forward`` calls;
- ``flood_fill_wavefront``: a single seeded flood with the ``"batched"``
  wavefront engine vs the ``"serial"`` per-patch reference;
- ``segment_volume_wavefront``: whole-volume segmentation on the macro
  shape, batched vs serial (the headline number);
- ``multiseed_wavefront``: whole-volume segmentation with multi-seed
  wavefront batching (``seed_batch>1``) vs one flood at a time;
- ``distributed_fanout``: ``distributed_segment`` on a persistent
  shared-memory worker pool (``max_workers>1``, zero-copy shard views)
  vs the in-process shard loop (``max_workers=1``);
- ``pipelined_driver``: the CONNECT workflow under the pipelined driver
  (``overlap=True``) vs the strict per-step barrier — **simulated**-time
  makespans (deterministic), with the traced per-layer partition and the
  measured compute/transfer overlap in ``meta``;

— and writes a ``BENCH_<date>.json`` artifact recording wall times,
speedups, and SHA-256 output checksums, so successive PRs accumulate a
performance trajectory.  Checksums of the compared paths must match:
a speedup that changes the answer is a bug, not a win.

:func:`compare_artifacts` diffs two such artifacts and flags >10%
speedup regressions (``repro bench --compare OLD.json`` exits nonzero on
any) — fan-out results measured on hosts with fewer cores than workers
are recorded ``degraded: true`` and excluded from that gate, so a
1-core CI runner cannot fail the build over parallelism it never had.

Timings use ``time.perf_counter`` (monotonic durations); the only
wall-clock read is the artifact's date stamp.  All inputs are seeded,
so the *outputs* (and their checksums) are deterministic even though
the timings are not (the ``pipelined_driver`` record's simulated
makespans are the exception: fully deterministic).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import sys
import time
import typing as _t

import numpy as np

from repro._version import __version__
from repro.ml.conv3d import conv3d_forward, conv3d_forward_batch
from repro.ml.distributed_inference import distributed_segment
from repro.ml.ffn import FFNConfig, FFNModel
from repro.ml.inference import flood_fill, segment_volume
from repro.ml.shm_pool import SharedMemoryPool
from repro.ml.training import FFNTrainer

__all__ = [
    "BenchRecord",
    "benchmark_world",
    "run_benchmarks",
    "write_artifact",
    "render_summary",
    "compare_artifacts",
    "render_comparison",
]

#: ``--compare`` regression threshold: a benchmark regresses when its
#: speedup drops below ``old * (1 - REGRESSION_THRESHOLD)``.
REGRESSION_THRESHOLD = 0.10

#: Wall-clock records where both paths ran faster than this are below
#: timing-noise floor on shared CI runners; ``compare_artifacts`` skips
#: them rather than gating on noise.
NOISE_FLOOR_S = 0.05


@dataclasses.dataclass
class BenchRecord:
    """One benchmark: a baseline path timed against an optimized path."""

    name: str
    baseline: str
    optimized: str
    baseline_seconds: float
    optimized_seconds: float
    checksum_baseline: str
    checksum_optimized: str
    meta: dict[str, _t.Any] = dataclasses.field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.optimized_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.optimized_seconds

    @property
    def outputs_identical(self) -> bool:
        return self.checksum_baseline == self.checksum_optimized

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "baseline": self.baseline,
            "optimized": self.optimized,
            "baseline_seconds": round(self.baseline_seconds, 6),
            "optimized_seconds": round(self.optimized_seconds, 6),
            "speedup": round(self.speedup, 3),
            "checksum_baseline": self.checksum_baseline,
            "checksum_optimized": self.checksum_optimized,
            "outputs_identical": self.outputs_identical,
            "meta": self.meta,
        }


def _checksum(arr: np.ndarray) -> str:
    """Shape/dtype-qualified SHA-256 of an array's exact bytes."""
    h = hashlib.sha256()
    h.update(str(arr.shape).encode())
    h.update(str(arr.dtype).encode())
    h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()[:16]


def _time_best(fn: _t.Callable[[], np.ndarray], repeat: int) -> tuple[float, np.ndarray]:
    """Best-of-``repeat`` wall time; returns (seconds, last output)."""
    best = float("inf")
    out: np.ndarray | None = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    assert out is not None
    return best, out


def _blob_volume(
    shape: tuple[int, int, int],
    centers: _t.Sequence[tuple[int, int, int]],
    radius: float = 4.0,
    noise: float = 0.05,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Bright spherical blobs on noise, plus the binary ground truth."""
    rng = np.random.default_rng(seed)
    zz, yy, xx = np.meshgrid(*map(np.arange, shape), indexing="ij")
    vol = rng.normal(0.0, noise, size=shape)
    truth = np.zeros(shape, dtype=np.uint8)
    for cz, cy, cx in centers:
        d2 = (zz - cz) ** 2 + (yy - cy) ** 2 + (xx - cx) ** 2
        vol += 2.0 * np.exp(-d2 / (2 * radius**2))
        truth |= (d2 <= radius**2).astype(np.uint8)
    return vol.astype(np.float32), truth


def benchmark_world(smoke: bool = False, seed: int = 42) -> dict:
    """The seeded macro-benchmark fixture: a trained model + volumes.

    The model (weight-init seed, trainer seed, training volume) is
    **pinned**: the benchmark needs a network that actually floods, or
    every frontier degenerates to one FOV and the run measures nothing.
    ``seed`` varies only the macro volume's noise.  ``smoke`` shrinks
    every shape so the whole run finishes in seconds (the CI smoke job);
    the full shapes are the measured trajectory.
    """
    cfg = FFNConfig(fov=(5, 5, 5), filters=6, modules=1, seed=1)
    if smoke:
        train_steps = 25
        macro_shape = (12, 16, 16)
        macro_centers = ((5, 8, 8),)
        macro_radius = 3.0
        n_shards, flood_steps = 2, 64
    else:
        train_steps = 100
        macro_shape = (28, 48, 48)
        macro_centers = (
            (8, 12, 12), (14, 30, 30), (20, 12, 34),
            (8, 34, 14), (20, 36, 12), (14, 14, 38),
        )
        macro_radius = 5.0
        n_shards, flood_steps = 4, 256
    train_vol, train_truth = _blob_volume(
        (12, 16, 16), ((6, 8, 8),), radius=3.0, seed=0
    )
    model = FFNModel(cfg)
    FFNTrainer(model, seed=0).train(train_vol, train_truth,
                                    steps=train_steps)
    macro_vol, macro_truth = _blob_volume(
        macro_shape, macro_centers, radius=macro_radius, seed=seed + 7
    )
    return {
        "model": model,
        "macro_volume": macro_vol,
        "macro_truth": macro_truth,
        "macro_shape": macro_shape,
        "flood_seed": macro_centers[0],
        "flood_steps": flood_steps,
        "n_shards": n_shards,
        "smoke": smoke,
    }


def _bench_conv3d(smoke: bool, repeat: int, seed: int) -> BenchRecord:
    rng = np.random.default_rng(seed)
    n = 8 if smoke else 64
    c, o, side = (2, 6, 5) if smoke else (2, 8, 9)
    x = rng.normal(size=(n, c, side, side, side)).astype(np.float32)
    w = (rng.normal(size=(o, c, 3, 3, 3)) * 0.1).astype(np.float32)
    b = np.zeros(o, dtype=np.float32)

    def serial() -> np.ndarray:
        return np.stack([conv3d_forward(xi, w, b) for xi in x])

    def batched() -> np.ndarray:
        return conv3d_forward_batch(x, w, b)

    t_s, out_s = _time_best(serial, repeat)
    t_b, out_b = _time_best(batched, repeat)
    return BenchRecord(
        name="conv3d_batched",
        baseline="loop of conv3d_forward",
        optimized="conv3d_forward_batch",
        baseline_seconds=t_s,
        optimized_seconds=t_b,
        checksum_baseline=_checksum(out_s),
        checksum_optimized=_checksum(out_b),
        meta={"batch": n, "channels": c, "filters": o, "side": side},
    )


def _bench_flood_fill(world: dict, repeat: int) -> BenchRecord:
    model, vol = world["model"], world["macro_volume"]
    seed_voxel, max_steps = world["flood_seed"], world["flood_steps"]

    def run(engine: str) -> _t.Callable[[], np.ndarray]:
        return lambda: flood_fill(
            model, vol, seed_voxel, max_steps=max_steps, engine=engine
        )

    t_s, out_s = _time_best(run("serial"), repeat)
    t_b, out_b = _time_best(run("batched"), repeat)
    return BenchRecord(
        name="flood_fill_wavefront",
        baseline="serial per-FOV forwards",
        optimized="wavefront-batched forwards",
        baseline_seconds=t_s,
        optimized_seconds=t_b,
        checksum_baseline=_checksum(out_s),
        checksum_optimized=_checksum(out_b),
        meta={"volume": list(world["macro_shape"]), "max_steps": max_steps},
    )


def _bench_segment(world: dict, repeat: int) -> BenchRecord:
    model, vol = world["model"], world["macro_volume"]

    def run(engine: str) -> _t.Callable[[], np.ndarray]:
        return lambda: segment_volume(model, vol, max_objects=16,
                                      engine=engine)

    t_s, out_s = _time_best(run("serial"), repeat)
    t_b, out_b = _time_best(run("batched"), repeat)
    return BenchRecord(
        name="segment_volume_wavefront",
        baseline="serial flood-fill engine",
        optimized="wavefront-batched engine",
        baseline_seconds=t_s,
        optimized_seconds=t_b,
        checksum_baseline=_checksum(out_s),
        checksum_optimized=_checksum(out_b),
        meta={
            "volume": list(world["macro_shape"]),
            "objects_found": int(out_b.max()),
        },
    )


def _bench_multiseed(world: dict, repeat: int, seed_batch: int = 4) -> BenchRecord:
    """Multi-seed wavefront batching in its target regime.

    ``seed_batch`` pays off when individual flood frontiers are *thin* —
    many small objects, each a handful of patches per wave — so the
    merged wavefront keeps the FFN batch dimension fat where the
    one-flood-at-a-time path makes many tiny forward calls.  The
    workload is therefore a many-small-objects volume (the regime of
    per-timestep atmospheric-river cores), not the macro blob volume the
    other benches share: on a few large objects the frontiers are
    already fat and speculation can only lose.
    """
    model = world["model"]
    smoke = world["smoke"]
    rng = np.random.default_rng(11)
    n_blobs = 10 if smoke else 30
    shape = (14, 24, 24) if smoke else (24, 48, 48)
    centers = [
        (int(z), int(y), int(x))
        for z, y, x in zip(
            rng.integers(3, shape[0] - 3, n_blobs),
            rng.integers(3, shape[1] - 3, n_blobs),
            rng.integers(3, shape[2] - 3, n_blobs),
        )
    ]
    vol, _ = _blob_volume(shape, centers, radius=1.6, seed=49)
    max_objects = 32

    def run(batch: int) -> _t.Callable[[], np.ndarray]:
        return lambda: segment_volume(
            model, vol, max_objects=max_objects, engine="batched",
            seed_batch=batch, max_steps_per_object=64,
        )

    t_1, out_1 = _time_best(run(1), repeat)
    t_n, out_n = _time_best(run(seed_batch), repeat)
    return BenchRecord(
        name="multiseed_wavefront",
        baseline="one flood at a time (seed_batch=1)",
        optimized=f"multi-seed wavefront (seed_batch={seed_batch})",
        baseline_seconds=t_1,
        optimized_seconds=t_n,
        checksum_baseline=_checksum(out_1),
        checksum_optimized=_checksum(out_n),
        meta={
            "volume": list(shape),
            "n_blobs": n_blobs,
            "seed_batch": seed_batch,
            "objects_found": int(out_n.max()),
        },
    )


def _bench_distributed(world: dict, repeat: int, max_workers: int) -> BenchRecord:
    """Fan-out on the persistent shared-memory pool vs in-process.

    The pool is built **outside** the timed region — worker startup is a
    one-time cost an inference service pays once, not per volume.  Hosts
    with fewer cores than workers cannot express the parallelism being
    measured; their results are recorded with ``degraded: true`` (and
    the measured ``effective_parallelism``) so downstream comparisons
    exclude them from the speedup gate instead of reporting a fake
    regression.
    """
    model, vol = world["model"], world["macro_volume"]
    n_shards = world["n_shards"]
    cpu_count = os.cpu_count() or 1

    def serial() -> np.ndarray:
        return distributed_segment(
            model, vol, n_workers=n_shards, halo=2, max_workers=1
        )[0]

    t_s, out_s = _time_best(serial, repeat)
    with SharedMemoryPool(model, n_workers=min(max_workers, n_shards)) as pool:
        def pooled() -> np.ndarray:
            return distributed_segment(
                model, vol, n_workers=n_shards, halo=2,
                max_workers=max_workers, pool=pool,
            )[0]

        t_p, out_p = _time_best(pooled, repeat)
    return BenchRecord(
        name="distributed_fanout",
        baseline="in-process shard loop (max_workers=1)",
        optimized=f"shared-memory pool fan-out (max_workers={max_workers})",
        baseline_seconds=t_s,
        optimized_seconds=t_p,
        checksum_baseline=_checksum(out_s),
        checksum_optimized=_checksum(out_p),
        meta={
            "volume": list(world["macro_shape"]),
            "n_shards": n_shards,
            "max_workers": max_workers,
            "cpu_count": cpu_count,
            "pool": "shm-persistent",
            "effective_parallelism": min(max_workers, cpu_count, n_shards),
            "degraded": cpu_count < max_workers,
        },
    )


def _artifact_checksum(report) -> str:
    """Checksum over a workflow report's final artifacts (the stable
    JSON projection, step order fixed by name)."""
    projection = {
        s.name: s.to_dict()["artifacts"] for s in report.steps
    }
    blob = json.dumps(projection, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _bench_pipelined(smoke: bool, seed: int) -> BenchRecord:
    """The CONNECT workflow, pipelined driver vs per-step barrier.

    Unlike the other benches this one measures **simulated** makespan —
    deterministic on any host, so the record's speedup is exact and can
    gate regressions even on noisy CI runners.  Both runs are traced;
    ``meta`` carries each run's exact per-layer time partition plus the
    measured compute/transfer overlap (the pipelining win is *visible*
    as overlap_s growing while the makespan shrinks).  The checksums
    hash the final artifact projection: overlap must not change what the
    workflow produced, only when its steps ran.
    """
    from repro.testbed import build_nautilus_testbed
    from repro.tracing import analyze_run, layer_overlap
    from repro.workflow import WorkflowDriver, build_connect_workflow

    scale = 0.002 if smoke else 0.01
    # The bench workload shortens training (3 simulated days, light real
    # ML) so the download transfer tail is a visible fraction of the
    # makespan — the regime the pipelined driver targets.
    overrides = {
        "training": {
            "train_timesteps": 24,
            "real_train_steps": 25 if smoke else 60,
            "real_train_timesteps": 8,
        },
        # >= the FFN FOV depth (5): the test volume's time axis is the
        # segmentation z-axis.
        "inference": {"real_test_timesteps": 6 if smoke else 8},
    }

    def run(overlap: bool) -> tuple[float, dict[str, float], float, str]:
        testbed = build_nautilus_testbed(seed=seed, scale=scale)
        workflow = build_connect_workflow(testbed, overrides=overrides)
        report = WorkflowDriver(testbed).run(workflow, overlap=overlap)
        if not report.succeeded:
            raise RuntimeError(
                f"pipelined-driver bench run failed (overlap={overlap})"
            )
        spans = testbed.tracer.finished_spans()
        analysis = analyze_run(spans)
        root = [s for s in spans if s.category == "workflow"][-1]
        overlap_s = layer_overlap(spans, root, "compute", "transfer")
        return (
            analysis.total_s,
            {k: round(v, 3) for k, v in analysis.layers.items()},
            round(overlap_s, 3),
            _artifact_checksum(report),
        )

    barrier_s, barrier_layers, barrier_overlap, sum_b = run(False)
    overlap_makespan_s, overlap_layers, overlap_overlap, sum_o = run(True)
    return BenchRecord(
        name="pipelined_driver",
        baseline="per-step barrier driver",
        optimized="pipelined driver (overlap=True)",
        baseline_seconds=barrier_s,
        optimized_seconds=overlap_makespan_s,
        checksum_baseline=sum_b,
        checksum_optimized=sum_o,
        meta={
            "time_domain": "simulated",
            "workflow": "connect",
            "scale": scale,
            "barrier": {
                "makespan_s": round(barrier_s, 3),
                "layers": barrier_layers,
                "compute_transfer_overlap_s": barrier_overlap,
            },
            "overlap": {
                "makespan_s": round(overlap_makespan_s, 3),
                "layers": overlap_layers,
                "compute_transfer_overlap_s": overlap_overlap,
            },
        },
    )


def _bench_loadtest(smoke: bool, seed: int) -> BenchRecord:
    """The control-plane overload drill as a determinism benchmark.

    Runs the multi-tenant loadtest twice on the same seed: the two
    checksums (over every workflow's structured outcome) must match, so
    a scheduler/gateway change that silently reorders or drops work
    fails the ``outputs_identical`` gate.  ``meta`` carries the
    scheduler throughput and p50/p99 scheduling-latency-per-class
    numbers into the BENCH_*.json trajectory.
    """
    from repro.loadgen import LoadgenConfig, run_loadtest

    if smoke:
        cfg = LoadgenConfig(n_tenants=8, workflows_per_tenant=2)
    else:
        cfg = LoadgenConfig(n_tenants=50, workflows_per_tenant=4)
    cfg.seed = seed

    t0 = time.perf_counter()
    first = run_loadtest(cfg)
    t_first = time.perf_counter() - t0
    t0 = time.perf_counter()
    second = run_loadtest(cfg)
    t_second = time.perf_counter() - t0

    return BenchRecord(
        name="control_plane_loadtest",
        baseline="overload drill, run 1",
        optimized="overload drill, run 2 (same seed)",
        baseline_seconds=t_first,
        optimized_seconds=t_second,
        checksum_baseline=first.checksum()[:16],
        checksum_optimized=second.checksum()[:16],
        meta={
            "tenants": cfg.n_tenants,
            "workflows_per_tenant": cfg.workflows_per_tenant,
            "counts": first.counts,
            "lost": first.lost,
            "hung": first.hung,
            "scheduler_throughput_pods_per_s": round(
                first.scheduler_throughput, 4
            ),
            "latency_by_class": first.latency_by_class,
            "preemptions": first.preemptions,
            "peak_queue_depth": first.peak_queue_depth,
            "makespan_s": round(first.makespan_s, 1),
        },
    )


def run_benchmarks(
    smoke: bool = False,
    repeat: int = 2,
    max_workers: int | None = None,
    seed: int = 42,
) -> list[BenchRecord]:
    """Run every macro-benchmark and return the records."""
    if max_workers is None:
        max_workers = max(2, min(4, os.cpu_count() or 2))
    world = benchmark_world(smoke=smoke, seed=seed)
    return [
        _bench_conv3d(smoke, repeat, seed),
        _bench_flood_fill(world, repeat),
        _bench_segment(world, repeat),
        _bench_multiseed(world, repeat),
        _bench_distributed(world, repeat, max_workers),
        _bench_pipelined(smoke, seed),
        _bench_loadtest(smoke, seed),
    ]


def write_artifact(
    records: _t.Sequence[BenchRecord],
    out_dir: "str | pathlib.Path" = ".",
    smoke: bool = False,
    date: str | None = None,
) -> pathlib.Path:
    """Write ``BENCH_<date>.json`` into ``out_dir`` and return its path."""
    # The date stamp is the one intentional wall-clock read in this
    # module: the artifact names the day it measured.
    date = date or time.strftime("%Y-%m-%d")
    payload = {
        "schema": "repro-bench/v1",
        "version": __version__,
        "date": date,
        "smoke": smoke,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "results": [r.to_json() for r in records],
    }
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{date}{'_smoke' if smoke else ''}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def compare_artifacts(
    old: dict,
    new: dict,
    threshold: float = REGRESSION_THRESHOLD,
) -> dict:
    """Diff two ``BENCH_*.json`` payloads; flag speedup regressions.

    A benchmark **regresses** when its new speedup drops more than
    ``threshold`` (fractionally) below the old artifact's.  Ratios, not
    absolute times, are compared — host speed cancels out of a
    baseline/optimized ratio measured on the same machine.

    Records are **skipped** (listed with a reason, never gated on) when:

    - the name exists in only one artifact (benchmark added/retired);
    - either side is marked ``meta.degraded`` — e.g. a fan-out measured
      on a host with fewer cores than workers;
    - either side's ``outputs_identical`` is false (that's a
      correctness failure, handled by the bench run itself, and its
      timings are meaningless);
    - both paths ran under :data:`NOISE_FLOOR_S` on either side —
      sub-noise timings produce ratio jitter far beyond any real
      regression (simulated-time records are exempt: they are exact).

    Returns ``{"regressions": [...], "improved": [...], "ok": [...],
    "skipped": [...]}`` — each entry a dict with the name, both
    speedups, and (for skips) the reason.
    """
    old_by_name = {r["name"]: r for r in old.get("results", [])}
    new_by_name = {r["name"]: r for r in new.get("results", [])}
    out: dict[str, list[dict]] = {
        "regressions": [], "improved": [], "ok": [], "skipped": [],
    }

    def _sub_noise(rec: dict) -> bool:
        if rec.get("meta", {}).get("time_domain") == "simulated":
            return False
        return (
            rec["baseline_seconds"] < NOISE_FLOOR_S
            and rec["optimized_seconds"] < NOISE_FLOOR_S
        )

    for name in sorted(set(old_by_name) | set(new_by_name)):
        o, n = old_by_name.get(name), new_by_name.get(name)
        entry: dict[str, _t.Any] = {"name": name}
        if o is None or n is None:
            entry["reason"] = (
                "only in new artifact" if o is None else "only in old artifact"
            )
            out["skipped"].append(entry)
            continue
        entry["old_speedup"] = o["speedup"]
        entry["new_speedup"] = n["speedup"]
        if o.get("meta", {}).get("degraded") or n.get("meta", {}).get("degraded"):
            entry["reason"] = "degraded host (cpu_count < max_workers)"
            out["skipped"].append(entry)
        elif not (o.get("outputs_identical", True)
                  and n.get("outputs_identical", True)):
            entry["reason"] = "outputs not identical (correctness failure)"
            out["skipped"].append(entry)
        elif _sub_noise(o) or _sub_noise(n):
            entry["reason"] = f"below {NOISE_FLOOR_S}s timing noise floor"
            out["skipped"].append(entry)
        elif n["speedup"] < o["speedup"] * (1.0 - threshold):
            out["regressions"].append(entry)
        elif n["speedup"] > o["speedup"] * (1.0 + threshold):
            out["improved"].append(entry)
        else:
            out["ok"].append(entry)
    return out


def render_comparison(comparison: dict, old_label: str = "old") -> str:
    """One line per benchmark: verdict, old -> new speedup, reason."""
    lines = [f"speedup comparison vs {old_label}:"]
    rows = (
        [("REGRESSED", e) for e in comparison["regressions"]]
        + [("improved", e) for e in comparison["improved"]]
        + [("ok", e) for e in comparison["ok"]]
        + [("skipped", e) for e in comparison["skipped"]]
    )
    for verdict, entry in rows:
        ratio = (
            f"{entry['old_speedup']:.2f}x -> {entry['new_speedup']:.2f}x"
            if "old_speedup" in entry
            else "-"
        )
        reason = f"  ({entry['reason']})" if "reason" in entry else ""
        lines.append(f"  {verdict:<9} {entry['name']:<26} {ratio}{reason}")
    return "\n".join(lines)


def render_summary(records: _t.Sequence[BenchRecord]) -> str:
    """A fixed-width table of the benchmark outcomes."""
    header = (
        f"{'benchmark':<26} {'baseline':>10} {'optimized':>10} "
        f"{'speedup':>8}  outputs"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        notes = []
        if r.meta.get("degraded"):
            notes.append("degraded")
        if r.meta.get("time_domain") == "simulated":
            notes.append("sim-time")
        suffix = f" [{', '.join(notes)}]" if notes else ""
        lines.append(
            f"{r.name:<26} {r.baseline_seconds:>9.3f}s "
            f"{r.optimized_seconds:>9.3f}s {r.speedup:>7.2f}x  "
            f"{'identical' if r.outputs_identical else 'DIFFER'}{suffix}"
        )
    return "\n".join(lines)
